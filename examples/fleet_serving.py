"""Fleet serving: replicas over one mmap artifact, failover, hot swap.

Where ``online_serving.py`` drives a single in-process runtime, this
walkthrough runs the deployment the way a horizontally-scaled system
would: a :class:`~repro.serving.fleet.ServingFleet` of replica
*processes*, each preparing its deployment over the same memory-mapped
artifact (one page-cache copy of the arrays for the whole host), behind
a pluggable router.  It then exercises the two operational moves that
make a fleet worth having:

- **failover** — a replica is killed mid-stream; its in-flight requests
  are re-routed to survivors and the slot respawns, with zero requests
  lost;
- **hot swap** — a freshly condensed artifact rolls across the fleet one
  replica at a time while traffic keeps flowing.

Run:  python examples/fleet_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import api
from repro.api import DeploymentBundle
from repro.serving import replay_fleet, split_requests

DATASET = "pubmed-sim"
NUM_REQUESTS = 64
REPLICAS = 2


def main() -> None:
    print(f"offline phase: condensing {DATASET} and packaging a bundle...")
    bundle = api.deploy(DATASET, method="mcond", budget=30, seed=0,
                        profile="quick", deployment="original")
    artifact = bundle.save("fleet_artifact.npz", layout="mmap")
    print(f"  -> {artifact} ({artifact.stat().st_size / 1024:.0f} KB, "
          "mmap layout: members are stored raw so replicas share pages)")

    # Zero-copy loading is bit-for-bit: same artifact, two load paths.
    eager = DeploymentBundle.load(artifact).prepare()
    mapped = DeploymentBundle.load(artifact, mmap=True).prepare()
    batch = api.evaluation_batch(bundle)
    probe = batch.subset(np.arange(8))
    left, _, _ = eager.serve_batch(probe, "node")
    right, _, _ = mapped.serve_batch(probe, "node")
    print(f"mmap parity: bitwise equal = {np.array_equal(left, right)}\n")

    requests = split_requests(batch, NUM_REQUESTS, 4)
    print(f"opening a {REPLICAS}-replica fleet (least-loaded router)...")
    with api.open_fleet(artifact, REPLICAS, router="least-loaded",
                        batch_mode="node") as fleet:
        for rid, replica in fleet.stats()["per_replica"].items():
            print(f"  replica {rid}: cold start "
                  f"{replica['cold_start_ms']:.1f} ms")

        started = time.perf_counter()
        results = replay_fleet(fleet, requests)
        wall = time.perf_counter() - started
        served = sum(result is not None for result in results)
        print(f"closed-loop replay: {served}/{NUM_REQUESTS} requests in "
              f"{wall * 1e3:.0f} ms ({served / wall:.0f} req/s)\n")

        # --- failover drill -----------------------------------------
        print("failover drill: killing replica 0 with requests in flight")
        futures = [fleet.submit_batch(request) for request in requests]
        fleet.kill_replica(0)
        answers = [future.result(timeout=120.0) for future in futures]
        stats = fleet.stats()
        print(f"  {sum(a is not None for a in answers)}/{len(answers)} "
              f"answered, {stats['rerouted']} re-routed, "
              f"{stats['respawns']} respawn(s), {stats['failed']} lost\n")

        # --- hot swap ------------------------------------------------
        print("hot swap: rolling a tighter condensation across the fleet")
        smaller = api.deploy(DATASET, method="mcond", budget=15, seed=0,
                             profile="quick", deployment="original")
        swapped = smaller.save("fleet_artifact_v2.npz", layout="mmap")
        inflight = [fleet.submit_batch(request) for request in requests]
        fleet.swap(swapped)
        drained = sum(f.result(timeout=120.0) is not None for f in inflight)
        print(f"  {drained}/{len(inflight)} in-flight requests survived "
              "the swap")
        generations = {rid: replica["generation"] for rid, replica
                       in fleet.stats()["per_replica"].items()}
        print(f"  replica generations after rollout: {generations}")
        answer = fleet.submit_batch(requests[0]).result(timeout=120.0)
        print(f"  post-swap request served on the new artifact: "
              f"shape {answer.shape}")


if __name__ == "__main__":
    main()
