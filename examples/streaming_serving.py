"""Streaming deployment: serve traffic while the base graph evolves.

Every other example freezes the deployed graph at bundle time.  This one
runs the scenario the paper's inductive regime ultimately points at: a
live deployment whose base graph changes *while it serves* — new users
join permanently, edges appear and disappear, features drift.  A
:class:`~repro.graph.stream.GraphDelta` trace (built from the dataset's
inductive batch) is ingested through the runtime between micro-batches,
and every delta refreshes the prepared serving caches incrementally —
bit-for-bit what rebuilding them from scratch would produce, at a
fraction of the cost.

Run:  python examples/streaming_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.graph.stream import make_delta_trace
from repro.serving import PreparedDeployment, split_requests

DATASET = "pubmed-sim"
NUM_DELTAS = 8
NODES_PER_DELTA = 3
NUM_REQUESTS = 64
INGEST_EVERY = 4  # one delta per this many requests


def main() -> None:
    print(f"offline phase: condensing {DATASET}, deploying the *original* "
          "graph (streaming needs it resident)...")
    bundle = api.deploy(DATASET, method="mcond", budget=30, seed=0,
                        deployment="original", profile="quick")
    print(f"  -> {bundle!r}")

    batch = api.evaluation_batch(bundle)
    reserved = NUM_DELTAS * NODES_PER_DELTA
    trace = make_delta_trace(bundle.base, batch.subset(np.arange(reserved)),
                             num_deltas=NUM_DELTAS,
                             nodes_per_delta=NODES_PER_DELTA,
                             edges_per_delta=4, removals_per_delta=2,
                             updates_per_delta=2, seed=0)
    requests = split_requests(
        batch.subset(np.arange(reserved, batch.num_nodes)), NUM_REQUESTS, 1)

    runtime = api.open_stream(bundle, batch_mode="node",
                              scheduler="sizecap", max_batch_size=8)
    print(f"\nserving {NUM_REQUESTS} requests, ingesting one delta every "
          f"{INGEST_EVERY} requests ({NUM_DELTAS} deltas total)\n")
    deltas = iter(trace)
    for start in range(0, len(requests), INGEST_EVERY):
        for request in requests[start:start + INGEST_EVERY]:
            runtime.submit_batch(request)
        delta = next(deltas, None)
        if delta is not None:
            future = runtime.ingest(delta)
        runtime.run_pending()
        if delta is not None:
            report = future.result()
            print(f"  delta: +{report.appended} nodes, "
                  f"{report.touched_rows} rows touched, "
                  f"{report.affected_rows} operator rows affected -> "
                  f"{report.mode} refresh in {report.seconds * 1e3:.2f} ms")

    stats = runtime.stats()
    stream = runtime.stream_stats()
    print(f"\nserved {stats.requests} requests at p95 "
          f"{stats.latency_p95 * 1e3:.2f} ms while the base graph grew "
          f"{bundle.base.num_nodes} -> {runtime.prepared.num_base} nodes")
    print(f"refresh modes: {stream['incremental']} incremental, "
          f"{stream['rebuilds']} full rebuilds "
          f"(mean {stream['refresh_mean_ms']:.2f} ms)")

    # the whole point: the evolved cache is bit-identical to starting over
    fresh = PreparedDeployment(bundle.model(), "original",
                               runtime.prepared.base)
    evolved_op = runtime.prepared.base_operator()
    identical = np.array_equal(evolved_op.data, fresh.base_operator().data)
    print(f"evolved operator bitwise equal to a from-scratch prepare(): "
          f"{identical}")


if __name__ == "__main__":
    main()
