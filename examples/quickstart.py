"""Quickstart: condense a graph with MCond and serve unseen nodes on it.

Runs the full pipeline on the pubmed-like simulator in under a minute:

1. load an inductive dataset (original graph = training nodes only);
2. condense it with MCond (synthetic graph + mapping matrix);
3. train an SGC classifier on the synthetic graph;
4. serve the unseen test nodes on the synthetic graph via Eq. (11)
   and compare against full-graph serving.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.condense import MCondConfig, MCondReducer
from repro.graph import load_dataset, symmetric_normalize
from repro.inference import deployment_storage_bytes, run_inference
from repro.nn import TrainConfig, make_model, train_node_classifier


def main() -> None:
    # 1. Data: the original graph contains only training nodes.
    split = load_dataset("pubmed-sim", seed=0)
    original = split.original
    print(f"dataset: {split!r}")
    print(f"original graph: {original!r}")

    # 2. Condense to 60 synthetic nodes (~3% of the original graph) and
    #    learn the original->synthetic node mapping.
    config = MCondConfig(outer_loops=3, match_steps=10, mapping_steps=30,
                         seed=0)
    reducer = MCondReducer(config)
    condensed = reducer.reduce(split, budget=60)
    print(f"condensed graph: {condensed!r}")

    # 3. Train a classifier ON the synthetic graph (S->S deployment).
    model = make_model("sgc", original.feature_dim, split.num_classes, seed=0)
    train_node_classifier(
        model, condensed.normalized_adjacency(), condensed.features,
        condensed.labels, np.arange(condensed.num_nodes),
        config=TrainConfig(epochs=100, patience=100))

    # 4. Serve the unseen test nodes on the synthetic graph...
    test_batch = split.incremental_batch("test")
    synthetic_report = run_inference(model, "synthetic", original, test_batch,
                                     condensed=condensed, batch_mode="graph")
    # ...and, for comparison, a full-graph model on the original graph.
    whole = make_model("sgc", original.feature_dim, split.num_classes, seed=0)
    train_node_classifier(whole, symmetric_normalize(original.adjacency),
                          original.features, original.labels,
                          split.labeled_in_original,
                          config=TrainConfig(epochs=100, patience=100))
    original_report = run_inference(whole, "original", original, test_batch,
                                    batch_mode="graph")

    synthetic_bytes = deployment_storage_bytes("synthetic", original, condensed)
    original_bytes = deployment_storage_bytes("original", original)
    print()
    print(f"{'deployment':<12} {'accuracy':>9} {'ms/batch':>9} {'storage':>12}")
    print(f"{'original':<12} {original_report.accuracy:>9.3f} "
          f"{original_report.mean_batch_milliseconds:>9.2f} "
          f"{original_bytes / 1024:>10.1f}KB")
    print(f"{'synthetic':<12} {synthetic_report.accuracy:>9.3f} "
          f"{synthetic_report.mean_batch_milliseconds:>9.2f} "
          f"{synthetic_bytes / 1024:>10.1f}KB")
    print()
    print(f"speedup  : {original_report.mean_batch_seconds / synthetic_report.mean_batch_seconds:.1f}x")
    print(f"smaller  : {original_bytes / synthetic_bytes:.1f}x")


if __name__ == "__main__":
    main()
