"""Quickstart: the three-call facade — condense, deploy, serve.

Runs the paper's full offline/online split on the pubmed-like simulator
in under a minute:

1. ``api.condense``  — reduce the training graph to 60 synthetic nodes
   with MCond (synthetic graph + original→synthetic mapping matrix);
2. ``api.deploy``    — train the serving model on the synthetic graph and
   package a persistable :class:`~repro.api.DeploymentBundle`;
3. ``api.serve``     — attach the unseen test nodes to the synthetic
   graph via Eq. (11) and classify them, from a reloaded artifact, and
   compare against the full-graph baseline.

Every component is resolved by registry name ("pubmed-sim", "mcond",
"sgc") — see ``repro list`` for what is available.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import api


def main() -> None:
    # 1. Offline: condense the training graph once.
    condensed = api.condense("pubmed-sim", method="mcond", budget=60,
                             seed=0, profile="quick")
    print(f"condensed graph: {condensed!r}")

    # 2. Offline: train the deployment model on the synthetic graph and
    #    package graph + weights + metadata into one artifact.
    bundle = api.deploy("pubmed-sim", condensed=condensed, model="sgc",
                        seed=0, profile="quick")
    artifact = Path(tempfile.mkdtemp()) / "pubmed-mcond.npz"
    bundle.save(artifact)
    print(f"deployment bundle: {bundle!r}")
    print(f"saved to {artifact}")

    # 3. Online: a fresh process would start here — load and serve.
    reloaded = api.DeploymentBundle.load(artifact)
    synthetic_report = api.serve(reloaded, batch_mode="graph")

    # Baseline: the same flow without condensation (serve the full graph).
    whole = api.deploy("pubmed-sim", method="whole", seed=0, profile="quick")
    original_report = api.serve(whole, batch_mode="graph")

    synthetic_bytes = reloaded.storage_bytes()
    original_bytes = whole.storage_bytes()
    print()
    print(f"{'deployment':<12} {'accuracy':>9} {'ms/batch':>9} {'storage':>12}")
    print(f"{'original':<12} {original_report.accuracy:>9.3f} "
          f"{original_report.mean_batch_milliseconds:>9.2f} "
          f"{original_bytes / 1024:>10.1f}KB")
    print(f"{'synthetic':<12} {synthetic_report.accuracy:>9.3f} "
          f"{synthetic_report.mean_batch_milliseconds:>9.2f} "
          f"{synthetic_bytes / 1024:>10.1f}KB")
    print()
    speedup = (original_report.mean_batch_seconds
               / synthetic_report.mean_batch_seconds)
    print(f"speedup  : {speedup:.1f}x")
    print(f"smaller  : {original_bytes / synthetic_bytes:.1f}x")


if __name__ == "__main__":
    main()
