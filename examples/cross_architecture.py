"""Architecture generalizability: one condensed graph, every registered GNN.

A key property of graph condensation (paper Table IV): the synthetic graph
and mapping matrix are model-agnostic.  This example condenses once with
MCond, then sweeps **every architecture in the model registry** — adding a
new ``@register_model`` class makes it part of this sweep automatically —
training each on the synthetic graph and serving inductive nodes both on
the original graph (S→O) and on the synthetic graph (S→S).

Run:  python examples/cross_architecture.py
"""

from __future__ import annotations

from repro import api
from repro.graph import load_dataset
from repro.inference import InductiveServer
from repro.registry import MODELS


def main() -> None:
    split = load_dataset("flickr-sim", seed=0)
    print(f"dataset: {split!r}")
    condensed = api.condense("flickr-sim", method="mcond", budget=70,
                             seed=0, profile="quick")
    print(f"condensed once: {condensed!r}\n")

    test = split.incremental_batch("test")
    header = (f"{'architecture':<13} {'SO accuracy':>11} {'SS accuracy':>11} "
              f"{'SO ms':>8} {'SS ms':>8}")
    print(header)
    print("-" * len(header))
    for arch in MODELS.keys():
        bundle = api.deploy("flickr-sim", condensed=condensed, model=arch,
                            seed=0, profile="quick")
        model = bundle.model()
        on_original = InductiveServer(model, "original", split.original).run(
            test, batch_mode="graph")
        on_synthetic = api.serve(bundle, test, batch_mode="graph")
        print(f"{arch:<13} {on_original.accuracy:>11.3f} "
              f"{on_synthetic.accuracy:>11.3f} "
              f"{on_original.mean_batch_milliseconds:>8.2f} "
              f"{on_synthetic.mean_batch_milliseconds:>8.2f}")

    print("\nevery architecture serves on the synthetic graph at a fraction "
          "of the original-graph latency.")


if __name__ == "__main__":
    main()
