"""Architecture generalizability: one condensed graph, many GNNs.

A key property of graph condensation (paper Table IV): the synthetic graph
and mapping matrix are model-agnostic — the same condensed artifact trains
GCN, GraphSAGE, APPNP and Cheby, and every one of them can serve inductive
nodes directly on the synthetic graph.

Run:  python examples/cross_architecture.py
"""

from __future__ import annotations

import numpy as np

from repro.condense import MCondConfig, MCondReducer
from repro.graph import load_dataset
from repro.inference import InductiveServer
from repro.nn import TrainConfig, make_model, train_node_classifier

ARCHITECTURES = ("sgc", "gcn", "graphsage", "appnp", "cheby")


def main() -> None:
    split = load_dataset("flickr-sim", seed=0)
    print(f"dataset: {split!r}")
    config = MCondConfig(outer_loops=2, match_steps=8, mapping_steps=20, seed=0)
    condensed = MCondReducer(config).reduce(split, budget=70)
    print(f"condensed once: {condensed!r}\n")

    test = split.incremental_batch("test")
    header = (f"{'architecture':<13} {'SO accuracy':>11} {'SS accuracy':>11} "
              f"{'SO ms':>8} {'SS ms':>8}")
    print(header)
    print("-" * len(header))
    for arch in ARCHITECTURES:
        kwargs = {} if arch == "sgc" else {"hidden": 64}
        model = make_model(arch, split.original.feature_dim,
                           split.num_classes, seed=0, **kwargs)
        train_node_classifier(model, condensed.normalized_adjacency(),
                              condensed.features, condensed.labels,
                              np.arange(condensed.num_nodes),
                              config=TrainConfig(epochs=80, patience=80))
        on_original = InductiveServer(model, "original", split.original).run(
            test, batch_mode="graph")
        on_synthetic = InductiveServer(model, "synthetic", split.original,
                                       condensed).run(test, batch_mode="graph")
        print(f"{arch:<13} {on_original.accuracy:>11.3f} "
              f"{on_synthetic.accuracy:>11.3f} "
              f"{on_original.mean_batch_milliseconds:>8.2f} "
              f"{on_synthetic.mean_batch_milliseconds:>8.2f}")

    print("\nevery architecture serves on the synthetic graph at a fraction "
          "of the original-graph latency.")


if __name__ == "__main__":
    main()
