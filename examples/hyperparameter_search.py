"""Training many model variants cheaply — the intro's motivating workload.

The paper motivates condensation with settings where one GNN must be
trained many times (architecture search, hyper-parameter tuning, continual
learning).  This example tunes SGC's propagation depth and learning rate:
every candidate trains on MCond's 60-node synthetic graph instead of the
1,600-node original, then the winner is validated for *deployment on the
synthetic graph* — no original-graph access needed after condensation.

Run:  python examples/hyperparameter_search.py
"""

from __future__ import annotations

import numpy as np

from repro.condense import MCondConfig, MCondReducer
from repro.graph import load_dataset, symmetric_normalize
from repro.inference import InductiveServer
from repro.nn import TrainConfig, make_model, train_node_classifier
from repro.telemetry import Stopwatch, format_seconds

GRID = [(k_hops, lr) for k_hops in (1, 2, 3) for lr in (0.01, 0.05, 0.2)]


def tune(split, operator, features, labels, train_idx, validate, tag):
    """Grid-search SGC on one graph; returns (best_config, best_acc, time)."""
    best = (None, -1.0)
    with Stopwatch() as watch:
        for k_hops, lr in GRID:
            model = make_model("sgc", split.original.feature_dim,
                               split.num_classes, seed=0, k_hops=k_hops)
            train_node_classifier(model, operator, features, labels,
                                  train_idx,
                                  config=TrainConfig(epochs=60, patience=60,
                                                     lr=lr))
            score = validate(model)
            if score > best[1]:
                best = ((k_hops, lr), score)
    print(f"{tag:<18} best={best[0]} val_acc={best[1]:.3f} "
          f"total={format_seconds(watch.elapsed)}")
    return best, watch.elapsed


def main() -> None:
    split = load_dataset("pubmed-sim", seed=0)
    print(f"dataset: {split!r}")
    print(f"grid: {len(GRID)} configurations\n")

    condensed = MCondReducer(
        MCondConfig(outer_loops=3, match_steps=10, mapping_steps=30,
                    seed=0)).reduce(split, budget=60)
    val = split.incremental_batch("val")

    def validator_for(deployment, condensed_graph):
        def validate(model):
            server = InductiveServer(model, deployment, split.original,
                                     condensed_graph)
            logits, _, _ = server.serve_batch(val, "graph")
            return float((logits.argmax(1) == val.labels).mean())
        return validate

    # Tuning on the original graph (expensive baseline).
    original = split.original
    _, time_original = tune(
        split, symmetric_normalize(original.adjacency), original.features,
        original.labels, split.labeled_in_original,
        validator_for("original", None), "on original")

    # Tuning on the synthetic graph (what condensation buys you).
    (best_cfg, best_acc), time_synthetic = tune(
        split, condensed.normalized_adjacency(), condensed.features,
        condensed.labels, np.arange(condensed.num_nodes),
        validator_for("synthetic", condensed), "on synthetic")

    print(f"\ntuning speedup: {time_original / time_synthetic:.1f}x "
          f"({format_seconds(time_original)} -> "
          f"{format_seconds(time_synthetic)})")

    # Deploy the winner on the synthetic graph and report test accuracy.
    k_hops, lr = best_cfg
    winner = make_model("sgc", original.feature_dim, split.num_classes,
                        seed=0, k_hops=k_hops)
    train_node_classifier(winner, condensed.normalized_adjacency(),
                          condensed.features, condensed.labels,
                          np.arange(condensed.num_nodes),
                          config=TrainConfig(epochs=100, patience=100, lr=lr))
    test = split.incremental_batch("test")
    report = InductiveServer(winner, "synthetic", original, condensed).run(
        test, batch_mode="graph")
    print(f"winning config {best_cfg} test accuracy: {report.accuracy:.3f}")


if __name__ == "__main__":
    main()
