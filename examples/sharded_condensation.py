"""Sharded offline phase: partition, condense in parallel, merge, serve.

Condensation is the expensive half of the paper's condense-once /
serve-forever split.  This example runs it both ways on the pubmed-like
simulator and compares:

1. unsharded MCond — one process walks the whole training graph;
2. ``method="sharded"`` — the graph is split into label-stratified BFS
   shards, each shard is condensed independently (in worker processes
   when ``workers > 1``), the per-shard budgets are apportioned by
   labeled mass, and the per-shard graphs are merged with the
   cross-shard cut edges re-scored through the learned mappings.

The merged graph drops into the *unchanged* deployment and serving
stack: ``api.deploy`` trains on it and ``api.serve`` attaches unseen
nodes exactly as for a directly-condensed graph.

Run:  python examples/sharded_condensation.py
"""

from __future__ import annotations

import time

from repro import api


def condense_and_serve(label: str, **reducer_options) -> None:
    start = time.perf_counter()
    condensed = api.condense("pubmed-sim", budget=60, seed=0,
                             profile="quick", **reducer_options)
    elapsed = time.perf_counter() - start
    bundle = api.deploy("pubmed-sim", condensed=condensed, seed=0,
                        profile="quick")
    report = api.serve(bundle, batch_mode="node")
    print(f"{label:<28} {elapsed:6.2f}s condensation, "
          f"accuracy {report.accuracy:.4f}, "
          f"{condensed.num_nodes} synthetic nodes")


def main() -> None:
    condense_and_serve("unsharded mcond", method="mcond")
    condense_and_serve("sharded K=2 (serial)", method="sharded",
                       inner="mcond", shards=2, workers=1)
    condense_and_serve("sharded K=2 (2 workers)", method="sharded",
                       inner="mcond", shards=2, workers=2)
    condense_and_serve("sharded K=4, degree parts", method="sharded",
                       inner="mcond", shards=4, workers=1,
                       partitioner="degree")


if __name__ == "__main__":
    main()
