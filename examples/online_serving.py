"""Online serving: a live runtime under Poisson traffic.

Where ``inductive_serving.py`` replays the paper's two fixed batch modes,
this example runs the deployment the way a production system would: a
long-lived :class:`~repro.serving.runtime.ServingRuntime` with a
micro-batching scheduler, fed by a Poisson arrival process of single-node
classification requests.  It contrasts two scheduling policies on the
same traffic:

- ``immediate``   — every request is its own forward pass (latency-first);
- ``microbatch``  — requests arriving within a few milliseconds share one
  attach+normalize+forward pass (throughput-first).

Run:  python examples/online_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.registry import make_workload
from repro.serving import replay, split_requests

DATASET = "pubmed-sim"
NUM_REQUESTS = 200
RATE = 400.0  # requests/second


def main() -> None:
    print(f"offline phase: condensing {DATASET} and packaging a bundle...")
    bundle = api.deploy(DATASET, method="mcond", budget=30, seed=0,
                        profile="quick")
    print(f"  -> {bundle!r}")

    stream = split_requests(api.evaluation_batch(bundle), NUM_REQUESTS, 1)
    workload = make_workload("poisson", rate=RATE)
    arrivals = workload.arrivals(NUM_REQUESTS, np.random.default_rng(0))
    print(f"replaying {NUM_REQUESTS} single-node requests, Poisson @ "
          f"{RATE:.0f} req/s ({arrivals[-1]:.2f}s of traffic)\n")

    header = (f"{'scheduler':<12} {'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
              f"{'wait ms':>8} {'req/batch':>10} {'req/s':>8}")
    print(header)
    print("-" * len(header))
    for scheduler in ("immediate", "microbatch"):
        runtime = api.open_runtime(bundle, scheduler=scheduler,
                                   batch_mode="node", max_batch_size=32,
                                   max_wait_ms=5.0)
        with runtime:
            replay(runtime, stream, arrivals)
        stats = runtime.stats()
        print(f"{scheduler:<12} {stats.latency_p50 * 1e3:>8.2f} "
              f"{stats.latency_p95 * 1e3:>8.2f} "
              f"{stats.latency_p99 * 1e3:>8.2f} "
              f"{stats.queue_wait_mean * 1e3:>8.2f} "
              f"{stats.mean_batch_requests:>10.1f} "
              f"{stats.throughput_rps:>8.0f}")

    print("\nmicro-batching trades queueing delay for shared passes: each "
          "coalesced batch serves bitwise-exactly as one engine pass over "
          "the merged requests.  (As with any serving batch size, batch "
          "composition itself shifts logits slightly — coalesced arrivals "
          "renormalize their shared neighbourhood together, the same "
          "effect as the paper's graph- vs node-batch modes.)")


if __name__ == "__main__":
    main()
