"""Non-parametric calibration on the connected synthetic graph.

Paper Table III / Section IV-D: because MCond's mapping attaches unseen
nodes directly to the synthetic graph, classic label propagation (LP) and
error propagation (EP) can calibrate the GNN's inductive predictions at
negligible cost — the propagation runs over N' + n nodes instead of N + n.

Run:  python examples/calibration_lp_ep.py
"""

from __future__ import annotations

import numpy as np

from repro.condense import MCondConfig, MCondReducer
from repro.graph import load_dataset, symmetric_normalize
from repro.inference import InductiveServer
from repro.nn import TrainConfig, make_model, train_node_classifier
from repro.nn.metrics import accuracy
from repro.propagation import error_propagation, label_propagation, softmax_rows
from repro.tensor import Tensor, no_grad


def main() -> None:
    split = load_dataset("pubmed-sim", seed=0)
    config = MCondConfig(outer_loops=3, match_steps=10, mapping_steps=30, seed=0)
    condensed = MCondReducer(config).reduce(split, budget=60)
    model = make_model("sgc", split.original.feature_dim, split.num_classes,
                       seed=0)
    train_node_classifier(model, condensed.normalized_adjacency(),
                          condensed.features, condensed.labels,
                          np.arange(condensed.num_nodes),
                          config=TrainConfig(epochs=100, patience=100))

    test = split.incremental_batch("test")
    print(f"dataset: {split!r}")
    print(f"condensed: {condensed!r}\n")
    header = (f"{'graph':<10} {'batch':<6} {'vanilla':>8} {'LP':>8} {'EP':>8} "
              f"{'prop ms':>8}")
    print(header)
    print("-" * len(header))

    for batch_mode in ("graph", "node"):
        for deployment, base_labels in (("original", split.original.labels),
                                        ("synthetic", condensed.labels)):
            server = InductiveServer(model, deployment, split.original,
                                     condensed)
            attached = server.attach(test, batch_mode)
            operator = symmetric_normalize(attached.adjacency)
            with no_grad():
                logits = model(operator, Tensor(attached.features)).data
            base_logits = logits[:attached.base_size]
            inductive_logits = logits[attached.base_size:]
            vanilla = accuracy(inductive_logits, test.labels)

            lp_scores, lp_time = label_propagation(
                attached, base_labels, split.num_classes,
                prior=softmax_rows(inductive_logits), return_time=True)
            ep_scores, ep_time = error_propagation(
                attached, base_labels, base_logits, inductive_logits,
                split.num_classes, gamma=0.4, return_time=True)

            label = "O" if deployment == "original" else "S"
            print(f"{label:<10} {batch_mode:<6} {vanilla:>8.3f} "
                  f"{accuracy(lp_scores, test.labels):>8.3f} "
                  f"{accuracy(ep_scores, test.labels):>8.3f} "
                  f"{(lp_time + ep_time) / 2 * 1e3:>8.2f}")

    print("\npropagation on the synthetic graph is cheaper by roughly the "
          "graph-size ratio, while LP/EP keep (or improve) accuracy.")


if __name__ == "__main__":
    main()
