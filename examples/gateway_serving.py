"""Network gateway: framed TCP serving, load shedding, autoscaling.

Where ``fleet_serving.py`` submits to the replica fleet in-process, this
walkthrough puts the fleet behind its network front door — the
:class:`~repro.serving.gateway.ServingGateway` — and talks to it the way
a remote caller would, over localhost TCP with the stdlib
:class:`~repro.serving.protocol.GatewayClient`:

- **parity** — logits served over the socket are bitwise equal to direct
  in-process serving (JSON float64 round-trips doubles exactly; binary
  payloads are raw little-endian buffers);
- **load shedding** — a burst past a deliberately tiny in-flight cap
  comes back as retriable ``shed`` replies with ``retry_after_ms``
  hints, with exact accounting (offered == served + shed);
- **autoscaling** — a client ramp builds real queue depth against one
  replica; the queue-depth policy reacts with a scale-up event while
  the ramp is still climbing, then walks the fleet back down once the
  traffic drains.

Run:  python examples/gateway_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import api
from repro.serving import GatewayClient, RampWorkload, split_requests
from repro.serving.gateway import QueueDepthScale, WatermarkShed

DATASET = "pubmed-sim"
RAMP_REQUESTS = 200


def main() -> None:
    print(f"offline phase: condensing {DATASET} and packaging a bundle...")
    bundle = api.deploy(DATASET, method="mcond", budget=30, seed=0,
                        profile="quick", deployment="original")
    batch = api.evaluation_batch(bundle)
    requests = split_requests(batch, 32, 4)

    # --- parity over the wire ----------------------------------------
    print("opening a 1-replica fleet behind the gateway (ephemeral port)")
    gateway = api.open_gateway(bundle, 1, shed_policy=None)
    try:
        host, port = gateway.address
        print(f"  listening on {host}:{port}")
        direct = gateway.fleet.submit_batch(requests[0]).result(timeout=120.0)
        for encoding in ("json", "binary"):
            with GatewayClient(host, port, encoding=encoding) as client:
                reply = client.serve_batch(requests[0])
            print(f"  {encoding:>6} encoding: bitwise equal to in-process "
                  f"serving = {np.array_equal(direct, reply.logits)}")
    finally:
        gateway.close()

    # --- load shedding ------------------------------------------------
    print("\nburst against a 4-slot in-flight cap (watermark shedding):")
    gateway = api.open_gateway(
        bundle, 1, max_inflight=4,
        shed_policy=WatermarkShed(high=0.5, low=0.25, retry_after_ms=25.0))
    try:
        with GatewayClient(*gateway.address, encoding="binary") as client:
            count = len([client.submit(request)
                         for request in requests * 2])
            replies = client.drain(count)
        ok = sum(reply.ok for reply in replies.values())
        shed = [r for r in replies.values() if r.status == "shed"]
        hints = sorted({round(r.retry_after_ms) for r in shed})
        stats = gateway.stats()
        print(f"  offered {stats['offered']}, served {ok}, "
              f"shed {len(shed)} (retry hints {hints} ms)")
        print(f"  accounting exact: "
              f"{stats['offered'] == stats['served'] + stats['shed']}")
    finally:
        gateway.close()

    # --- autoscaling under a client ramp -----------------------------
    print("\nclient ramp against 1 replica (queue-depth autoscaling):")
    ramp = RampWorkload(start_rate=100.0, end_rate=1200.0, duration_s=1.5)
    arrivals = ramp.arrivals(RAMP_REQUESTS, rng=0)
    stream = split_requests(batch, RAMP_REQUESTS, 4)
    gateway = api.open_gateway(
        bundle, 1, max_inflight=4 * RAMP_REQUESTS,
        scale_policy=QueueDepthScale(min_replicas=1, max_replicas=2,
                                     up_backlog=2.0, down_backlog=0.5),
        autoscale_interval=0.05, scale_cooldown=0.3)
    try:
        with GatewayClient(*gateway.address, encoding="binary") as client:
            client.serve_batch(stream[0])  # warm the lone replica
            started = time.monotonic()
            offset = started - gateway.started_at
            for arrival, request in zip(arrivals, stream):
                wait = arrival - (time.monotonic() - started)
                if wait > 0:
                    time.sleep(wait)
                client.submit(request)
            replies = client.drain(RAMP_REQUESTS)
            ok = sum(reply.ok for reply in replies.values())
            print(f"  ramp {ramp.start_rate:.0f} -> {ramp.end_rate:.0f} "
                  f"req/s over {arrivals[-1]:.2f}s; "
                  f"{ok}/{RAMP_REQUESTS} served")
            deadline = time.monotonic() + 30.0
            while (gateway.fleet.num_replicas > 1
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            for event in gateway.scale_events:
                print(f"  t={event['t_s'] - offset:+.2f}s scale "
                      f"{event['action']}: {event['from']} -> "
                      f"{event['to']} replicas "
                      f"(queue depth {event['queue_depth']})")
            print(f"  settled back to {gateway.fleet.num_replicas} replica; "
                  f"probe ok = {client.serve_batch(stream[0]).ok}")
    finally:
        gateway.close()


if __name__ == "__main__":
    main()
