"""Latency-sensitive serving: a Reddit-like stream of unseen posts.

The scenario from the paper's introduction: a high-throughput social
system must classify newly arriving posts (inductive nodes) with low
latency.  The offline phase (``api.deploy``) condenses the training graph
and packages a serving bundle once; the online phase (``api.serve``)
classifies streaming batches on the synthetic graph — compared against a
full-graph bundle, for both the node-batch (isolated posts) and
graph-batch (connected posts) regimes.

Run:  python examples/inductive_serving.py
"""

from __future__ import annotations

from repro import api
from repro.graph import load_dataset


def main() -> None:
    split = load_dataset("reddit-sim", seed=0)
    print(f"dataset: {split!r}")
    print("condensing the training graph offline (one-time cost)...")
    compact = api.deploy("reddit-sim", method="mcond", budget=164,
                         seed=0, profile="quick")
    whole = api.deploy("reddit-sim", method="whole", seed=0, profile="quick")
    print(f"  -> {compact!r}")

    stream = split.incremental_batch("test")
    print(f"serving {stream.num_nodes} unseen posts in batches of 1000\n")

    header = (f"{'server':<10} {'batch mode':<11} {'accuracy':>9} "
              f"{'ms/batch':>9} {'MB/batch':>9}")
    print(header)
    print("-" * len(header))
    for batch_mode in ("node", "graph"):
        for name, bundle in (("original", whole), ("synthetic", compact)):
            report = api.serve(bundle, stream, batch_size=1000,
                               batch_mode=batch_mode)
            print(f"{name:<10} {batch_mode:<11} {report.accuracy:>9.3f} "
                  f"{report.mean_batch_milliseconds:>9.2f} "
                  f"{report.memory_megabytes:>9.3f}")

    original_bytes = whole.storage_bytes()
    synthetic_bytes = compact.storage_bytes()
    print()
    print(f"resident deployment storage: original {original_bytes/2**20:.2f} MB"
          f" vs synthetic {synthetic_bytes/2**20:.2f} MB "
          f"({original_bytes / synthetic_bytes:.1f}x smaller)")


if __name__ == "__main__":
    main()
