"""Latency-sensitive serving: a Reddit-like stream of unseen posts.

The scenario from the paper's introduction: a high-throughput social
system must classify newly arriving posts (inductive nodes) with low
latency.  We condense the training graph once offline, then serve
streaming batches on the synthetic graph — comparing per-batch latency,
memory and accuracy against serving on the full original graph, for both
the node-batch (isolated posts) and graph-batch (connected posts)
regimes.

Run:  python examples/inductive_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.condense import MCondConfig, MCondReducer
from repro.graph import load_dataset, symmetric_normalize
from repro.inference import InductiveServer, deployment_storage_bytes
from repro.nn import TrainConfig, make_model, train_node_classifier


def train_models(split):
    """One model per deployment: full-graph and synthetic-graph."""
    original = split.original
    config = MCondConfig(outer_loops=2, match_steps=8, mapping_steps=20, seed=0)
    condensed = MCondReducer(config).reduce(split, budget=164)

    whole = make_model("sgc", original.feature_dim, split.num_classes, seed=0)
    train_node_classifier(whole, symmetric_normalize(original.adjacency),
                          original.features, original.labels,
                          split.labeled_in_original,
                          config=TrainConfig(epochs=60, patience=60))

    compact = make_model("sgc", original.feature_dim, split.num_classes, seed=0)
    train_node_classifier(compact, condensed.normalized_adjacency(),
                          condensed.features, condensed.labels,
                          np.arange(condensed.num_nodes),
                          config=TrainConfig(epochs=60, patience=60))
    return condensed, whole, compact


def main() -> None:
    split = load_dataset("reddit-sim", seed=0)
    print(f"dataset: {split!r}")
    print("condensing the training graph offline (one-time cost)...")
    condensed, whole, compact = train_models(split)
    print(f"  -> {condensed!r}")

    original_server = InductiveServer(whole, "original", split.original)
    synthetic_server = InductiveServer(compact, "synthetic", split.original,
                                       condensed)
    stream = split.incremental_batch("test")
    print(f"serving {stream.num_nodes} unseen posts in batches of 1000\n")

    header = (f"{'server':<10} {'batch mode':<11} {'accuracy':>9} "
              f"{'ms/batch':>9} {'MB/batch':>9}")
    print(header)
    print("-" * len(header))
    for batch_mode in ("node", "graph"):
        for name, server in (("original", original_server),
                             ("synthetic", synthetic_server)):
            report = server.run(stream, batch_size=1000, batch_mode=batch_mode)
            print(f"{name:<10} {batch_mode:<11} {report.accuracy:>9.3f} "
                  f"{report.mean_batch_milliseconds:>9.2f} "
                  f"{report.memory_megabytes:>9.3f}")

    original_bytes = deployment_storage_bytes("original", split.original)
    synthetic_bytes = deployment_storage_bytes("synthetic", split.original,
                                               condensed)
    print()
    print(f"resident deployment storage: original {original_bytes/2**20:.2f} MB"
          f" vs synthetic {synthetic_bytes/2**20:.2f} MB "
          f"({original_bytes / synthetic_bytes:.1f}x smaller)")


if __name__ == "__main__":
    main()
