#!/usr/bin/env python3
"""Documentation checks: intra-repo links and CLI-snippet drift.

Stdlib only, run from the repo root (CI's ``docs`` job)::

    python tools/check_docs.py

Two checks over ``README.md`` and every ``docs/*.md``:

1. **Links.** Every relative markdown link must resolve to a real file,
   and a ``#fragment`` pointing into a markdown file must match one of
   its headings (GitHub-style slugs).
2. **CLI snippets.** Every ``repro <subcommand> ...`` invocation inside
   a fenced code block is replayed as ``python -m repro <subcommand>
   --help``; the subcommand must exist and every ``--flag`` the snippet
   names must appear in that help text.  Docs that drift from the CLI
   fail the build instead of rotting.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
FENCE_RE = re.compile(r"^```.*$")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = [ROOT / "README.md"]
    files += sorted((ROOT / "docs").glob("*.md"))
    return [path for path in files if path.is_file()]


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor slug: drop code ticks/punctuation, hyphenate."""
    text = heading.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    slug = re.sub(r" ", "-", text)
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: Path) -> set[str]:
    seen: dict[str, int] = {}
    return {github_slug(match.group(2), seen)
            for match in HEADING_RE.finditer(path.read_text())}


def check_links(path: Path, slug_cache: dict[Path, set[str]]) -> list[str]:
    problems = []
    for match in LINK_RE.finditer(path.read_text()):
        target = match.group(2)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        target, _, fragment = target.partition("#")
        resolved = path if not target else (path.parent / target).resolve()
        rel = path.relative_to(ROOT)
        if not resolved.exists():
            problems.append(f"{rel}: broken link -> {match.group(2)}")
            continue
        if fragment and resolved.suffix == ".md":
            if resolved not in slug_cache:
                slug_cache[resolved] = heading_slugs(resolved)
            if fragment not in slug_cache[resolved]:
                problems.append(
                    f"{rel}: missing anchor -> {match.group(2)}")
    return problems


def snippet_invocations(path: Path) -> list[tuple[str, list[str]]]:
    """(subcommand, [--flags]) for each ``repro ...`` line in a fence."""
    invocations = []
    in_fence = False
    pending = ""
    for line in path.read_text().splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        line = pending + line.strip()
        pending = ""
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        words = line.split()
        if not words or words[0] != "repro" or len(words) < 2:
            continue
        subcommand = words[1]
        if subcommand.startswith("-"):
            continue
        flags = [word.split("=")[0] for word in words[2:]
                 if re.fullmatch(r"--[A-Za-z0-9][\w\-]*(=\S*)?", word)]
        invocations.append((subcommand, flags))
    return invocations


def check_snippets(path: Path, help_cache: dict[str, str | None],
                   ) -> list[str]:
    problems = []
    rel = path.relative_to(ROOT)
    for subcommand, flags in snippet_invocations(path):
        if subcommand not in help_cache:
            result = subprocess.run(
                [sys.executable, "-m", "repro", subcommand, "--help"],
                capture_output=True, text=True, cwd=ROOT,
                env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            )
            help_cache[subcommand] = (result.stdout if result.returncode == 0
                                      else None)
        help_text = help_cache[subcommand]
        if help_text is None:
            problems.append(
                f"{rel}: snippet uses unknown subcommand 'repro "
                f"{subcommand}' (--help exited non-zero)")
            continue
        for flag in flags:
            if flag not in help_text:
                problems.append(
                    f"{rel}: 'repro {subcommand}' snippet names {flag}, "
                    f"not in its --help")
    return problems


def main() -> int:
    files = doc_files()
    slug_cache: dict[Path, set[str]] = {}
    help_cache: dict[str, str | None] = {}
    problems: list[str] = []
    links = snippets = 0
    for path in files:
        problems += check_links(path, slug_cache)
        links += len(LINK_RE.findall(path.read_text()))
        invocations = snippet_invocations(path)
        snippets += len(invocations)
        problems += check_snippets(path, help_cache)
    for problem in problems:
        print(f"FAIL: {problem}")
    status = "FAILED" if problems else "ok"
    print(f"docs check {status}: {len(files)} files, {links} links, "
          f"{snippets} CLI snippet lines, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
