#!/usr/bin/env python3
"""Documentation checks: intra-repo links and CLI-snippet drift.

Since PR 9 the actual analysis lives in :mod:`repro.analysis.docs`,
where it runs as the ``docs`` checker of ``repro check``.  This script
is the standalone entry point CI's ``docs`` job (and muscle memory)
still calls::

    python tools/check_docs.py

It keeps the original module surface — ``ROOT``, ``doc_files()``,
``check_links(path, slug_cache)`` returning strings — as a thin layer
over the package implementation.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import docs as _docs  # noqa: E402 — needs sys.path

LINK_RE = _docs.LINK_RE
HEADING_RE = _docs.HEADING_RE
FENCE_RE = _docs.FENCE_RE
EXTERNAL_PREFIXES = _docs.EXTERNAL_PREFIXES

github_slug = _docs.github_slug
heading_slugs = _docs.heading_slugs


def doc_files() -> list[Path]:
    return _docs.doc_files(ROOT)


def check_links(path: Path, slug_cache: dict[Path, set[str]]) -> list[str]:
    return [problem.render(ROOT)
            for problem in _docs.check_links(path, slug_cache)]


def snippet_invocations(path: Path) -> list[tuple[str, list[str]]]:
    """(subcommand, [--flags]) for each ``repro ...`` line in a fence."""
    return [(subcommand, flags) for _line, subcommand, flags
            in _docs.snippet_invocations(path)]


def check_snippets(path: Path,
                   help_cache: dict[str, str] | None = None) -> list[str]:
    if not help_cache:
        help_cache = _docs.cli_help_texts()
    return [problem.render(ROOT)
            for problem in _docs.check_snippets(path, help_cache)]


def main() -> int:
    problems, stats = _docs.run_docs_check(ROOT)
    for problem in problems:
        print(f"FAIL: {problem.render(ROOT)}")
    status = "FAILED" if problems else "ok"
    print(f"docs check {status}: {stats['files']} files, "
          f"{stats['links']} links, {stats['snippets']} CLI snippet "
          f"lines, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
