"""Shared benchmark fixtures.

All benchmark files share one :class:`ExperimentContext` per dataset so
condensation and model training happen once per session regardless of how
many tables/figures are regenerated.  Effort is controlled by the
``REPRO_EFFORT`` environment variable (quick | full).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, current_profile, prepare_dataset

DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")


@pytest.fixture(scope="session")
def contexts() -> dict[str, ExperimentContext]:
    """Lazily-populated per-dataset experiment contexts."""
    cache: dict[str, ExperimentContext] = {}

    class _Lazy(dict):
        def __missing__(self, name: str) -> ExperimentContext:
            profile = current_profile()
            context = ExperimentContext(prepare_dataset(name, seed=0), profile)
            self[name] = context
            return context

    return _Lazy(cache)


def pytest_configure(config):
    profile = current_profile()
    print(f"\n[repro benchmarks] effort profile: {profile.name} "
          f"(seeds={profile.seeds})")
