"""Shared benchmark fixtures.

All benchmark files share one :class:`ExperimentContext` per dataset so
condensation and model training happen once per session regardless of how
many tables/figures are regenerated.  Effort is controlled by the
``REPRO_EFFORT`` environment variable (quick | full).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentContext, current_profile, prepare_dataset

DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")

# One seed for every workload generator in the benchmark suite: arrival
# processes are deterministic across runs and machines, so latency numbers
# are comparable commit to commit.
WORKLOAD_SEED = 2024


@pytest.fixture
def workload_rng() -> np.random.Generator:
    """A fresh, deterministically-seeded generator per benchmark.

    Function-scoped on purpose: a shared generator would make arrival
    times depend on benchmark execution order.
    """
    return np.random.default_rng(WORKLOAD_SEED)


@pytest.fixture(scope="session")
def contexts() -> dict[str, ExperimentContext]:
    """Lazily-populated per-dataset experiment contexts."""
    cache: dict[str, ExperimentContext] = {}

    class _Lazy(dict):
        def __missing__(self, name: str) -> ExperimentContext:
            profile = current_profile()
            context = ExperimentContext(prepare_dataset(name, seed=0), profile)
            self[name] = context
            return context

    return _Lazy(cache)


def pytest_configure(config):
    profile = current_profile()
    print(f"\n[repro benchmarks] effort profile: {profile.name} "
          f"(seeds={profile.seeds})")
