"""Figure 6 — mapping sparsification trade-off (delta sweep).

For each dataset: sparsity rises monotonically with delta; accuracy stays
flat (or improves slightly) for small delta and collapses only at large
delta — the paper's accuracy/sparsity trade-off curve.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import dataset_budgets, format_table, run_fig6

DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]

    rows = benchmark.pedantic(
        lambda: run_fig6(context, budget=budget),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, ["dataset", "delta", "sparsity", "accuracy",
                              "mapping_nnz"],
                       title=f"Fig. 6 — {dataset}"))
    sparsities = [r["sparsity"] for r in rows]
    assert all(b >= a - 1e-12 for a, b in zip(sparsities, sparsities[1:])), (
        "sparsity must be monotone in delta")
    accuracies = [r["accuracy"] for r in rows if not math.isnan(r["accuracy"])]
    best = max(accuracies)
    # Moderate thresholds must not hurt much; the curve peaks in the middle.
    assert accuracies[0] <= best + 1e-9
    small_delta_accuracy = max(accuracies[:4])
    assert small_delta_accuracy >= best - 0.05, (
        "small thresholds should retain near-peak accuracy")
