"""Table IV — generalizability across GNN architectures.

GCN, GraphSAGE, APPNP and Cheby trained on MCond's synthetic graph and
served both on the original graph (SO) and the connected synthetic graph
(SS).  Expected shape: for every architecture, SS accuracy within a few
points of SO at a fraction of the per-batch latency.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_table4

DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")
COLUMNS = ["dataset", "batch", "architecture", "method", "accuracy", "time_ms"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table4(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]

    rows = benchmark.pedantic(
        lambda: run_table4(context, budget=budget),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, COLUMNS, title=f"Table IV — {dataset}"))
    for batch in ("graph", "node"):
        for arch in ("gcn", "graphsage", "appnp", "cheby"):
            so = next(r for r in rows if r["batch"] == batch
                      and r["architecture"] == arch and r["method"] == "mcond_so")
            ss = next(r for r in rows if r["batch"] == batch
                      and r["architecture"] == arch and r["method"] == "mcond_ss")
            assert ss["time_ms"] < so["time_ms"], (
                f"{arch}: synthetic serving must be faster than original")
            assert ss["accuracy"] > so["accuracy"] - 0.25, (
                f"{arch}: synthetic serving accuracy collapsed")
