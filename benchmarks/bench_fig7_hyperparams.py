"""Figure 7 — sensitivity to the loss weights lambda and beta (flickr-sim,
as in the paper).

Each grid point is a full MCond condensation, so the sweep is kept small:
one axis at a time around the defaults.  Expected shape: accuracy varies
smoothly; extreme weights do not beat the tuned mid-range defaults.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_fig7

DATASETS = ("flickr-sim",)
LAMBDAS = (0.0, 0.1, 10.0)
BETAS = (0.0, 100.0, 1000.0)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]

    rows = benchmark.pedantic(
        lambda: run_fig7(context, budget=budget, lambdas=LAMBDAS, betas=BETAS),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, ["dataset", "axis", "value", "lambda", "beta",
                              "accuracy"],
                       title=f"Fig. 7 — {dataset}"))
    accuracies = [r["accuracy"] for r in rows]
    assert max(accuracies) - min(accuracies) < 0.30, (
        "hyper-parameter sweep should not destabilize training completely")
    beta_rows = {r["value"]: r["accuracy"] for r in rows if r["axis"] == "beta"}
    assert beta_rows[100.0] >= beta_rows[0.0] - 0.05, (
        "the tuned beta should not lose to disabling the inductive loss")
