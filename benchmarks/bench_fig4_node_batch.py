"""Figure 4 — inference time and memory, node-batch setting.

Same panels as Fig. 3 but with isolated inductive nodes (``ea`` zeroed).
The paper's headline numbers (121.5x speedup / 55.9x memory on Reddit) come
from this pair of figures; at simulator scale the ratios are smaller but
must point the same way and grow with graph size.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_fig34
DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")

COLUMNS = ["dataset", "r", "method", "time_ms", "memory_mb",
           "speedup_vs_whole", "compression_vs_whole", "accuracy"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig4(benchmark, contexts, dataset):
    context = contexts[dataset]
    budgets = dataset_budgets(dataset)

    rows = benchmark.pedantic(
        lambda: run_fig34(context, budgets=budgets, batch_mode="node"),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, COLUMNS, title=f"Fig. 4 — {dataset} (node batch)"))
    # See bench_fig3_graph_batch.py: strict >1 at the smallest ratio, a 0.7
    # floor where the serving batch is comparable to the downscaled graph.
    small_budget_floor = 0.7 if dataset == "flickr-sim" else 1.0
    mcond_rows = [r for r in rows if r["method"] == "mcond_ss"]
    for i, row in enumerate(mcond_rows):
        floor = small_budget_floor if i == 0 else 0.7
        assert row["speedup_vs_whole"] > floor
        assert row["compression_vs_whole"] > 1.0
