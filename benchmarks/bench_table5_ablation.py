"""Table V — ablation of MCond's optimization constraints.

Four MCond_SS configurations per dataset: plain (no L_str, no L_ind),
w/o L_str, w/o L_ind, and full.  Expected shape: the full model is best,
and dropping the inductive loss hurts more than dropping the structure
loss.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_table5

DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table5(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]

    rows = benchmark.pedantic(
        lambda: run_table5(context, budget=budget),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, ["dataset", "budget", "ablation", "batch",
                              "accuracy"],
                       title=f"Table V — {dataset}"))
    for batch in ("node", "graph"):
        accuracy = {r["ablation"]: r["accuracy"] for r in rows
                    if r["batch"] == batch}
        assert accuracy["full"] >= accuracy["plain"] - 0.02, (
            "full MCond should beat the plain ablation")
