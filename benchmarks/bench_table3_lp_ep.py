"""Table III — label/error propagation calibration, O vs S deployments.

Expected shape: LP and EP improve (or match) the vanilla GNN on the
connected synthetic graph, and propagation on the synthetic graph is
many times faster than on the original graph.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_table3

DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")
COLUMNS = ["dataset", "budget", "batch", "graph", "vanilla", "lp", "ep",
           "prop_time_ms", "acceleration"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_table3(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]

    rows = benchmark.pedantic(
        lambda: run_table3(context, budget=budget),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, COLUMNS, title=f"Table III — {dataset}"))
    for row in rows:
        # Calibration must not destroy accuracy.
        assert row["lp"] >= row["vanilla"] - 0.05
        assert row["ep"] >= row["vanilla"] - 0.05
    # Propagation acceleration scales with N/N'; at 20x-reduced dataset
    # scale the fixed per-call overhead dominates on the smallest graph, so
    # the strict >1 requirement applies to the larger graphs only.
    synthetic = [r for r in rows if r["graph"] == "S"]
    large_graph = context.prepared.original.num_nodes > 3000
    for row in synthetic:
        if large_graph:
            assert row["acceleration"] > 1.0, (
                "propagation on the synthetic graph must be faster than on "
                "the original graph")
        else:
            assert row["acceleration"] > 0.2
