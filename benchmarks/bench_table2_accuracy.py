"""Table II — inductive inference accuracy of every method.

Regenerates, per dataset: {Whole, Random, Degree, Herding, K-Center, VNG,
MCond_OS, GCond, MCond_SO, MCond_SS} x {graph batch, node batch} x two
reduction budgets.  The expected shape (paper): MCond_OS beats all coreset
and VNG baselines and approaches Whole; MCond_SO beats GCond; MCond_SS is
close to MCond_SO; graph batch >= node batch.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_table2
DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")


@pytest.mark.parametrize("dataset", DATASETS)
def test_table2(benchmark, contexts, dataset):
    context = contexts[dataset]
    budgets = dataset_budgets(dataset)

    rows = benchmark.pedantic(
        lambda: run_table2(context, budgets=budgets,
                           batch_modes=("graph", "node")),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, ["dataset", "batch", "budget", "r", "method",
                              "setting", "display"],
                       title=f"Table II — {dataset}"))
    by_key = {(r["batch"], r["budget"], r["method"]): r["accuracy"]
              for r in rows}
    for batch in ("graph", "node"):
        for budget in budgets:
            whole = by_key[(batch, budget, "whole")]
            mcond_os = by_key[(batch, budget, "mcond_os")]
            coreset_best = max(by_key[(batch, budget, m)]
                               for m in ("random", "degree", "herding",
                                         "kcenter"))
            # Shape assertions (loose: quick profile, single seed).
            assert mcond_os > coreset_best - 0.03, (
                f"MCond_OS should beat coresets ({batch}, r={budget})")
            assert mcond_os > whole - 0.15, (
                f"MCond_OS should approach Whole ({batch}, r={budget})")
