"""Condensation-scaling benchmarks (pytest-benchmark timing).

Times the offline phase — the quantity the sharded pipeline exists to
shrink — three ways:

- the unsharded baseline reducer (one process, whole graph);
- the sharded pipeline at K ∈ {1, 2, 4} shards (serial workers, so the
  numbers isolate the *algorithmic* savings of condensing smaller shards
  from multiprocessing overhead);
- the partition step alone, per strategy (it must stay negligible
  against condensation).

This complements the one-shot ``repro bench-condense`` harness (which
writes the tracked ``BENCH_condense.json`` and feeds the CI perf gate)
with pytest-benchmark's statistical treatment, and asserts the same
invariants: the merged graph spends the full budget and K=1 matches the
baseline bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import dataset_budgets
from repro.graph.partition import make_partitioner
from repro.registry import make_reducer

DATASETS = ("pubmed-sim",)
SHARD_COUNTS = (1, 2, 4)


def _inner(context):
    return context.reducer_config("mcond")


@pytest.mark.parametrize("dataset", DATASETS)
def test_unsharded_condense_baseline(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]
    config = _inner(context)
    condensed = benchmark.pedantic(
        lambda: make_reducer("mcond", seed=0, **config).reduce(
            context.prepared.split, budget),
        rounds=1, iterations=1)
    assert condensed.num_nodes == budget


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_condense_scaling(benchmark, contexts, dataset, shards):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]
    config = _inner(context)
    split = context.prepared.split
    condensed = benchmark.pedantic(
        lambda: make_reducer("sharded", seed=0, inner="mcond", shards=shards,
                             workers=1, **config).reduce(split, budget),
        rounds=1, iterations=1)
    assert condensed.num_nodes == budget
    if shards == 1:
        direct = make_reducer("mcond", seed=0, **config).reduce(split, budget)
        assert np.array_equal(condensed.adjacency, direct.adjacency)
        assert np.array_equal(condensed.features, direct.features)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("strategy", ("stratified", "degree"))
def test_partition_latency(benchmark, contexts, dataset, strategy):
    context = contexts[dataset]
    graph = context.prepared.original
    partition = make_partitioner(strategy)
    shards = benchmark(lambda: partition(graph, 4, seed=0))
    assert sum(s.size for s in shards) == graph.num_nodes
