"""Streaming-evolution benchmarks (pytest-benchmark timing).

Times the piece the streaming subsystem exists for — keeping a prepared
deployment's serving caches fresh while the base graph evolves:

- ``apply_delta`` with incremental refresh (the default path);
- ``apply_delta`` with ``staleness_threshold=0`` (every delta rebuilds
  the warm caches from scratch — the baseline the CI gate compares
  against);
- the raw ``StreamingGraph.apply`` row splice, without any serving
  caches (the floor every refresh strategy pays).

This complements the one-shot ``repro bench-stream`` harness (which
writes the tracked ``BENCH_streaming.json`` and feeds the CI perf gate)
with pytest-benchmark's statistical treatment, and asserts the same
invariant: after the trace, the incrementally-refreshed operator is
bit-identical to a from-scratch ``PreparedDeployment`` on the evolved
graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.stream import StreamingGraph, make_delta_trace
from repro.nn import make_model
from repro.serving import PreparedDeployment

DATASETS = ("pubmed-sim",)
NUM_DELTAS = 10


@pytest.fixture(scope="module")
def streaming_setup(contexts):
    setups = {}
    for dataset in DATASETS:
        prepared_ds = contexts[dataset].prepared
        split = prepared_ds.split
        batch = split.incremental_batch("test")
        trace = make_delta_trace(
            split.original, batch.subset(np.arange(3 * NUM_DELTAS)),
            num_deltas=NUM_DELTAS, nodes_per_delta=3, edges_per_delta=4,
            removals_per_delta=2, updates_per_delta=2, seed=0)
        model = make_model("sgc", split.original.feature_dim,
                           split.num_classes, seed=0)
        setups[dataset] = (split, trace, model)
    return setups


def _warm_prepared(split, model):
    prepared = PreparedDeployment(model, "original", split.original)
    prepared.base_operator()
    prepared.propagated_base_features()
    return prepared


@pytest.mark.parametrize("dataset", DATASETS)
def test_delta_refresh_incremental(benchmark, streaming_setup, dataset):
    split, trace, model = streaming_setup[dataset]

    def run():
        prepared = _warm_prepared(split, model)
        for delta in trace:
            prepared.apply_delta(delta)
        return prepared

    prepared = benchmark.pedantic(run, rounds=3, iterations=1)
    fresh = PreparedDeployment(model, "original", prepared.base)
    assert np.array_equal(prepared.base_operator().data,
                          fresh.base_operator().data)


@pytest.mark.parametrize("dataset", DATASETS)
def test_delta_refresh_full_rebuild(benchmark, streaming_setup, dataset):
    split, trace, model = streaming_setup[dataset]

    def run():
        prepared = _warm_prepared(split, model)
        for delta in trace:
            prepared.apply_delta(delta, staleness_threshold=0.0)
        return prepared

    prepared = benchmark.pedantic(run, rounds=3, iterations=1)
    assert prepared.num_base == split.original.num_nodes + 3 * NUM_DELTAS


@pytest.mark.parametrize("dataset", DATASETS)
def test_raw_stream_splice(benchmark, streaming_setup, dataset):
    split, trace, _ = streaming_setup[dataset]

    def run():
        stream = StreamingGraph(split.original)
        for delta in trace:
            stream.apply(delta)
        return stream

    stream = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stream.num_nodes == split.original.num_nodes + 3 * NUM_DELTAS
