"""Micro-benchmarks of the serving path (pytest-benchmark timing).

Measures a single serve_batch call — attach + normalize + SGC forward —
on the original vs the MCond synthetic deployment, for both the naive
(uncached) engine path and the prepared-deployment cache.  This is the
quantity behind Fig. 3/4's per-batch latency; pytest-benchmark gives it
proper statistical treatment (many rounds), complementing the one-shot
``repro bench`` harness.

The runtime benchmarks drive the micro-batching ``ServingRuntime`` two
ways: a closed-loop drain (pure serving throughput, no sleep floor) and
an open-loop replay of a Poisson stream seeded from
``conftest.WORKLOAD_SEED`` (queueing behaviour under a fixed load).
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets
from repro.inference import InductiveServer
from repro.serving import (
    PoissonWorkload,
    PreparedDeployment,
    ServingRuntime,
    replay,
    split_requests,
)

DATASETS = ("pubmed-sim", "reddit-sim")


def _deployed(context, deployment):
    budget = dataset_budgets(context.prepared.name)[-1]
    condensed = (context.reduce("mcond", budget)
                 if deployment == "synthetic" else None)
    model = context.train(
        "original" if deployment == "original" else "synthetic",
        condensed=condensed,
        validate_deployment=deployment)
    return model, condensed


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("deployment", ("original", "synthetic"))
@pytest.mark.parametrize("path", ("uncached", "cached"))
def test_serve_batch_latency(benchmark, contexts, dataset, deployment, path):
    context = contexts[dataset]
    model, condensed = _deployed(context, deployment)
    server = InductiveServer(model, deployment, context.prepared.original,
                             condensed, use_cache=(path == "cached"))
    batch = context.prepared.test_batch
    first = batch.subset(range(min(1000, batch.num_nodes)))

    logits, _, _ = benchmark(lambda: server.serve_batch(first, "node"))
    assert logits.shape[0] == first.num_nodes


@pytest.mark.parametrize("dataset", DATASETS)
def test_frozen_path_latency(benchmark, contexts, dataset):
    context = contexts[dataset]
    model, condensed = _deployed(context, "synthetic")
    prepared = PreparedDeployment(model, "synthetic", None, condensed)
    batch = context.prepared.test_batch
    first = batch.subset(range(min(1000, batch.num_nodes)))

    logits, _, _ = benchmark(
        lambda: prepared.serve_batch_frozen(first, "node"))
    assert logits.shape[0] == first.num_nodes


@pytest.mark.parametrize("dataset", ("pubmed-sim",))
def test_runtime_microbatch_throughput(benchmark, contexts, dataset):
    """Closed-loop drain of a request stream: pure serving throughput.

    No arrival schedule — every request is submitted eagerly, so the
    measured time is serving work only (a 2x serving regression shows up
    as 2x here, with no sleep floor).
    """
    context = contexts[dataset]
    model, condensed = _deployed(context, "synthetic")
    prepared = PreparedDeployment(model, "synthetic", None, condensed)
    runtime = ServingRuntime(prepared, "sizecap", batch_mode="node",
                             scheduler_options={"max_batch_size": 16})
    requests = split_requests(context.prepared.test_batch, 64, 1)

    results = benchmark(lambda: replay(runtime, requests))
    assert len(results) == 64
    assert runtime.stats().requests >= 64


@pytest.mark.parametrize("dataset", ("pubmed-sim",))
def test_runtime_open_loop_replay(benchmark, contexts, dataset, workload_rng):
    """Open-loop replay of a seeded Poisson stream (end-to-end wall time).

    Arrival offsets come from the conftest-seeded generator, so every
    round replays the identical traffic shape.  The measurement is
    floor-bounded by the schedule's span (~16 ms at 4000 req/s) — it
    tracks queueing behaviour under a fixed load, not raw serving speed
    (that is the closed-loop benchmark above).
    """
    context = contexts[dataset]
    model, condensed = _deployed(context, "synthetic")
    prepared = PreparedDeployment(model, "synthetic", None, condensed)
    runtime = ServingRuntime(prepared, "sizecap", batch_mode="node",
                             scheduler_options={"max_batch_size": 16})
    requests = split_requests(context.prepared.test_batch, 64, 1)
    arrivals = PoissonWorkload(rate=4000.0).arrivals(64, workload_rng)

    results = benchmark(lambda: replay(runtime, requests, arrivals))
    assert len(results) == 64
    assert runtime.stats().requests >= 64
