"""Micro-benchmark of the serving path itself (pytest-benchmark timing).

Measures a single serve_batch call — attach + normalize + SGC forward —
on the original vs the MCond synthetic deployment.  This is the quantity
behind Fig. 3/4's per-batch latency; pytest-benchmark gives it proper
statistical treatment (many rounds), complementing the one-shot harnesses.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets
from repro.inference import InductiveServer

DATASETS = ("pubmed-sim", "reddit-sim")


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("deployment", ("original", "synthetic"))
def test_serve_batch_latency(benchmark, contexts, dataset, deployment):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[-1]
    condensed = context.reduce("mcond", budget) if deployment == "synthetic" else None
    model = context.train(
        "original" if deployment == "original" else "synthetic",
        condensed=condensed,
        validate_deployment=deployment)
    server = InductiveServer(model, deployment, context.prepared.original,
                             condensed)
    batch = context.prepared.test_batch
    first = batch.subset(range(min(1000, batch.num_nodes)))

    logits, _, _ = benchmark(lambda: server.serve_batch(first, "node"))
    assert logits.shape[0] == first.num_nodes
