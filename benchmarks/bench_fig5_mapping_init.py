"""Figure 5 — mapping-matrix structure and class-aware initialization.

Panels (on reddit-sim, as in the paper): (a) the trained mapping's class
blocks are diagonal-dominant; (b) the class-aware initialization is too;
(c) class-aware initialization starts at a lower mapping loss and ends at
an accuracy at least as good as random initialization.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, run_fig5

DATASETS = ("reddit-sim",)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5(benchmark, contexts, dataset):
    context = contexts[dataset]
    budget = dataset_budgets(dataset)[0]

    summary = benchmark.pedantic(
        lambda: run_fig5(context, budget=budget),
        rounds=1, iterations=1)

    print()
    print(f"Fig. 5 — {dataset} (budget {budget})")
    for key in ("trained_diagonal_dominance", "init_diagonal_dominance",
                "loss_first_class_aware", "loss_first_random",
                "loss_last_class_aware", "loss_last_random",
                "accuracy_class_aware", "accuracy_random"):
        print(f"  {key:32s} {summary[key]:.4f}")

    assert summary["trained_diagonal_dominance"] > 0.5, (
        "trained mapping should be class-block diagonal-dominant (Fig. 5a)")
    assert summary["init_diagonal_dominance"] > 0.5, (
        "class-aware init should be diagonal-dominant (Fig. 5b)")
    # Fig. 5c: the paper reports class-aware init starting at a lower loss.
    # At simulator scale the wide-gap init we need for many-class attachment
    # (see DESIGN.md) inverts the *initial* loss comparison — the random
    # (near-uniform) mapping reconstructs a global-mean embedding that the
    # L2,1 objectives score deceptively well — so the transferred claims are
    # that training reduces the class-aware loss and the class-aware init
    # ends at accuracy at least as good as random init.
    assert summary["loss_last_class_aware"] < summary["loss_first_class_aware"]
    assert summary["accuracy_class_aware"] >= summary["accuracy_random"] - 0.02
