"""Ablation of the reproduction's warm-start substitutions (DESIGN.md).

The CPU-scale runs replace the paper's thousands of condensation epochs
with three warm starts: propagated-feature initialization of X', class-
agreement pretraining of the Eq. 6 adjacency MLP, and a wide-gap class-
aware mapping init.  This bench quantifies each choice's contribution on
pubmed-sim, plus DosCond (one-step matching) as a trajectory-matching
ablation — evidence that the substitutions do the work the long GPU runs
do in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.condense import DosCondConfig, DosCondReducer, MCondConfig, MCondReducer
from repro.experiments import format_table

VARIANTS = {
    "full": {},
    "no_prop_init": {"init_propagated": False},
    "no_adj_pretrain": {"adjacency_pretrain_steps": 0},
    "random_map_init": {"class_aware_init": False},
}


def _accuracy(contexts, condensed) -> float:
    context = contexts["pubmed-sim"]
    model = context.train("synthetic", condensed=condensed,
                          validate_deployment="synthetic", seed=0)
    return context.evaluate(model, "synthetic", condensed,
                            batch_mode="graph").accuracy


def test_warmstart_ablation(benchmark, contexts):
    context = contexts["pubmed-sim"]
    profile = context.profile

    def run() -> list[dict]:
        rows = []
        for name, overrides in VARIANTS.items():
            config = MCondConfig(outer_loops=profile.outer_loops,
                                 match_steps=profile.match_steps,
                                 mapping_steps=profile.mapping_steps,
                                 relay_steps=profile.relay_steps,
                                 seed=0, **overrides)
            condensed = MCondReducer(config).reduce(context.prepared.split, 60)
            rows.append({"variant": name,
                         "accuracy": _accuracy(contexts, condensed)})
        doscond = DosCondReducer(DosCondConfig(
            outer_loops=profile.outer_loops,
            match_steps=profile.match_steps, seed=0))
        condensed = doscond.reduce(context.prepared.split, 60)
        model = context.train("synthetic", condensed=condensed,
                              validate_deployment="original", seed=0)
        rows.append({
            "variant": "doscond (S->O)",
            "accuracy": context.evaluate(model, "original", None,
                                         batch_mode="graph").accuracy})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["variant", "accuracy"],
                       title="Warm-start ablation — pubmed-sim (budget 60)"))
    accuracy = {row["variant"]: row["accuracy"] for row in rows}
    assert accuracy["full"] >= accuracy["random_map_init"] - 0.05
    assert accuracy["full"] >= accuracy["no_adj_pretrain"] - 0.05
    assert all(np.isfinite(list(accuracy.values())))
