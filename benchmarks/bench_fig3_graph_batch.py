"""Figure 3 — inference time and memory, graph-batch setting.

Regenerates the per-dataset latency/memory panels: each reduced deployment
vs the full original graph ("Whole", 100%).  Expected shape: MCond serves
much faster and smaller than Whole (the gap grows with dataset size),
coresets are cheapest, VNG denser than coresets.
"""

from __future__ import annotations

import pytest

from repro.experiments import dataset_budgets, format_table, run_fig34
DATASETS = ("pubmed-sim", "flickr-sim", "reddit-sim")

COLUMNS = ["dataset", "r", "method", "time_ms", "memory_mb",
           "speedup_vs_whole", "compression_vs_whole", "accuracy"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig3(benchmark, contexts, dataset):
    context = contexts[dataset]
    budgets = dataset_budgets(dataset)

    rows = benchmark.pedantic(
        lambda: run_fig34(context, budgets=budgets, batch_mode="graph"),
        rounds=1, iterations=1)

    print()
    print(format_table(rows, COLUMNS, title=f"Fig. 3 — {dataset} (graph batch)"))
    mcond_rows = [r for r in rows if r["method"] == "mcond_ss"]
    whole_row = next(r for r in rows if r["method"] == "whole")
    # The latency ratio scales with N / (N' + n) and shrinks as r grows (the
    # paper's Fig. 3 shape).  At 20x-reduced scale the larger budgets on the
    # smaller graphs approach ratio 1 by construction (on flickr-sim the
    # 1000-node serving batch is ~half the training graph), so strict >1 is
    # required at the smallest ratio and a floor at the rest.
    small_budget_floor = 0.7 if dataset == "flickr-sim" else 1.0
    for i, row in enumerate(mcond_rows):
        floor = small_budget_floor if i == 0 else 0.7
        assert row["speedup_vs_whole"] > floor, (
            "MCond serving latency regressed far beyond the scale allowance")
        assert row["compression_vs_whole"] > 1.0, "MCond must be smaller than Whole"
    # Smaller budget => at least as compressed.
    if len(mcond_rows) == 2:
        small, large = mcond_rows
        assert small["memory_mb"] <= large["memory_mb"] * 1.05
    assert whole_row["speedup_vs_whole"] == 1.0
