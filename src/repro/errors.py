"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ShapeError(ReproError, ValueError):
    """An array or tensor has an incompatible shape."""


class GraphError(ReproError, ValueError):
    """A graph object is malformed or an operation received an invalid graph."""


class DatasetError(ReproError, ValueError):
    """A dataset name or configuration is invalid."""


class AutogradError(ReproError, RuntimeError):
    """Invalid use of the automatic differentiation engine."""


class CondensationError(ReproError, RuntimeError):
    """A graph reduction method received invalid inputs or failed to run."""


class InferenceError(ReproError, RuntimeError):
    """The inductive inference engine received inconsistent inputs."""


class ServingError(InferenceError):
    """The online serving runtime rejected a request or is misconfigured."""


class ConfigError(ReproError, ValueError):
    """An experiment configuration is invalid."""


class RegistryError(ConfigError):
    """A registry lookup failed or a registration key collided."""


class ArtifactError(ReproError, RuntimeError):
    """A persisted artifact is missing, corrupt, or from an unknown format."""
