"""Subcommand CLI over the :mod:`repro.api` facade.

The pipeline commands mirror the paper's offline/online split::

    repro condense --dataset pubmed-sim --method mcond --budget 30 \\
                   --output artifact.npz     # offline: condense + train
    repro serve    --artifact artifact.npz --batch-mode node
    repro eval     --dataset pubmed-sim --method mcond_ss --budget 30
    repro list                                # registry contents

The paper's tables and figures remain available as thin wrappers over the
same machinery::

    repro table2 --dataset pubmed-sim
    repro fig6   --dataset pubmed-sim --effort full

Unknown dataset/method/model names exit with status 2 and list the
registered alternatives.
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.errors import DatasetError, ReproError
from repro.experiments import (
    FULL,
    QUICK,
    ExperimentContext,
    METHODS,
    dataset_budgets,
    format_table,
    prepare_dataset,
    run_fig34,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.registry import DATASETS, MODELS, REDUCERS

_EXPERIMENTS = ("table2", "table3", "table4", "table5",
                "fig3", "fig4", "fig5", "fig6", "fig7")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="pubmed-sim",
                        help="dataset registry key (default: pubmed-sim)")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset/condensation seed (default: 0)")
    parser.add_argument("--effort", choices=("quick", "full"), default="quick",
                        help="compute profile (default: quick)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Condense graphs offline, serve inductive nodes online, "
                    "and regenerate the MCond paper's tables/figures "
                    "(ICDE 2024)")
    sub = parser.add_subparsers(dest="command", metavar="command",
                                required=True)

    condense = sub.add_parser(
        "condense",
        help="offline phase: condense a dataset, train the deployment "
             "model, optionally save a servable bundle")
    _add_common(condense)
    condense.add_argument("--method", default="mcond",
                          help="reduction method registry key, or 'whole' "
                               "for the full-graph baseline (default: mcond)")
    condense.add_argument("--budget", type=int, default=None,
                          help="synthetic node budget (default: the "
                               "dataset's largest registered budget)")
    condense.add_argument("--model", default="sgc",
                          help="model architecture registry key (default: sgc)")
    condense.add_argument("--output", "--artifact", dest="output", default=None,
                          help="write the deployment bundle to this .npz path")

    serve = sub.add_parser(
        "serve",
        help="online phase: serve the evaluation batch from a saved bundle")
    serve.add_argument("--artifact", required=True,
                       help="deployment bundle produced by "
                            "'repro condense --output'")
    serve.add_argument("--batch-mode", choices=("graph", "node"),
                       default="graph",
                       help="inductive nodes arrive connected (graph) or "
                            "isolated (node); default: graph")
    serve.add_argument("--batch-size", type=int, default=1000,
                       help="serving mini-batch size (default: 1000)")

    evaluate = sub.add_parser(
        "eval",
        help="run one Table-II method end to end in memory and report "
             "accuracy/latency/memory")
    _add_common(evaluate)
    evaluate.add_argument("--method", default="mcond_ss",
                          help="Table-II method key, e.g. whole, random, "
                               "mcond_ss (default: mcond_ss)")
    evaluate.add_argument("--budget", type=int, default=None,
                          help="synthetic node budget (default: the "
                               "dataset's largest registered budget)")
    evaluate.add_argument("--model", default="sgc",
                          help="model architecture registry key (default: sgc)")
    evaluate.add_argument("--batch-mode", choices=("graph", "node"),
                          default="graph")

    listing = sub.add_parser(
        "list", help="enumerate registered methods, models, datasets, and "
                     "experiments")
    listing.set_defaults(handler=_cmd_list)

    condense.set_defaults(handler=_cmd_condense)
    serve.set_defaults(handler=_cmd_serve)
    evaluate.set_defaults(handler=_cmd_eval)

    for name in _EXPERIMENTS:
        experiment = sub.add_parser(
            name, help=f"regenerate the paper's {name}")
        _add_common(experiment)
        experiment.add_argument("--budget", type=int, default=None,
                                help="synthetic node budget (default: the "
                                     "dataset's registered budgets)")
        experiment.set_defaults(handler=_cmd_experiment, experiment=name)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _profile(args):
    return FULL if args.effort == "full" else QUICK


def _default_budget(args) -> int:
    if args.dataset not in DATASETS:
        raise DatasetError(
            f"unknown dataset {args.dataset!r}; "
            f"available: {', '.join(DATASETS.keys())}")
    return args.budget if args.budget is not None else dataset_budgets(args.dataset)[-1]


# ----------------------------------------------------------------------
# Pipeline commands
# ----------------------------------------------------------------------
def _cmd_condense(args) -> int:
    method = None if args.method == "whole" else args.method
    bundle = api.deploy(args.dataset, method,
                        _default_budget(args) if method else 0,
                        model=args.model, seed=args.seed,
                        profile=_profile(args))
    print(bundle)
    if bundle.condensed is not None:
        print(f"condensed: {bundle.condensed!r}")
    print(f"deployment storage: {bundle.storage_bytes() / 1024:.1f} KB")
    if args.output:
        path = bundle.save(args.output)
        print(f"wrote {path}")
    return 0


def _cmd_serve(args) -> int:
    bundle = api.DeploymentBundle.load(args.artifact)
    print(bundle)
    report = api.serve(bundle, batch_mode=args.batch_mode,
                       batch_size=args.batch_size)
    _print_report(report)
    return 0


def _cmd_eval(args) -> int:
    budget = _default_budget(args)
    context = ExperimentContext(
        prepare_dataset(args.dataset, seed=args.seed), _profile(args))
    report = context.run_method(args.method, budget,
                                batch_mode=args.batch_mode,
                                model_name=args.model, seed=args.seed)
    print(f"{args.method} on {args.dataset} "
          f"(budget={budget}, model={args.model})")
    _print_report(report)
    return 0


def _print_report(report) -> None:
    print(f"  deployment        {report.deployment}")
    print(f"  batch mode        {report.batch_mode}")
    print(f"  accuracy          {report.accuracy:.4f}")
    print(f"  nodes served      {report.num_nodes} "
          f"({report.num_batches} batches)")
    print(f"  latency           {report.mean_batch_milliseconds:.2f} ms/batch")
    print(f"  serving memory    {report.memory_megabytes:.3f} MB")


def _cmd_list(args) -> int:
    print("reduction methods (repro condense --method):")
    for name, entry in REDUCERS.items():
        print(f"  {name:<10} {entry.description}")
    print("\nmodel architectures (--model):")
    print(f"  {', '.join(MODELS.keys())}")
    print("\ndatasets (--dataset):")
    print(f"  {', '.join(DATASETS.keys())}")
    print("\ntable-II method columns (repro eval --method):")
    for name, spec in METHODS.items():
        print(f"  {name:<10} {spec.setting}")
    print("\nexperiments (repro <name>):")
    print(f"  {', '.join(_EXPERIMENTS)}")
    return 0


# ----------------------------------------------------------------------
# Paper table/figure wrappers
# ----------------------------------------------------------------------
def _cmd_experiment(args) -> int:
    context = ExperimentContext(
        prepare_dataset(args.dataset, seed=args.seed), _profile(args))
    budgets = (dataset_budgets(args.dataset) if args.budget is None
               else (args.budget,))
    rows, title = _dispatch(args.experiment, context, budgets)
    if isinstance(rows, dict):
        print(title)
        for key, value in rows.items():
            if isinstance(value, float):
                print(f"  {key:36s} {value:.4f}")
            elif not isinstance(value, list):
                print(f"  {key:36s} {value}")
    else:
        print(format_table(rows, title=title))
    return 0


def _dispatch(experiment: str, context: ExperimentContext, budgets):
    name = context.prepared.name
    last = budgets[-1]
    if experiment == "table2":
        return run_table2(context, budgets=budgets), f"Table II — {name}"
    if experiment == "table3":
        return run_table3(context, budget=last), f"Table III — {name}"
    if experiment == "table4":
        return run_table4(context, budget=last), f"Table IV — {name}"
    if experiment == "table5":
        return run_table5(context, budget=last), f"Table V — {name}"
    if experiment == "fig3":
        return (run_fig34(context, budgets=budgets, batch_mode="graph"),
                f"Fig. 3 — {name}")
    if experiment == "fig4":
        return (run_fig34(context, budgets=budgets, batch_mode="node"),
                f"Fig. 4 — {name}")
    if experiment == "fig5":
        return run_fig5(context, budget=budgets[0]), f"Fig. 5 — {name}"
    if experiment == "fig6":
        return run_fig6(context, budget=last), f"Fig. 6 — {name}"
    if experiment == "fig7":
        return run_fig7(context, budget=last), f"Fig. 7 — {name}"
    raise AssertionError(f"unhandled experiment {experiment}")


if __name__ == "__main__":
    raise SystemExit(main())
