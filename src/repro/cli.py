"""Subcommand CLI over the :mod:`repro.api` facade.

The pipeline commands mirror the paper's offline/online split::

    repro condense --dataset pubmed-sim --method mcond --budget 30 \\
                   --output artifact.npz     # offline: condense + train
    repro serve    --artifact artifact.npz --batch-mode node
    repro serve-online --artifact artifact.npz --workload poisson --rate 400
    repro bench    --dataset pubmed-sim      # writes BENCH_serving.json
    repro eval     --dataset pubmed-sim --method mcond_ss --budget 30
    repro list                                # registry contents

The paper's tables and figures remain available as thin wrappers over the
same machinery::

    repro table2 --dataset pubmed-sim
    repro fig6   --dataset pubmed-sim --effort full

Unknown dataset/method/model names exit with status 2 and list the
registered alternatives.
"""

from __future__ import annotations

import argparse
import sys

from repro import api
from repro.errors import ConfigError, DatasetError, ReproError
from repro.experiments import (
    FULL,
    QUICK,
    ExperimentContext,
    METHODS,
    dataset_budgets,
    format_table,
    prepare_dataset,
    run_fig34,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.registry import DATASETS, MODELS, REDUCERS

_EXPERIMENTS = ("table2", "table3", "table4", "table5",
                "fig3", "fig4", "fig5", "fig6", "fig7")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="pubmed-sim",
                        help="dataset registry key (default: pubmed-sim)")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset/condensation seed (default: 0)")
    parser.add_argument("--effort", choices=("quick", "full"), default="quick",
                        help="compute profile (default: quick)")


def _add_task_flag(parser: argparse.ArgumentParser,
                   knobs: bool = False) -> None:
    """The uniform ``--task`` flag shared by every serve/bench replay.

    One definition keeps the help text identical across subcommands
    (the DOC003 drift check resolves doc snippets against it).  With
    ``knobs`` the task-specific tuning flags ride along.
    """
    parser.add_argument("--task",
                        choices=("predict", "embed", "link_score", "topk"),
                        default="predict",
                        help="serving task every replayed request asks for: "
                             "predict (class logits), embed (penultimate "
                             "representations), link_score (endpoint-pair "
                             "scores), or topk (nearest base nodes); "
                             "default: predict")
    if knobs:
        parser.add_argument("--k", type=int, default=10,
                            help="neighbours per row for --task topk "
                                 "(default: 10)")
        parser.add_argument("--scorer", default="dot",
                            help="pair scorer registry key for --task "
                                 "link_score (default: dot)")


def _require_predict_task(args, command: str) -> None:
    """Benchmarks that replay predict-only traffic still take the
    uniform ``--task`` flag; anything else routes to bench-embed."""
    if args.task != "predict":
        raise ConfigError(
            f"repro {command} replays predict traffic only; "
            f"'repro bench-embed' covers the embed/link_score/topk tasks")


def _tasked(args, requests):
    """Wrap replay batches as ServeTask requests of ``args.task``."""
    if args.task == "predict":
        return requests
    from repro.serving import tasked_requests

    return tasked_requests(requests, args.task, k=args.k,
                           scorer=args.scorer,
                           seed=getattr(args, "seed", 0))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Condense graphs offline, serve inductive nodes online, "
                    "and regenerate the MCond paper's tables/figures "
                    "(ICDE 2024)")
    sub = parser.add_subparsers(dest="command", metavar="command",
                                required=True)

    condense = sub.add_parser(
        "condense",
        help="offline phase: condense a dataset, train the deployment "
             "model, optionally save a servable bundle")
    _add_common(condense)
    condense.add_argument("--method", default="mcond",
                          help="reduction method registry key, or 'whole' "
                               "for the full-graph baseline (default: mcond)")
    condense.add_argument("--budget", type=int, default=None,
                          help="synthetic node budget (default: the "
                               "dataset's largest registered budget)")
    condense.add_argument("--model", default="sgc",
                          help="model architecture registry key (default: sgc)")
    condense.add_argument("--shards", type=int, default=None,
                          help="run the sharded condensation pipeline with "
                               "this many graph shards (default: unsharded)")
    condense.add_argument("--workers", type=int, default=1,
                          help="parallel worker processes for --shards "
                               "(default: 1, serial)")
    condense.add_argument("--partitioner", default="stratified",
                          help="graph partitioner registry key for --shards "
                               "(default: stratified)")
    condense.add_argument("--deployment", choices=("auto", "synthetic",
                                                   "original"),
                          default="auto",
                          help="serve on the condensed graph (synthetic) or "
                               "keep the original graph resident — required "
                               "for full streaming-delta support "
                               "(default: auto)")
    condense.add_argument("--output", "--artifact", dest="output", default=None,
                          help="write the deployment bundle to this .npz path")
    condense.add_argument("--layout", choices=("compressed", "mmap"),
                          default="compressed",
                          help="artifact layout: compressed (smallest) or "
                               "mmap (uncompressed members that serving "
                               "replicas can memory-map zero-copy); "
                               "default: compressed")
    condense.add_argument("--precision",
                          choices=("float64", "float32", "int8"),
                          default="float64",
                          help="numeric precision recorded in the saved "
                               "artifact: float64 keeps bitwise serve "
                               "parity, float32 halves artifact payloads, "
                               "int8 additionally quantizes stored features "
                               "with per-column absmax calibration "
                               "(default: float64)")

    serve = sub.add_parser(
        "serve",
        help="online phase: serve the evaluation batch from a saved bundle")
    serve.add_argument("--artifact", required=True,
                       help="deployment bundle produced by "
                            "'repro condense --output'")
    serve.add_argument("--batch-mode", choices=("graph", "node"),
                       default="graph",
                       help="inductive nodes arrive connected (graph) or "
                            "isolated (node); default: graph")
    serve.add_argument("--batch-size", type=int, default=1000,
                       help="serving mini-batch size (default: 1000)")

    online = sub.add_parser(
        "serve-online",
        help="drive the micro-batching serving runtime with a synthetic "
             "request workload and report latency percentiles")
    online.add_argument("--artifact", required=True,
                        help="deployment bundle produced by "
                             "'repro condense --output'")
    online.add_argument("--workload", default="poisson",
                        help="workload generator registry key "
                             "(default: poisson)")
    online.add_argument("--rate", type=float, default=200.0,
                        help="mean arrival rate in requests/s; bursty/ramp "
                             "keep their shape around this mean "
                             "(default: 200)")
    online.add_argument("--requests", type=int, default=200,
                        help="number of requests to replay (default: 200)")
    online.add_argument("--nodes-per-request", type=int, default=1,
                        help="inductive nodes per request (default: 1)")
    online.add_argument("--scheduler", default="microbatch",
                        help="micro-batch scheduler registry key "
                             "(default: microbatch)")
    online.add_argument("--max-batch-size", type=int, default=32,
                        help="scheduler batch-size cap (default: 32)")
    online.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="scheduler wait cap in ms (default: 2)")
    online.add_argument("--batch-mode", choices=("graph", "node"),
                        default="node")
    online.add_argument("--seed", type=int, default=0,
                        help="workload arrival seed (default: 0)")
    online.add_argument("--closed-loop", action="store_true",
                        help="submit eagerly instead of honouring arrival "
                             "times (no sleeps; measures drain rate)")
    _add_task_flag(online, knobs=True)

    stream = sub.add_parser(
        "serve-stream",
        help="drive the serving runtime while the base graph evolves: "
             "replay a delta trace (node appends, edge churn, feature "
             "drift) interleaved with serve traffic")
    stream.add_argument("--artifact", required=True,
                        help="deployment bundle produced by "
                             "'repro condense --output' (use --deployment "
                             "original for full delta support)")
    stream.add_argument("--deltas", type=int, default=8,
                        help="deltas in the replay trace (default: 8)")
    stream.add_argument("--nodes-per-delta", type=int, default=2,
                        help="nodes appended per delta (default: 2)")
    stream.add_argument("--edges-per-delta", type=int, default=4,
                        help="random edges added per delta (default: 4)")
    stream.add_argument("--removals-per-delta", type=int, default=2,
                        help="existing edges removed per delta (default: 2)")
    stream.add_argument("--updates-per-delta", type=int, default=2,
                        help="feature rows perturbed per delta (default: 2)")
    stream.add_argument("--requests", type=int, default=64,
                        help="serve requests to replay (default: 64)")
    stream.add_argument("--nodes-per-request", type=int, default=1,
                        help="inductive nodes per request (default: 1)")
    stream.add_argument("--ingest-every", type=int, default=4,
                        help="ingest one delta every this many requests "
                             "(default: 4)")
    stream.add_argument("--staleness", type=float, default=0.25,
                        help="affected-row fraction beyond which a delta "
                             "rebuilds the caches (default: 0.25)")
    stream.add_argument("--scheduler", default="sizecap",
                        help="micro-batch scheduler registry key "
                             "(default: sizecap)")
    stream.add_argument("--max-batch-size", type=int, default=8,
                        help="scheduler batch-size cap (default: 8)")
    stream.add_argument("--batch-mode", choices=("graph", "node"),
                        default="node")
    stream.add_argument("--seed", type=int, default=0,
                        help="delta-trace seed (default: 0)")
    _add_task_flag(stream, knobs=True)

    bench_stream = sub.add_parser(
        "bench-stream",
        help="run the streaming-evolution benchmark (delta refresh vs "
             "full rebuild + serve latency under ingest) and write "
             "BENCH_streaming.json")
    _add_common(bench_stream)
    bench_stream.add_argument("--method", default="mcond",
                              help="reduction method registry key "
                                   "(default: mcond)")
    bench_stream.add_argument("--budget", type=int, default=None,
                              help="synthetic node budget (default: the "
                                   "dataset's largest registered budget)")
    bench_stream.add_argument("--scale", type=float, default=1.0,
                              help="dataset scale multiplier (default: 1.0)")
    bench_stream.add_argument("--deltas", type=int, default=10,
                              help="deltas in the trace (default: 10)")
    bench_stream.add_argument("--nodes-per-delta", type=int, default=3,
                              help="nodes appended per delta (default: 3)")
    bench_stream.add_argument("--requests", type=int, default=48,
                              help="serve requests in the ingest replay "
                                   "(default: 48)")
    bench_stream.add_argument("--staleness", type=float, default=0.25,
                              help="staleness threshold for the "
                                   "delta-refresh variant (default: 0.25)")
    bench_stream.add_argument("--batch-mode", choices=("graph", "node"),
                              default="node")
    bench_stream.add_argument("--output", default="BENCH_streaming.json",
                              help="output JSON path "
                                   "(default: BENCH_streaming.json)")
    bench_stream.add_argument("--gate", action="store_true",
                              help="fail (exit 1) unless delta refresh "
                                   "beats the full rebuild bit-exactly")
    bench_stream.add_argument("--min-speedup", type=float, default=1.0,
                              help="refresh speedup the --gate requires "
                                   "(default: 1.0)")
    _add_task_flag(bench_stream)

    fleet = sub.add_parser(
        "serve-fleet",
        help="serve a request stream across a pool of replica processes "
             "sharing one memory-mapped artifact, with health-checked "
             "failover")
    fleet.add_argument("--artifact", required=True,
                       help="deployment bundle produced by 'repro condense "
                            "--output' (use --layout mmap for zero-copy "
                            "replica loading)")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="replica worker processes (default: 2)")
    fleet.add_argument("--router", default="round-robin",
                       help="routing policy registry key "
                            "(default: round-robin)")
    fleet.add_argument("--requests", type=int, default=64,
                       help="requests to replay closed-loop (default: 64)")
    fleet.add_argument("--nodes-per-request", type=int, default=4,
                       help="inductive nodes per request (default: 4)")
    fleet.add_argument("--batch-mode", choices=("graph", "node"),
                       default="node")
    fleet.add_argument("--no-mmap", dest="mmap", action="store_false",
                       help="load the artifact eagerly in every replica "
                            "instead of memory-mapping it")
    fleet.add_argument("--precision",
                       choices=("float64", "float32", "int8"), default=None,
                       help="numeric serving mode override; default keeps "
                            "the mode recorded in the artifact")
    fleet.add_argument("--kill-one", action="store_true",
                       help="failover drill: kill one replica mid-stream "
                            "and report re-routing stats")
    _add_task_flag(fleet, knobs=True)

    gateway = sub.add_parser(
        "serve-gateway",
        help="serve a replica fleet over TCP: framed-protocol requests, "
             "watermark load shedding, optional queue-driven autoscaling; "
             "SIGTERM drains gracefully")
    gateway.add_argument("--artifact", required=True,
                         help="deployment bundle produced by 'repro "
                              "condense --output' (use --layout mmap for "
                              "zero-copy replica loading)")
    gateway.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    gateway.add_argument("--port", type=int, default=0,
                         help="TCP port; 0 picks a free one (default: 0)")
    gateway.add_argument("--port-file", default=None,
                         help="write the bound port to this file once "
                              "listening (ephemeral-port discovery for "
                              "scripts and CI)")
    gateway.add_argument("--replicas", type=int, default=2,
                         help="initial replica worker processes (default: 2)")
    gateway.add_argument("--router", default="round-robin",
                         help="routing policy registry key "
                              "(default: round-robin)")
    gateway.add_argument("--batch-mode", choices=("graph", "node"),
                         default="node")
    gateway.add_argument("--shed-policy", default="watermark",
                         help="admission/shed policy registry key, or "
                              "'none' (default: watermark)")
    gateway.add_argument("--max-inflight", type=int, default=256,
                         help="hard cap on admitted-but-unanswered "
                              "requests (default: 256)")
    gateway.add_argument("--scale-policy", default="none",
                         help="autoscaling policy registry key, e.g. "
                              "queue-depth, or 'none' (default: none)")
    gateway.add_argument("--min-replicas", type=int, default=1,
                         help="autoscaler lower bound (default: 1)")
    gateway.add_argument("--max-replicas", type=int, default=4,
                         help="autoscaler upper bound (default: 4)")
    gateway.add_argument("--autoscale-interval", type=float, default=0.25,
                         help="autoscaler sampling period in seconds "
                              "(default: 0.25)")
    gateway.add_argument("--scale-cooldown", type=float, default=2.0,
                         help="minimum seconds between scaling actions "
                              "(default: 2.0)")
    gateway.add_argument("--no-mmap", dest="mmap", action="store_false",
                         help="load the artifact eagerly in every replica "
                              "instead of memory-mapping it")
    gateway.add_argument("--precision",
                         choices=("float64", "float32", "int8"), default=None,
                         help="numeric serving mode override; default keeps "
                              "the mode recorded in the artifact")

    top = sub.add_parser(
        "top",
        help="poll a live gateway's GET /metrics and print a per-stage "
             "latency table (count, mean, p50, p95) plus the request "
             "counters — a terminal 'top' for the serving fleet")
    top.add_argument("--host", default="127.0.0.1",
                     help="gateway HTTP host (default: 127.0.0.1)")
    top.add_argument("--port", type=int, required=True,
                     help="gateway HTTP port (see serve-gateway --port-file)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between polls (default: 1.0)")
    top.add_argument("--iterations", type=int, default=1,
                     help="polls before exiting; 0 polls forever "
                          "(default: 1)")

    bench_gateway = sub.add_parser(
        "bench-gateway",
        help="run the network-gateway benchmark (socket vs in-process "
             "throughput, shed accounting, autoscale reaction, parity, "
             "telemetry overhead) and write BENCH_gateway.json")
    _add_common(bench_gateway)
    bench_gateway.add_argument("--method", default="mcond",
                               help="reduction method registry key "
                                    "(default: mcond)")
    bench_gateway.add_argument("--budget", type=int, default=None,
                               help="synthetic node budget (default: the "
                                    "dataset's largest registered budget)")
    bench_gateway.add_argument("--scale", type=float, default=1.0,
                               help="dataset scale multiplier (default: 1.0)")
    bench_gateway.add_argument("--deployment",
                               choices=("original", "synthetic"),
                               default="original",
                               help="deployment shape to benchmark "
                                    "(default: original)")
    bench_gateway.add_argument("--replicas", type=int, default=2,
                               help="replica count for the throughput "
                                    "comparison (default: 2)")
    bench_gateway.add_argument("--requests", type=int, default=48,
                               help="requests per throughput run "
                                    "(default: 48)")
    bench_gateway.add_argument("--nodes-per-request", type=int, default=8,
                               help="inductive nodes per request "
                                    "(default: 8)")
    bench_gateway.add_argument("--ramp-requests", type=int, default=200,
                               help="requests in the autoscale ramp "
                                    "(default: 200)")
    bench_gateway.add_argument("--router", default="round-robin",
                               help="routing policy registry key "
                                    "(default: round-robin)")
    bench_gateway.add_argument("--batch-mode", choices=("graph", "node"),
                               default="node")
    bench_gateway.add_argument("--output", default="BENCH_gateway.json",
                               help="output JSON path "
                                    "(default: BENCH_gateway.json)")
    bench_gateway.add_argument("--gate", action="store_true",
                               help="fail (exit 1) unless socket throughput "
                                    "keeps --min-socket-ratio of in-process, "
                                    "shed accounting is exact, the "
                                    "autoscaler reacts before the ramp "
                                    "peak with zero lost requests, "
                                    "gateway responses match direct "
                                    "serving bitwise, and telemetry keeps "
                                    "--min-telemetry-ratio of the "
                                    "uninstrumented rate")
    bench_gateway.add_argument("--min-socket-ratio", type=float, default=0.7,
                               help="socket/in-process throughput ratio "
                                    "the --gate requires (default: 0.7)")
    bench_gateway.add_argument("--min-telemetry-ratio", type=float,
                               default=0.97,
                               help="instrumented/uninstrumented throughput "
                                    "ratio the --gate requires "
                                    "(default: 0.97)")
    _add_task_flag(bench_gateway)

    bench_embed = sub.add_parser(
        "bench-embed",
        help="run the task-serving benchmark (per-task throughput, "
             "precomputed-index top-k speedup, link-prediction holdout "
             "AUC, delta invalidation) and write BENCH_embed.json")
    _add_common(bench_embed)
    bench_embed.add_argument("--method", default="mcond",
                             help="reduction method registry key "
                                  "(default: mcond)")
    bench_embed.add_argument("--budget", type=int, default=None,
                             help="synthetic node budget (default: the "
                                  "dataset's largest registered budget)")
    bench_embed.add_argument("--scale", type=float, default=1.0,
                             help="dataset scale multiplier (default: 1.0)")
    bench_embed.add_argument("--requests", type=int, default=32,
                             help="requests per task replay (default: 32)")
    bench_embed.add_argument("--nodes-per-request", type=int, default=2,
                             help="inductive nodes per request (default: 2)")
    bench_embed.add_argument("--k", type=int, default=5,
                             help="neighbours per top-k row (default: 5)")
    bench_embed.add_argument("--holdout-pairs", type=int, default=64,
                             help="held-out edges in the link-prediction "
                                  "evaluation (default: 64)")
    bench_embed.add_argument("--scorer", default="dot",
                             help="pair scorer registry key for the link "
                                  "holdout (default: dot)")
    bench_embed.add_argument("--deltas", type=int, default=4,
                             help="deltas in the invalidation trace "
                                  "(default: 4)")
    bench_embed.add_argument("--nodes-per-delta", type=int, default=2,
                             help="nodes appended per delta (default: 2)")
    bench_embed.add_argument("--batch-mode", choices=("graph", "node"),
                             default="node")
    bench_embed.add_argument("--output", default="BENCH_embed.json",
                             help="output JSON path "
                                  "(default: BENCH_embed.json)")
    bench_embed.add_argument("--gate", action="store_true",
                             help="fail (exit 1) unless the precomputed "
                                  "index beats per-query embedding "
                                  "recomputation by --min-index-speedup, "
                                  "the link holdout AUC clears 0.5 + "
                                  "--auc-margin, deltas leave zero stale "
                                  "top-k rows, and post-delta embeddings "
                                  "keep bitwise parity")
    bench_embed.add_argument("--min-index-speedup", type=float, default=2.0,
                             help="top-k index speedup over per-query "
                                  "recomputation the --gate requires "
                                  "(default: 2.0)")
    bench_embed.add_argument("--auc-margin", type=float, default=0.05,
                             help="margin over the 0.5 AUC chance line the "
                                  "--gate requires (default: 0.05)")

    bench_fleet = sub.add_parser(
        "bench-fleet",
        help="run the fleet benchmark (throughput scaling across replica "
             "counts, p95 under failover, mmap vs eager cold start) and "
             "write BENCH_fleet.json")
    _add_common(bench_fleet)
    bench_fleet.add_argument("--method", default="mcond",
                             help="reduction method registry key "
                                  "(default: mcond)")
    bench_fleet.add_argument("--budget", type=int, default=None,
                             help="synthetic node budget (default: the "
                                  "dataset's largest registered budget)")
    bench_fleet.add_argument("--scale", type=float, default=1.0,
                             help="dataset scale multiplier (default: 1.0)")
    bench_fleet.add_argument("--deployment", choices=("original", "synthetic"),
                             default="original",
                             help="deployment shape to benchmark "
                                  "(default: original — the artifact size "
                                  "where zero-copy sharing matters)")
    bench_fleet.add_argument("--replica-counts", default="1,2,4",
                             help="comma-separated replica counts "
                                  "(default: 1,2,4; must include 1)")
    bench_fleet.add_argument("--requests", type=int, default=48,
                             help="requests per throughput run (default: 48)")
    bench_fleet.add_argument("--nodes-per-request", type=int, default=8,
                             help="inductive nodes per request (default: 8)")
    bench_fleet.add_argument("--router", default="round-robin",
                             help="routing policy registry key "
                                  "(default: round-robin)")
    bench_fleet.add_argument("--batch-mode", choices=("graph", "node"),
                             default="node")
    bench_fleet.add_argument("--output", default="BENCH_fleet.json",
                             help="output JSON path "
                                  "(default: BENCH_fleet.json)")
    bench_fleet.add_argument("--gate", action="store_true",
                             help="fail (exit 1) unless 2 replicas beat 1 "
                                  "on throughput (on multi-core hosts), "
                                  "mmap beats eager cold start, and "
                                  "failover loses zero requests")
    _add_task_flag(bench_fleet)

    bench_schema = sub.add_parser(
        "bench-schema",
        help="validate benchmark JSON artifacts (BENCH_*.json) against "
             "their schema checkers; exits 2 on drift")
    bench_schema.add_argument("files", nargs="+",
                              help="benchmark JSON files to validate")

    bench = sub.add_parser(
        "bench",
        help="run the serving-latency benchmark (cached vs uncached vs "
             "frozen paths + runtime replay) and write BENCH_serving.json")
    _add_common(bench)
    bench.add_argument("--method", default="mcond",
                       help="reduction method registry key (default: mcond)")
    bench.add_argument("--budget", type=int, default=None,
                       help="synthetic node budget (default: the dataset's "
                            "largest registered budget)")
    bench.add_argument("--scale", type=float, default=1.0,
                       help="dataset scale multiplier (default: 1.0; CI "
                            "uses smaller for a tight time budget)")
    bench.add_argument("--requests", type=int, default=48,
                       help="requests in the stream (default: 48)")
    bench.add_argument("--nodes-per-request", type=int, default=4,
                       help="inductive nodes per request (default: 4)")
    bench.add_argument("--max-batch-size", type=int, default=8,
                       help="micro-batch size cap (default: 8)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats per batch, best kept "
                            "(default: 3)")
    bench.add_argument("--batch-mode", choices=("graph", "node"),
                       default="node")
    bench.add_argument("--include-original", action="store_true",
                       help="also benchmark the whole-graph deployment")
    bench.add_argument("--output", default="BENCH_serving.json",
                       help="output JSON path (default: BENCH_serving.json)")
    bench.add_argument("--gate", action="store_true",
                       help="fail (exit 1) unless the precision axis holds: "
                            "fused float64 bitwise parity, the float32 "
                            "frozen-path speedup floor, the reduced-mode "
                            "accuracy budget, and the int8 artifact ceiling")
    bench.add_argument("--min-float32-speedup", type=float, default=1.15,
                       help="float32 frozen-path speedup the --gate "
                            "requires over float64 (default: 1.15)")
    bench.add_argument("--max-accuracy-drop", type=float, default=0.5,
                       help="accuracy-point budget for reduced precision "
                            "modes under --gate (default: 0.5)")
    bench.add_argument("--max-int8-bytes-ratio", type=float, default=0.5,
                       help="int8/float64 artifact size ceiling under "
                            "--gate (default: 0.5)")
    _add_task_flag(bench)

    bench_condense = sub.add_parser(
        "bench-condense",
        help="run the condensation scaling benchmark (unsharded baseline "
             "vs sharded at several shard counts) and write "
             "BENCH_condense.json")
    _add_common(bench_condense)
    bench_condense.add_argument("--method", default="mcond",
                                help="reduction method registry key "
                                     "(default: mcond)")
    bench_condense.add_argument("--budget", type=int, default=None,
                                help="synthetic node budget (default: the "
                                     "dataset's largest registered budget)")
    bench_condense.add_argument("--scale", type=float, default=1.0,
                                help="dataset scale multiplier (default: 1.0)")
    bench_condense.add_argument("--shards", default="1,2,4",
                                help="comma-separated shard counts to "
                                     "benchmark (default: 1,2,4)")
    bench_condense.add_argument("--workers", type=int, default=None,
                                help="worker-process cap per variant "
                                     "(default: min(shards, cpu count))")
    bench_condense.add_argument("--partitioner", default="stratified",
                                help="graph partitioner registry key "
                                     "(default: stratified)")
    bench_condense.add_argument("--repeats", type=int, default=1,
                                help="condensation repeats, best kept "
                                     "(default: 1)")
    bench_condense.add_argument("--batch-mode", choices=("graph", "node"),
                                default="graph")
    bench_condense.add_argument("--output", default="BENCH_condense.json",
                                help="output JSON path "
                                     "(default: BENCH_condense.json)")
    bench_condense.add_argument("--gate", action="store_true",
                                help="fail (exit 1) unless the gated shard "
                                     "count beats the unsharded wall-clock "
                                     "within the accuracy budget")
    bench_condense.add_argument("--gate-shards", type=int, default=2,
                                help="shard count the --gate checks "
                                     "(default: 2)")
    bench_condense.add_argument("--max-accuracy-drop", type=float, default=2.0,
                                help="accuracy-point budget for --gate "
                                     "(default: 2.0)")

    evaluate = sub.add_parser(
        "eval",
        help="run one Table-II method end to end in memory and report "
             "accuracy/latency/memory")
    _add_common(evaluate)
    evaluate.add_argument("--method", default="mcond_ss",
                          help="Table-II method key, e.g. whole, random, "
                               "mcond_ss (default: mcond_ss)")
    evaluate.add_argument("--budget", type=int, default=None,
                          help="synthetic node budget (default: the "
                               "dataset's largest registered budget)")
    evaluate.add_argument("--model", default="sgc",
                          help="model architecture registry key (default: sgc)")
    evaluate.add_argument("--batch-mode", choices=("graph", "node"),
                          default="graph")

    check = sub.add_parser(
        "check",
        help="run the project-native static-analysis pass over src/repro "
             "(lock/error/parity/registry/naming/docs checkers); exits 1 "
             "on violations")
    check.add_argument("--root", default=".",
                       help="repository root to analyze (default: .)")
    check.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format on stdout (default: text)")
    check.add_argument("--output", default=None, metavar="FILE",
                       help="also write the JSON report to FILE "
                            "(the CI artifact)")
    check.add_argument("--baseline", default=None, metavar="FILE",
                       help="suppression file of known legacy findings "
                            "(JSON written by --write-baseline)")
    check.add_argument("--write-baseline", default=None, metavar="FILE",
                       help="write the current findings as a baseline "
                            "file and exit 0")
    check.add_argument("--only", action="append", default=None,
                       metavar="CHECKER",
                       help="run only this checker (repeatable)")
    check.add_argument("--disable", action="append", default=None,
                       metavar="CHECKER",
                       help="skip this checker (repeatable)")
    check.set_defaults(handler=_cmd_check)

    listing = sub.add_parser(
        "list", help="enumerate registered methods, models, datasets, and "
                     "experiments")
    listing.set_defaults(handler=_cmd_list)

    condense.set_defaults(handler=_cmd_condense)
    serve.set_defaults(handler=_cmd_serve)
    online.set_defaults(handler=_cmd_serve_online)
    stream.set_defaults(handler=_cmd_serve_stream)
    fleet.set_defaults(handler=_cmd_serve_fleet)
    gateway.set_defaults(handler=_cmd_serve_gateway)
    top.set_defaults(handler=_cmd_top)
    bench_gateway.set_defaults(handler=_cmd_bench_gateway)
    bench_embed.set_defaults(handler=_cmd_bench_embed)
    bench.set_defaults(handler=_cmd_bench)
    bench_condense.set_defaults(handler=_cmd_bench_condense)
    bench_stream.set_defaults(handler=_cmd_bench_stream)
    bench_fleet.set_defaults(handler=_cmd_bench_fleet)
    bench_schema.set_defaults(handler=_cmd_bench_schema)
    evaluate.set_defaults(handler=_cmd_eval)

    for name in _EXPERIMENTS:
        experiment = sub.add_parser(
            name, help=f"regenerate the paper's {name}")
        _add_common(experiment)
        experiment.add_argument("--budget", type=int, default=None,
                                help="synthetic node budget (default: the "
                                     "dataset's registered budgets)")
        experiment.set_defaults(handler=_cmd_experiment, experiment=name)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _profile(args):
    return FULL if args.effort == "full" else QUICK


def _default_budget(args) -> int:
    if args.dataset not in DATASETS:
        raise DatasetError(
            f"unknown dataset {args.dataset!r}; "
            f"available: {', '.join(DATASETS.keys())}")
    return args.budget if args.budget is not None else dataset_budgets(args.dataset)[-1]


# ----------------------------------------------------------------------
# Pipeline commands
# ----------------------------------------------------------------------
def _cmd_condense(args) -> int:
    method = None if args.method == "whole" else args.method
    reducer_options = None
    if method is None and args.shards is not None:
        raise ConfigError(
            "--shards requires a reduction method; --method whole keeps the "
            "full graph and condenses nothing")
    if method is not None and (args.shards is not None or method == "sharded"):
        # `--shards K` routes any method through the sharded pipeline;
        # `--method sharded` alone condenses with the wrapper's defaults.
        reducer_options = {"shards": args.shards if args.shards else 2,
                           "workers": args.workers,
                           "partitioner": args.partitioner}
        if method != "sharded":
            reducer_options["inner"] = method
        method = "sharded"
    deployment = None if args.deployment == "auto" else args.deployment
    bundle = api.deploy(args.dataset, method,
                        _default_budget(args) if method else 0,
                        model=args.model, deployment=deployment,
                        seed=args.seed, profile=_profile(args),
                        reducer_options=reducer_options)
    if reducer_options is not None:
        print(f"sharded offline phase: {reducer_options['shards']} shards, "
              f"{reducer_options['workers']} workers, "
              f"{reducer_options['partitioner']} partitioner")
    print(bundle)
    if bundle.condensed is not None:
        print(f"condensed: {bundle.condensed!r}")
    print(f"deployment storage: {bundle.storage_bytes() / 1024:.1f} KB")
    if args.output:
        path = bundle.save(args.output, layout=args.layout,
                           precision=args.precision)
        print(f"wrote {path} ({args.layout} layout, "
              f"{args.precision} precision)")
    return 0


def _cmd_serve(args) -> int:
    bundle = api.DeploymentBundle.load(args.artifact)
    print(bundle)
    report = api.serve(bundle, batch_mode=args.batch_mode,
                       batch_size=args.batch_size)
    _print_report(report)
    return 0


def _cmd_serve_online(args) -> int:
    import numpy as np

    from repro.registry import make_workload
    from repro.serving import replay, split_requests

    bundle = api.DeploymentBundle.load(args.artifact)
    print(bundle)
    runtime = api.open_runtime(bundle, scheduler=args.scheduler,
                               batch_mode=args.batch_mode,
                               max_batch_size=args.max_batch_size,
                               max_wait_ms=args.max_wait_ms)
    batch = api.evaluation_batch(bundle)
    requests = _tasked(args, split_requests(batch, args.requests,
                                            args.nodes_per_request))
    workload = make_workload(args.workload, rate=args.rate)
    arrivals = None
    if not args.closed_loop:
        arrivals = workload.arrivals(args.requests,
                                     np.random.default_rng(args.seed))
    with runtime:
        replay(runtime, requests, arrivals)
    stats = runtime.stats()
    mode = "closed loop" if args.closed_loop else (
        f"open loop, {args.workload} @ {args.rate:g} req/s")
    print(f"served {stats.requests} requests ({stats.nodes} nodes) "
          f"in {stats.batches} micro-batches — {mode}")
    print(f"  latency p50/p95/p99   {stats.latency_p50 * 1e3:.2f} / "
          f"{stats.latency_p95 * 1e3:.2f} / {stats.latency_p99 * 1e3:.2f} ms")
    print(f"  queue wait / compute  {stats.queue_wait_mean * 1e3:.2f} / "
          f"{stats.compute_mean * 1e3:.2f} ms (means)")
    print(f"  throughput            {stats.throughput_rps:.0f} req/s "
          f"({stats.mean_batch_requests:.1f} req/batch)")
    return 0


def _cmd_serve_stream(args) -> int:
    import numpy as np

    from repro.graph.stream import GraphDelta, make_delta_trace
    from repro.serving import replay_stream, split_requests

    bundle = api.DeploymentBundle.load(args.artifact)
    print(bundle)
    runtime = api.open_stream(bundle, scheduler=args.scheduler,
                              batch_mode=args.batch_mode,
                              max_batch_size=args.max_batch_size,
                              staleness_threshold=args.staleness)
    batch = api.evaluation_batch(bundle)
    reserved = args.deltas * args.nodes_per_delta
    if reserved >= batch.num_nodes:
        raise ConfigError(
            f"delta trace wants {reserved} nodes but the evaluation batch "
            f"holds {batch.num_nodes}; lower --deltas/--nodes-per-delta")
    if bundle.deployment == "original":
        trace = make_delta_trace(
            bundle.base, batch.subset(np.arange(reserved)),
            num_deltas=args.deltas, nodes_per_delta=args.nodes_per_delta,
            edges_per_delta=args.edges_per_delta,
            removals_per_delta=args.removals_per_delta,
            updates_per_delta=args.updates_per_delta, seed=args.seed)
    else:
        # a synthetic deployment streams node appends only (the mapping
        # grows zero rows; edge/feature changes need recondensation)
        trace = [
            GraphDelta(add_features=batch.features[
                i * args.nodes_per_delta:(i + 1) * args.nodes_per_delta])
            for i in range(args.deltas)]
    request_pool = batch.subset(np.arange(reserved, batch.num_nodes))
    requests = _tasked(args, split_requests(request_pool, args.requests,
                                            args.nodes_per_request))
    replay_stream(runtime, requests, trace, args.ingest_every)
    stats = runtime.stats()
    stream = runtime.stream_stats()
    print(f"served {stats.requests} requests ({stats.nodes} nodes) in "
          f"{stats.batches} micro-batches while ingesting "
          f"{stream['deltas']} deltas")
    print(f"  latency p50/p95/p99   {stats.latency_p50 * 1e3:.2f} / "
          f"{stats.latency_p95 * 1e3:.2f} / {stats.latency_p99 * 1e3:.2f} ms")
    refresh_ms = stream["refresh_mean_ms"]
    refresh = f"{refresh_ms:.2f} ms mean" if refresh_ms is not None else "n/a"
    print(f"  delta refresh         {stream['incremental']} incremental, "
          f"{stream['rebuilds']} rebuilds ({refresh})")
    print(f"  base graph            {runtime.prepared.num_base} nodes "
          f"(+{stream['appended_nodes']} streamed)")
    return 0


def _cmd_serve_fleet(args) -> int:
    from repro.serving import replay_fleet, split_requests

    bundle = api.DeploymentBundle.load(args.artifact)
    print(bundle)
    batch = api.evaluation_batch(bundle)
    requests = _tasked(args, split_requests(batch, args.requests,
                                            args.nodes_per_request))
    fleet = api.open_fleet(args.artifact, args.replicas, router=args.router,
                           batch_mode=args.batch_mode, mmap=args.mmap,
                           precision=args.precision)
    with fleet:
        import time
        started = time.perf_counter()
        if args.kill_one:
            half = len(requests) // 2
            futures = [fleet.submit_batch(r) for r in requests[:half]]
            fleet.kill_replica(0)
            print(f"failover drill: killed replica 0 after {half} requests")
            futures += [fleet.submit_batch(r) for r in requests[half:]]
            results = []
            for future in futures:
                try:
                    results.append(future.result(timeout=120.0))
                except ReproError:
                    results.append(None)
        else:
            results = replay_fleet(fleet, requests)
        wall = time.perf_counter() - started
        stats = fleet.stats()
    served = sum(result is not None for result in results)
    loading = "memory-mapped" if args.mmap else "eagerly loaded"
    mode = args.precision or "artifact default"
    print(f"served {served}/{len(requests)} requests across "
          f"{args.replicas} replicas ({loading} artifact, "
          f"{args.router} router, {mode} precision)")
    print(f"  throughput            {served / wall:.0f} req/s")
    p50, p95 = stats["latency_p50_ms"], stats["latency_p95_ms"]
    if p50 is not None:
        print(f"  latency p50/p95       {p50:.2f} / {p95:.2f} ms")
    print(f"  failover              {stats['rerouted']} re-routed, "
          f"{stats['respawns']} respawns, {stats['failed']} failed")
    for rid, replica in stats["per_replica"].items():
        cold = replica["cold_start_ms"]
        cold_part = f", cold start {cold:.1f} ms" if cold is not None else ""
        print(f"  replica {rid}             {replica['served']} served "
              f"(gen {replica['generation']}{cold_part})")
    return 0


def _cmd_serve_gateway(args) -> int:
    import signal
    import threading

    shed = None if args.shed_policy == "none" else args.shed_policy
    scale = None if args.scale_policy == "none" else args.scale_policy
    scale_options = None
    if scale is not None:
        scale_options = {"min_replicas": args.min_replicas,
                         "max_replicas": args.max_replicas}
    gateway = api.open_gateway(
        args.artifact, args.replicas, host=args.host, port=args.port,
        router=args.router, batch_mode=args.batch_mode, mmap=args.mmap,
        shed_policy=shed, max_inflight=args.max_inflight,
        scale_policy=scale, scale_options=scale_options,
        autoscale_interval=args.autoscale_interval,
        scale_cooldown=args.scale_cooldown, precision=args.precision)
    stop = threading.Event()

    def _request_stop(signum, frame):
        print(f"\nreceived {signal.Signals(signum).name}: draining "
              "in-flight requests, then shutting down", flush=True)
        stop.set()

    previous = {s: signal.signal(s, _request_stop)
                for s in (signal.SIGTERM, signal.SIGINT)}
    try:
        if args.port_file:
            with open(args.port_file, "w") as handle:
                handle.write(f"{gateway.port}\n")
        policies = (f"shed={shed or 'none'}, scale={scale or 'none'}")
        print(f"gateway listening on {gateway.host}:{gateway.port} "
              f"({args.replicas} replicas, {args.router} router, "
              f"{policies})", flush=True)
        print("probe with GET /healthz; stop with SIGTERM for a "
              "graceful drain", flush=True)
        while not stop.wait(0.5):
            pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        gateway.close(drain=True)
    stats = gateway.stats()
    print(f"drained: {stats['served']} served, {stats['shed']} shed, "
          f"{stats['errors']} errors of {stats['offered']} offered")
    if stats["scale_events"]:
        for event in stats["scale_events"]:
            print(f"  scale {event['action']}: {event['from']} -> "
                  f"{event['to']} replicas at t={event['t_s']:.2f}s "
                  f"(queue depth {event['queue_depth']})")
    return 0


def _fmt_quantile_ms(value: float | None) -> str:
    return f"{value * 1e3:10.3f}" if value is not None else f"{'n/a':>10}"


def _print_metrics_page(samples: dict) -> None:
    """Render one parsed /metrics scrape as the ``repro top`` screen."""
    outcomes = {labels.get("outcome", ""): value for labels, value
                in samples.get("repro_gateway_requests_total", [])}

    def gauge(name: str) -> float:
        rows = samples.get(name, [])
        return rows[0][1] if rows else 0.0

    print(f"gateway   offered {outcomes.get('offered', 0):.0f}  "
          f"served {outcomes.get('served', 0):.0f}  "
          f"shed {outcomes.get('shed', 0):.0f}  "
          f"errors {outcomes.get('error', 0):.0f}  "
          f"inflight {gauge('repro_gateway_inflight'):.0f}")
    print(f"fleet     replicas {gauge('repro_fleet_replicas'):.0f}  "
          f"queue depth {gauge('repro_fleet_queue_depth'):.0f}")
    buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}
    sums: dict[tuple[str, str], float] = {}
    counts: dict[tuple[str, str], float] = {}
    stage_key = "repro_stage_latency_seconds"
    for labels, value in samples.get(f"{stage_key}_bucket", []):
        key = (labels.get("component", ""), labels.get("stage", ""))
        buckets.setdefault(key, []).append((float(labels["le"]), value))
    for labels, value in samples.get(f"{stage_key}_sum", []):
        sums[(labels.get("component", ""), labels.get("stage", ""))] = value
    for labels, value in samples.get(f"{stage_key}_count", []):
        counts[(labels.get("component", ""), labels.get("stage", ""))] = value
    if not counts:
        print("stages    (no per-stage latency recorded yet)")
        return
    from repro.telemetry import histogram_quantile

    print(f"{'component':<10}{'stage':<16}{'count':>8}{'mean ms':>10}"
          f"{'p50 ms':>10}{'p95 ms':>10}")
    for key in sorted(counts):
        count = counts[key]
        mean_ms = sums.get(key, 0.0) / count * 1e3 if count else 0.0
        p50 = histogram_quantile(buckets.get(key, []), 0.5)
        p95 = histogram_quantile(buckets.get(key, []), 0.95)
        print(f"{key[0]:<10}{key[1]:<16}{count:8.0f}{mean_ms:10.3f}"
              f"{_fmt_quantile_ms(p50)}{_fmt_quantile_ms(p95)}")


def _cmd_top(args) -> int:
    import http.client
    import time

    from repro.telemetry import parse_exposition

    iteration = 0
    while True:
        conn = http.client.HTTPConnection(args.host, args.port, timeout=5.0)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            status = response.status
        except (OSError, http.client.HTTPException) as error:
            print(f"error: cannot scrape {args.host}:{args.port}: {error}",
                  file=sys.stderr)
            return 2
        finally:
            conn.close()
        if status != 200:
            print(f"error: GET /metrics returned {status}", file=sys.stderr)
            return 2
        if iteration:
            print()
        _print_metrics_page(parse_exposition(body))
        iteration += 1
        if args.iterations and iteration >= args.iterations:
            return 0
        time.sleep(args.interval)


def _cmd_bench_gateway(args) -> int:
    from repro.serving import (
        check_gateway_benchmark_schema,
        gate_gateway_benchmark,
        run_gateway_benchmark,
        write_benchmark_json,
    )

    _require_predict_task(args, "bench-gateway")
    result = run_gateway_benchmark(
        args.dataset, method=args.method, budget=args.budget, seed=args.seed,
        scale=args.scale, profile=args.effort, deployment=args.deployment,
        replicas=args.replicas, num_requests=args.requests,
        nodes_per_request=args.nodes_per_request,
        ramp_requests=args.ramp_requests, router=args.router,
        batch_mode=args.batch_mode)
    check_gateway_benchmark_schema(result)
    path = write_benchmark_json(result, args.output)
    throughput = result["throughput"]
    print(f"throughput     socket "
          f"{throughput['socket']['requests_per_s']:.0f} req/s vs "
          f"in-process {throughput['in_process']['requests_per_s']:.0f} "
          f"req/s ({throughput['socket_ratio']:.2f}x) at "
          f"{args.replicas} replicas")
    socket_side = throughput["socket"]
    print(f"socket tail    p50/p95/p99 "
          f"{socket_side['latency_p50_ms']:.2f}/"
          f"{socket_side['latency_p95_ms']:.2f}/"
          f"{socket_side['latency_p99_ms']:.2f} ms")
    shedding = result["shedding"]
    print(f"shedding       {shedding['served']} served + "
          f"{shedding['shed']} shed == {shedding['offered']} offered: "
          f"{'exact' if shedding['accounting_exact'] else 'BROKEN'}")
    autoscale = result["autoscale"]
    reaction = autoscale["scale_up_reaction_s"]
    reaction_part = ("never" if reaction is None
                     else f"at t={reaction:.2f}s "
                          f"(ramp peak t={autoscale['ramp']['peak_s']:.2f}s)")
    print(f"autoscale      1 -> {autoscale['peak_replicas']} replicas "
          f"{reaction_part}, {autoscale['lost']} lost, scaled "
          f"{'down' if autoscale['scaled_down'] else 'DOWN FAILED'} after")
    print(f"parity         "
          f"{'ok' if result['parity']['gateway_bitwise_equal'] else 'BROKEN'}"
          f" {result['parity']['paths']}")
    telemetry = result["telemetry"]
    trace_part = ("all stages" if telemetry["slowest_has_all_stages"]
                  else "MISSING STAGES")
    print(f"telemetry      instrumented "
          f"{telemetry['instrumented_rps']:.0f} req/s vs bare "
          f"{telemetry['uninstrumented_rps']:.0f} req/s "
          f"({telemetry['overhead_ratio']:.2f}x), logits "
          f"{'equal' if telemetry['parity_bitwise_equal'] else 'DIFFER'}, "
          f"slowest trace {trace_part}")
    print(f"wrote {path}")
    if args.gate:
        failures = gate_gateway_benchmark(
            result, min_socket_ratio=args.min_socket_ratio,
            min_telemetry_ratio=args.min_telemetry_ratio)
        if failures:
            for failure in failures:
                print(f"perf gate: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate passed: socket keeps "
              f"{throughput['socket_ratio']:.2f}x of in-process "
              f"throughput with exact shed accounting and a pre-peak "
              f"scale-up")
    return 0


def _cmd_bench_fleet(args) -> int:
    from repro.serving import (
        check_fleet_benchmark_schema,
        gate_fleet_benchmark,
        run_fleet_benchmark,
        write_benchmark_json,
    )

    _require_predict_task(args, "bench-fleet")
    try:
        counts = tuple(int(item)
                       for item in str(args.replica_counts).split(","))
    except ValueError:
        raise ConfigError(
            f"--replica-counts must be a comma-separated list of integers, "
            f"got {args.replica_counts!r}")
    result = run_fleet_benchmark(
        args.dataset, method=args.method, budget=args.budget, seed=args.seed,
        scale=args.scale, profile=args.effort, deployment=args.deployment,
        replica_counts=counts, num_requests=args.requests,
        nodes_per_request=args.nodes_per_request, router=args.router,
        batch_mode=args.batch_mode)
    check_fleet_benchmark_schema(result)
    path = write_benchmark_json(result, args.output)
    cold = result["cold_start"]
    print(f"cold start     mmap {cold['mmap_ms']:.2f} ms vs eager "
          f"{cold['eager_ms']:.2f} ms ({cold['speedup']:.2f}x)")
    for count in sorted(result["throughput"], key=int):
        entry = result["throughput"][count]
        print(f"replicas={count}     {entry['requests_per_s']:.0f} req/s "
              f"(p95 {entry['latency_p95_ms']:.2f} ms)")
    failover = result["failover"]
    print(f"failover       {failover['requests_lost']} lost, "
          f"{failover['rerouted']} re-routed, p95 "
          f"{failover['latency_p95_ms']:.2f} ms")
    print(f"parity         "
          f"{'ok' if result['parity']['mmap_bitwise_equal'] else 'BROKEN'}")
    print(f"wrote {path}")
    if args.gate:
        failures = gate_fleet_benchmark(result)
        if failures:
            for failure in failures:
                print(f"perf gate: {failure}", file=sys.stderr)
            return 1
        mode = result["scaling"]["mode"]
        print(f"perf gate passed ({mode} scaling mode, "
              f"{result['usable_cores']} usable cores)")
    return 0


def _cmd_check(args) -> int:
    import json
    from pathlib import Path

    from repro.analysis import (
        build_report,
        format_baseline,
        load_baseline,
        render_text_report,
        run_checkers,
    )

    violations, per_checker, context = run_checkers(
        args.root, only=args.only, disable=args.disable)
    if args.write_baseline:
        Path(args.write_baseline).write_text(format_baseline(violations))
        print(f"wrote {len(violations)} baseline entr"
              f"{'y' if len(violations) == 1 else 'ies'} to "
              f"{args.write_baseline}")
        return 0
    baseline = load_baseline(args.baseline) if args.baseline else set()
    report = build_report(violations, per_checker, context, baseline)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered if args.format == "json"
          else render_text_report(report))
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    return 0 if report["clean"] else 1


def _cmd_bench_schema(args) -> int:
    import json

    from repro.analysis import check_analysis_report_schema
    from repro.condense.bench import check_condense_benchmark_schema
    from repro.errors import ArtifactError, ServingError
    from repro.serving import (
        check_benchmark_schema,
        check_embed_benchmark_schema,
        check_fleet_benchmark_schema,
        check_gateway_benchmark_schema,
        check_streaming_benchmark_schema,
    )

    checkers = {
        "serving-benchmark": check_benchmark_schema,
        "condense-benchmark": check_condense_benchmark_schema,
        "streaming-benchmark": check_streaming_benchmark_schema,
        "fleet-benchmark": check_fleet_benchmark_schema,
        "gateway-benchmark": check_gateway_benchmark_schema,
        "embed-benchmark": check_embed_benchmark_schema,
        "analysis-report": check_analysis_report_schema,
    }
    for name in args.files:
        try:
            with open(name) as handle:
                result = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ArtifactError(f"cannot read benchmark JSON {name}: {exc}")
        kind = result.get("kind") if isinstance(result, dict) else None
        if kind not in checkers:
            raise ServingError(
                f"{name}: unknown benchmark kind {kind!r}; "
                f"expected one of {', '.join(sorted(checkers))}")
        checkers[kind](result)
        print(f"{name}: ok ({kind} v{result.get('schema_version')})")
    return 0


def _cmd_bench_embed(args) -> int:
    from repro.serving import (
        check_embed_benchmark_schema,
        gate_embed_benchmark,
        run_embed_benchmark,
        write_benchmark_json,
    )

    result = run_embed_benchmark(
        args.dataset, method=args.method, budget=args.budget, seed=args.seed,
        scale=args.scale, profile=args.effort, num_requests=args.requests,
        nodes_per_request=args.nodes_per_request, k=args.k,
        holdout_pairs=args.holdout_pairs, scorer=args.scorer,
        num_deltas=args.deltas, nodes_per_delta=args.nodes_per_delta,
        batch_mode=args.batch_mode)
    check_embed_benchmark_schema(result)
    path = write_benchmark_json(result, args.output)
    throughput = result["throughput"]
    print(f"throughput     predict {throughput['predict_rps']:.0f} req/s, "
          f"embed {throughput['embed_rps']:.0f} req/s "
          f"({throughput['embed_vs_predict']:.2f}x), topk "
          f"{throughput['topk_rps']:.0f} req/s "
          f"({throughput['topk_vs_predict']:.2f}x)")
    index = result["index"]
    print(f"top-k index    {index['indexed_ms_total']:.2f} ms from the "
          f"mmap index vs {index['recompute_ms_total']:.2f} ms recomputing "
          f"per query ({index['speedup']:.2f}x)")
    link = result["link_prediction"]
    print(f"link holdout   AUC {link['auc']:.3f} "
          f"({link['num_positive']} positive / {link['num_negative']} "
          f"negative pairs, {link['scorer']} scorer)")
    invalidation = result["invalidation"]
    parity = "ok" if invalidation["embed_parity"] else "BROKEN"
    print(f"invalidation   {invalidation['deltas']} deltas, "
          f"{invalidation['stale_topk_rows']} stale top-k rows, "
          f"embed parity {parity}")
    print(f"wrote {path}")
    if args.gate:
        failures = gate_embed_benchmark(
            result, min_index_speedup=args.min_index_speedup,
            auc_margin=args.auc_margin)
        if failures:
            for failure in failures:
                print(f"perf gate: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate passed: precomputed top-k index "
              f"{index['speedup']:.2f}x over per-query recomputation, "
              f"holdout AUC {link['auc']:.3f}, zero stale rows after "
              f"{invalidation['deltas']} deltas")
    return 0


def _cmd_bench_stream(args) -> int:
    from repro.serving import (
        check_streaming_benchmark_schema,
        gate_streaming_benchmark,
        run_streaming_benchmark,
        write_benchmark_json,
    )

    _require_predict_task(args, "bench-stream")
    result = run_streaming_benchmark(
        args.dataset, method=args.method, budget=args.budget, seed=args.seed,
        scale=args.scale, profile=args.effort, num_deltas=args.deltas,
        nodes_per_delta=args.nodes_per_delta, num_requests=args.requests,
        staleness_threshold=args.staleness, batch_mode=args.batch_mode)
    check_streaming_benchmark_schema(result)
    path = write_benchmark_json(result, args.output)
    refresh = result["refresh"]
    print(f"delta refresh  {refresh['delta_refresh']['ms_mean']:.2f} ms/delta "
          f"({refresh['delta_refresh']['modes']})")
    print(f"full rebuild   {refresh['full_rebuild']['ms_mean']:.2f} ms/delta")
    print(f"speedup        {refresh['speedup']:.2f}x")
    serving = result["serving"]
    print(f"serve p95      {serving['with_ingest']['latency_p95_ms']:.2f} ms "
          f"under ingest vs {serving['no_ingest']['latency_p95_ms']:.2f} ms "
          "frozen")
    print(f"parity         "
          f"{'ok' if result['parity']['bit_identical'] else 'BROKEN'}")
    print(f"wrote {path}")
    if args.gate:
        failures = gate_streaming_benchmark(result,
                                            min_speedup=args.min_speedup)
        if failures:
            for failure in failures:
                print(f"perf gate: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate passed: delta refresh beats the full rebuild "
              f"({refresh['speedup']:.2f}x) with bitwise parity")
    return 0


def _cmd_bench(args) -> int:
    from repro.serving import (
        check_benchmark_schema,
        gate_serving_benchmark,
        run_serving_benchmark,
        write_benchmark_json,
    )

    _require_predict_task(args, "bench")
    result = run_serving_benchmark(
        args.dataset, method=args.method, budget=args.budget, seed=args.seed,
        scale=args.scale, profile=args.effort, num_requests=args.requests,
        nodes_per_request=args.nodes_per_request,
        max_batch_size=args.max_batch_size, repeats=args.repeats,
        batch_mode=args.batch_mode, include_original=args.include_original)
    check_benchmark_schema(result)
    path = write_benchmark_json(result, args.output)
    for name, deployment in result["deployments"].items():
        paths = deployment["paths"]
        line = " vs ".join(
            f"{key} {value['mean_ms']:.2f}ms" for key, value in paths.items())
        print(f"{name}: {line} "
              f"(cached speedup {deployment['speedup_cached_vs_uncached']:.2f}x)")
        runtime = deployment["runtime"]
        print(f"  runtime p50/p95/p99 "
              f"{runtime['latency_p50_ms']:.2f}/{runtime['latency_p95_ms']:.2f}/"
              f"{runtime['latency_p99_ms']:.2f} ms, "
              f"{runtime['throughput_rps']:.0f} req/s")
    print(f"bitwise parity: {result['parity']['cached_bitwise_equal']}")
    precision = result["precision"]
    print(f"precision axis (frozen path, {precision['eval_nodes']} eval "
          f"nodes, fused float64 bitwise "
          f"{'ok' if precision['fused_bitwise_equal'] else 'BROKEN'}):")
    for mode, entry in precision["modes"].items():
        extra = ""
        if "speedup_vs_float64" in entry:
            extra = (f", {entry['speedup_vs_float64']:.2f}x vs float64, "
                     f"drop {entry['accuracy_drop_pts']:.2f} pts, "
                     f"{entry['artifact_bytes_ratio']:.2f}x bytes")
        print(f"  {mode:<8} {entry['mean_ms']:.2f} ms, "
              f"{entry['throughput_nodes_per_s']:.0f} nodes/s, "
              f"{entry['artifact_bytes'] / 1024:.0f} KB artifact, "
              f"acc {entry['accuracy']:.4f}{extra}")
    print(f"wrote {path}")
    if args.gate:
        failures = gate_serving_benchmark(
            result, min_float32_speedup=args.min_float32_speedup,
            max_accuracy_drop=args.max_accuracy_drop,
            max_int8_bytes_ratio=args.max_int8_bytes_ratio)
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}")
            return 1
        print("gate passed: fused parity, float32 speedup, accuracy "
              "budget, int8 size ceiling")
    return 0


def _cmd_bench_condense(args) -> int:
    from repro.condense.bench import (
        check_condense_benchmark_schema,
        gate_condense_benchmark,
        run_condense_scaling_benchmark,
        write_benchmark_json,
    )

    try:
        shard_counts = tuple(int(item) for item in str(args.shards).split(","))
    except ValueError:
        raise ConfigError(
            f"--shards must be a comma-separated list of integers, "
            f"got {args.shards!r}")
    result = run_condense_scaling_benchmark(
        args.dataset, method=args.method, budget=args.budget, seed=args.seed,
        scale=args.scale, profile=args.effort, shard_counts=shard_counts,
        workers=args.workers, partitioner=args.partitioner,
        repeats=args.repeats, batch_mode=args.batch_mode)
    check_condense_benchmark_schema(result)
    path = write_benchmark_json(result, args.output)
    baseline = result["baseline"]
    print(f"baseline {args.method}: {baseline['wall_clock_s']:.2f}s, "
          f"accuracy {baseline['accuracy']:.4f} "
          f"({baseline['num_nodes']} synthetic nodes)")
    for variant in result["sharded"]:
        parity = ""
        if "parity_bit_identical" in variant:
            state = "ok" if variant["parity_bit_identical"] else "BROKEN"
            parity = f", parity {state}"
        print(f"  K={variant['shards']} workers={variant['workers']}: "
              f"{variant['wall_clock_s']:.2f}s "
              f"({variant['speedup_vs_baseline']:.2f}x), "
              f"accuracy {variant['accuracy']:.4f} "
              f"(drop {variant['accuracy_drop_points']:+.2f} pts){parity}")
    print(f"wrote {path}")
    if args.gate:
        failures = gate_condense_benchmark(
            result, shards=args.gate_shards,
            max_accuracy_drop=args.max_accuracy_drop)
        if failures:
            for failure in failures:
                print(f"perf gate: {failure}", file=sys.stderr)
            return 1
        print(f"perf gate passed: K={args.gate_shards} beats the unsharded "
              f"baseline within {args.max_accuracy_drop:g} accuracy points")
    return 0


def _cmd_eval(args) -> int:
    budget = _default_budget(args)
    context = ExperimentContext(
        prepare_dataset(args.dataset, seed=args.seed), _profile(args))
    report = context.run_method(args.method, budget,
                                batch_mode=args.batch_mode,
                                model_name=args.model, seed=args.seed)
    print(f"{args.method} on {args.dataset} "
          f"(budget={budget}, model={args.model})")
    _print_report(report)
    return 0


def _print_report(report) -> None:
    print(f"  deployment        {report.deployment}")
    print(f"  batch mode        {report.batch_mode}")
    print(f"  accuracy          {report.accuracy:.4f}")
    print(f"  nodes served      {report.num_nodes} "
          f"({report.num_batches} batches)")
    print(f"  latency           {report.mean_batch_milliseconds:.2f} ms/batch")
    print(f"  serving memory    {report.memory_megabytes:.3f} MB")


def _entry_help(entry) -> str:
    """One-line help for a registry entry.

    Entries registered without a description (no docstring on the class)
    fall back to the factory's name rather than printing ``None``/blank.
    """
    description = getattr(entry, "description", None)
    if description:
        return str(description)
    factory = getattr(entry, "factory", None)
    return getattr(factory, "__name__", type(entry).__name__)


def _cmd_list(args) -> int:
    import repro.serving  # noqa: F401 — populates scheduler/workload registries
    from repro.graph.partition import PARTITIONERS
    from repro.registry import (SCALE_POLICIES, SHED_POLICIES, ROUTERS,
                                SCHEDULERS, TASKS, WORKLOADS)

    print("reduction methods (repro condense --method):")
    for name, entry in REDUCERS.items():
        print(f"  {name:<10} {_entry_help(entry)}")
    print("\ngraph partitioners (repro condense --shards K --partitioner):")
    for name, entry in PARTITIONERS.items():
        print(f"  {name:<10} {_entry_help(entry)}")
    print("\nmodel architectures (--model):")
    print(f"  {', '.join(MODELS.keys())}")
    print("\ndatasets (--dataset):")
    print(f"  {', '.join(DATASETS.keys())}")
    print("\nmicro-batch schedulers (repro serve-online --scheduler):")
    for name, entry in SCHEDULERS.items():
        print(f"  {name:<10} {_entry_help(entry)}")
    print("\nworkload generators (repro serve-online --workload):")
    for name, entry in WORKLOADS.items():
        print(f"  {name:<10} {_entry_help(entry)}")
    print("\nfleet routing policies (repro serve-fleet --router):")
    for name, entry in ROUTERS.items():
        print(f"  {name:<16} {_entry_help(entry)}")
    print("\ngateway shed policies (repro serve-gateway --shed-policy):")
    for name, entry in SHED_POLICIES.items():
        print(f"  {name:<16} {_entry_help(entry)}")
    print("\ngateway scale policies (repro serve-gateway --scale-policy):")
    for name, entry in SCALE_POLICIES.items():
        print(f"  {name:<16} {_entry_help(entry)}")
    print("\nserving tasks (repro serve-online --task):")
    for name, entry in TASKS.items():
        print(f"  {name:<12} {_entry_help(entry)}")
    print("\nstatic-analysis checkers (repro check --only):")
    from repro.analysis.core import CHECKERS, selected_checkers
    selected_checkers()  # import every checker module into CHECKERS
    for name, entry in CHECKERS.items():
        print(f"  {name:<10} {_entry_help(entry)}")
    print("\ntable-II method columns (repro eval --method):")
    for name, spec in METHODS.items():
        print(f"  {name:<10} {spec.setting}")
    print("\nexperiments (repro <name>):")
    print(f"  {', '.join(_EXPERIMENTS)}")
    return 0


# ----------------------------------------------------------------------
# Paper table/figure wrappers
# ----------------------------------------------------------------------
def _cmd_experiment(args) -> int:
    context = ExperimentContext(
        prepare_dataset(args.dataset, seed=args.seed), _profile(args))
    budgets = (dataset_budgets(args.dataset) if args.budget is None
               else (args.budget,))
    rows, title = _dispatch(args.experiment, context, budgets)
    if isinstance(rows, dict):
        print(title)
        for key, value in rows.items():
            if isinstance(value, float):
                print(f"  {key:36s} {value:.4f}")
            elif not isinstance(value, list):
                print(f"  {key:36s} {value}")
    else:
        print(format_table(rows, title=title))
    return 0


def _dispatch(experiment: str, context: ExperimentContext, budgets):
    name = context.prepared.name
    last = budgets[-1]
    if experiment == "table2":
        return run_table2(context, budgets=budgets), f"Table II — {name}"
    if experiment == "table3":
        return run_table3(context, budget=last), f"Table III — {name}"
    if experiment == "table4":
        return run_table4(context, budget=last), f"Table IV — {name}"
    if experiment == "table5":
        return run_table5(context, budget=last), f"Table V — {name}"
    if experiment == "fig3":
        return (run_fig34(context, budgets=budgets, batch_mode="graph"),
                f"Fig. 3 — {name}")
    if experiment == "fig4":
        return (run_fig34(context, budgets=budgets, batch_mode="node"),
                f"Fig. 4 — {name}")
    if experiment == "fig5":
        return run_fig5(context, budget=budgets[0]), f"Fig. 5 — {name}"
    if experiment == "fig6":
        return run_fig6(context, budget=last), f"Fig. 6 — {name}"
    if experiment == "fig7":
        return run_fig7(context, budget=last), f"Fig. 7 — {name}"
    raise AssertionError(f"unhandled experiment {experiment}")


if __name__ == "__main__":
    raise SystemExit(main())
