"""Command-line interface: regenerate any paper table or figure.

Examples
--------
::

    python -m repro table2 --dataset pubmed-sim
    python -m repro fig3   --dataset reddit-sim
    python -m repro table5 --dataset flickr-sim --budget 70
    python -m repro fig6   --dataset pubmed-sim --effort full

Results print as aligned text tables (the same harnesses the benchmark
suite runs); heavy artifacts (condensation, training) are computed once
per invocation.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.experiments import (
    FULL,
    QUICK,
    ExperimentContext,
    dataset_budgets,
    format_table,
    prepare_dataset,
    run_fig34,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

_EXPERIMENTS = ("table2", "table3", "table4", "table5",
                "fig3", "fig4", "fig5", "fig6", "fig7")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the MCond paper (ICDE 2024)")
    parser.add_argument("experiment", choices=_EXPERIMENTS,
                        help="which table/figure to regenerate")
    parser.add_argument("--dataset", default="pubmed-sim",
                        help="dataset simulator name (default: pubmed-sim)")
    parser.add_argument("--budget", type=int, default=None,
                        help="synthetic node budget (default: the dataset's "
                             "registered budgets)")
    parser.add_argument("--effort", choices=("quick", "full"), default="quick",
                        help="compute profile (default: quick)")
    parser.add_argument("--seed", type=int, default=0,
                        help="dataset seed (default: 0)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    profile = FULL if args.effort == "full" else QUICK
    try:
        context = ExperimentContext(
            prepare_dataset(args.dataset, seed=args.seed), profile)
        budgets = (dataset_budgets(args.dataset) if args.budget is None
                   else (args.budget,))
        rows, title = _dispatch(args.experiment, context, budgets)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if isinstance(rows, dict):
        print(title)
        for key, value in rows.items():
            if isinstance(value, float):
                print(f"  {key:36s} {value:.4f}")
            elif not isinstance(value, list):
                print(f"  {key:36s} {value}")
    else:
        print(format_table(rows, title=title))
    return 0


def _dispatch(experiment: str, context: ExperimentContext, budgets):
    name = context.prepared.name
    last = budgets[-1]
    if experiment == "table2":
        return run_table2(context, budgets=budgets), f"Table II — {name}"
    if experiment == "table3":
        return run_table3(context, budget=last), f"Table III — {name}"
    if experiment == "table4":
        return run_table4(context, budget=last), f"Table IV — {name}"
    if experiment == "table5":
        return run_table5(context, budget=last), f"Table V — {name}"
    if experiment == "fig3":
        return (run_fig34(context, budgets=budgets, batch_mode="graph"),
                f"Fig. 3 — {name}")
    if experiment == "fig4":
        return (run_fig34(context, budgets=budgets, batch_mode="node"),
                f"Fig. 4 — {name}")
    if experiment == "fig5":
        return run_fig5(context, budget=budgets[0]), f"Fig. 5 — {name}"
    if experiment == "fig6":
        return run_fig6(context, budget=last), f"Fig. 6 — {name}"
    if experiment == "fig7":
        return run_fig7(context, budget=last), f"Fig. 7 — {name}"
    raise AssertionError(f"unhandled experiment {experiment}")


if __name__ == "__main__":
    raise SystemExit(main())
