"""Composite differentiable functions built on the primitive ops.

Everything here is expressed in terms of :mod:`repro.tensor.tensor`
primitives, so all functions support higher-order differentiation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import (
    Tensor,
    abs_,
    as_tensor,
    div,
    exp,
    log,
    maximum_const,
    mul,
    neg,
    power,
    sub,
    tensor_mean,
    tensor_sum,
)

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l2_row_norms",
    "l21_norm",
    "cosine_similarity_columns",
    "gradient_cosine_distance",
    "frobenius_norm",
]

_EPS = 1e-12


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    logits = as_tensor(logits)
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    shifted = sub(logits, shift)
    exps = exp(shifted)
    denom = tensor_sum(exps, axis=axis, keepdims=True)
    return div(exps, denom)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    logits = as_tensor(logits)
    shift = Tensor(logits.data.max(axis=axis, keepdims=True))
    shifted = sub(logits, shift)
    log_norm = log(tensor_sum(exp(shifted), axis=axis, keepdims=True))
    return sub(shifted, log_norm)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a constant one-hot ``(n, num_classes)`` float matrix."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"one_hot expects 1-D labels, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ShapeError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def cross_entropy(logits: Tensor, labels: np.ndarray,
                  weights: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy of ``logits`` (n, C) against integer ``labels``.

    ``weights`` optionally re-weights each sample (constant, shape ``(n,)``).
    """
    logits = as_tensor(logits)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects 2-D logits, got {logits.shape}")
    n, num_classes = logits.shape
    targets = Tensor(one_hot(labels, num_classes))
    log_probs = log_softmax(logits, axis=-1)
    per_sample = neg(tensor_sum(mul(targets, log_probs), axis=1))
    if weights is not None:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ShapeError(f"weights shape {w.shape} != ({n},)")
        per_sample = mul(per_sample, Tensor(w))
        return div(tensor_sum(per_sample), Tensor(float(max(w.sum(), _EPS))))
    return tensor_mean(per_sample)


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of precomputed log-probabilities."""
    log_probs = as_tensor(log_probs)
    targets = Tensor(one_hot(labels, log_probs.shape[-1]))
    return neg(tensor_mean(tensor_sum(mul(targets, log_probs), axis=1)))


def binary_cross_entropy_with_logits(
        logits: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    """Mean binary cross-entropy on raw logits (numerically stable).

    Uses the identity
    ``bce(x, t) = max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    logits = as_tensor(logits)
    t = (as_tensor(targets) if isinstance(targets, Tensor)
         else Tensor(np.asarray(targets, dtype=np.float64)))
    if t.shape != logits.shape:
        raise ShapeError(f"targets shape {t.shape} != logits shape {logits.shape}")
    positive_part = maximum_const(logits, 0.0)
    linear_part = mul(logits, t)
    log_part = log(Tensor(1.0) + exp(neg(abs_(logits))))
    per_element = sub(positive_part, linear_part) + log_part
    return tensor_mean(per_element)


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error."""
    prediction = as_tensor(prediction)
    target_t = as_tensor(target)
    diff = sub(prediction, target_t)
    return tensor_mean(mul(diff, diff))


def l2_row_norms(matrix: Tensor, eps: float = _EPS) -> Tensor:
    """Row-wise Euclidean norms of a 2-D tensor, shape ``(n,)``.

    A small ``eps`` keeps the square root differentiable at zero rows.
    """
    matrix = as_tensor(matrix)
    if matrix.ndim != 2:
        raise ShapeError(f"l2_row_norms expects a matrix, got {matrix.shape}")
    squares = tensor_sum(mul(matrix, matrix), axis=1)
    return power(squares + Tensor(eps), 0.5)


def l21_norm(matrix: Tensor, eps: float = _EPS) -> Tensor:
    """The L2,1 matrix norm: sum of row-wise L2 norms (Eq. 10/12 in MCond)."""
    return tensor_sum(l2_row_norms(matrix, eps=eps))


def cosine_similarity_columns(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Column-wise cosine similarity of two equally shaped matrices.

    Returns a tensor of shape ``(D,)`` where ``D`` is the column count; used
    by the gradient-matching distance (Eq. 5).  1-D inputs are treated as a
    single column.
    """
    a, b = as_tensor(a), as_tensor(b)
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 1:
        a = a.reshape((-1, 1))
        b = b.reshape((-1, 1))
    dots = tensor_sum(mul(a, b), axis=0)
    norm_a = power(tensor_sum(mul(a, a), axis=0) + Tensor(eps), 0.5)
    norm_b = power(tensor_sum(mul(b, b), axis=0) + Tensor(eps), 0.5)
    return div(dots, mul(norm_a, norm_b))


def gradient_cosine_distance(grads_a, grads_b, eps: float = 1e-8) -> Tensor:
    """Sum over layers/columns of ``1 - cosine`` distances (Eq. 5).

    ``grads_a`` and ``grads_b`` are sequences of gradient tensors (one per
    parameter).  Each pair contributes ``sum_i (1 - cos(col_i, col'_i))``.
    """
    grads_a = list(grads_a)
    grads_b = list(grads_b)
    if len(grads_a) != len(grads_b):
        raise ShapeError(
            f"gradient lists have different lengths: {len(grads_a)} vs {len(grads_b)}")
    if not grads_a:
        raise ShapeError("gradient_cosine_distance requires at least one pair")
    total: Tensor | None = None
    for ga, gb in zip(grads_a, grads_b):
        cos = cosine_similarity_columns(ga, gb, eps=eps)
        term = tensor_sum(sub(Tensor(np.ones(cos.shape)), cos))
        total = term if total is None else total + term
    return total


def frobenius_norm(matrix: Tensor, eps: float = _EPS) -> Tensor:
    """Frobenius norm of a tensor."""
    matrix = as_tensor(matrix)
    return power(tensor_sum(mul(matrix, matrix)) + Tensor(eps), 0.5)
