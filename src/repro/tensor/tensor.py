"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole library.  It
implements a :class:`Tensor` type that records a computation graph and a
functional :func:`grad` API.  Every backward rule is itself expressed with
``Tensor`` operations, so *higher-order* differentiation works: passing
``create_graph=True`` to :func:`grad` yields gradients that are themselves
differentiable.  MCond's gradient-matching objective (Eq. 4-5 of the paper)
relies on this to differentiate through the relay GNN's gradients.

Design notes
------------
- Data is stored as ``float64`` numpy arrays for numerical robustness; the
  library targets CPU-scale experiments where this is not a bottleneck.
- A node's backward rule is a closure over the *output* tensor's inputs.
  Closures are only attached while gradient recording is enabled (see
  :func:`no_grad`), so inference runs graph-free.
- Tensors are treated as immutable once used in a graph.  Optimizers update
  ``parameter.data`` in place *between* graph constructions, which is safe
  because each training step builds a fresh graph.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import AutogradError, ShapeError

__all__ = [
    "Tensor",
    "as_tensor",
    "grad",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "matmul",
    "transpose",
    "reshape",
    "power",
    "exp",
    "log",
    "sqrt",
    "relu",
    "sigmoid",
    "tanh",
    "abs_",
    "tensor_sum",
    "tensor_mean",
    "sum_to",
    "gather_rows",
    "scatter_rows_add",
    "concat",
    "slice_rows",
    "dropout",
    "maximum_const",
    "clip_min_const",
]


class _GradState(threading.local):
    """Thread-local switch controlling whether graphs are recorded."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = True


_STATE = _GradState()


def is_grad_enabled() -> bool:
    """Return whether operations currently record a computation graph."""
    return _STATE.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    previous = _STATE.enabled
    _STATE.enabled = False
    try:
        yield
    finally:
        _STATE.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager re-enabling graph recording inside a ``no_grad``."""
    previous = _STATE.enabled
    _STATE.enabled = True
    try:
        yield
    finally:
        _STATE.enabled = previous


class Tensor:
    """A numpy-backed array participating in automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to a ``float64`` numpy array.
    requires_grad:
        If ``True`` the tensor is a differentiation leaf: :func:`grad` can
        return gradients with respect to it and ``backward`` accumulates
        into its ``grad`` attribute.
    name:
        Optional human-readable label used in error messages.
    """

    __slots__ = ("data", "requires_grad", "grad", "name", "_inputs",
                 "_backward", "_op_name")

    def __init__(self, data, requires_grad: bool = False,
                 name: str | None = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Tensor | None = None
        self.name = name
        self._inputs: tuple[Tensor, ...] = ()
        self._backward: Callable[[Tensor], Sequence[Tensor | None]] | None = None
        self._op_name: str = "leaf"

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, op={self._op_name}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        if self.data.size != 1:
            raise ShapeError(f"item() requires a scalar tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with copied data and the same grad flag."""
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad)
        return out

    def zero_grad(self) -> None:
        """Clear the accumulated ``grad`` attribute."""
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd
    # ------------------------------------------------------------------
    def backward(self, grad_output: "Tensor | np.ndarray | None" = None) -> None:
        """Accumulate gradients of ``self`` into every reachable leaf.

        ``grad_output`` defaults to ones for scalar outputs; non-scalar
        outputs require an explicit seed gradient.
        """
        grads = grad([self], _collect_leaves(self), grad_outputs=[grad_output],
                     create_graph=False, allow_unused=True)
        for leaf, g in zip(_collect_leaves(self), grads):
            if g is None:
                continue
            if leaf.grad is None:
                leaf.grad = g.detach()
            else:
                leaf.grad = Tensor(leaf.grad.data + g.data)

    # Operator overloads -------------------------------------------------
    def __add__(self, other):
        return add(self, as_tensor(other))

    def __radd__(self, other):
        return add(as_tensor(other), self)

    def __sub__(self, other):
        return sub(self, as_tensor(other))

    def __rsub__(self, other):
        return sub(as_tensor(other), self)

    def __mul__(self, other):
        return mul(self, as_tensor(other))

    def __rmul__(self, other):
        return mul(as_tensor(other), self)

    def __truediv__(self, other):
        return div(self, as_tensor(other))

    def __rtruediv__(self, other):
        return div(as_tensor(other), self)

    def __neg__(self):
        return neg(self)

    def __pow__(self, exponent):
        return power(self, exponent)

    def __matmul__(self, other):
        return matmul(self, as_tensor(other))

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False):
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False):
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` (scalar, array, or Tensor) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _collect_leaves(root: Tensor) -> list[Tensor]:
    """Return all ``requires_grad`` leaves reachable from ``root``."""
    leaves: list[Tensor] = []
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node._backward is None:
            if node.requires_grad:
                leaves.append(node)
        else:
            stack.extend(node._inputs)
    return leaves


def make_op(
    data: np.ndarray,
    inputs: tuple[Tensor, ...],
    backward: Callable[[Tensor], Sequence[Tensor | None]],
    op_name: str,
) -> Tensor:
    """Create an op-output tensor, recording the graph when enabled.

    ``backward`` maps the gradient flowing into the output to a sequence of
    gradients, one per input (``None`` for inputs that do not require grad).
    It must be written with ``Tensor`` operations so double-backward works.
    """
    requires = is_grad_enabled() and any(t.requires_grad for t in inputs)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._inputs = inputs
        out._backward = backward
        out._op_name = op_name
    return out


def _topo_order(roots: Iterable[Tensor]) -> list[Tensor]:
    """Topologically order the graph above ``roots`` (inputs before outputs)."""
    order: list[Tensor] = []
    seen: set[int] = set()
    # Iterative post-order DFS: graphs can be thousands of nodes deep.
    stack: list[tuple[Tensor, bool]] = [(r, False) for r in roots]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._inputs:
            if id(parent) not in seen:
                stack.append((parent, False))
    return order


def grad(
    outputs: Sequence[Tensor] | Tensor,
    inputs: Sequence[Tensor] | Tensor,
    grad_outputs: Sequence[Tensor | np.ndarray | None] | None = None,
    create_graph: bool = False,
    allow_unused: bool = False,
) -> list[Tensor | None]:
    """Compute gradients of ``outputs`` w.r.t. ``inputs``.

    Parameters
    ----------
    outputs:
        Tensors to differentiate.  Scalar outputs get an implicit seed of 1.
    inputs:
        Tensors to return gradients for.  They need not be leaves.
    grad_outputs:
        Optional seed gradients matching ``outputs``.
    create_graph:
        If ``True`` the returned gradients carry their own computation graph
        and can be differentiated again.
    allow_unused:
        If ``False`` an input unreachable from the outputs raises
        :class:`AutogradError`; otherwise its gradient is ``None``.
    """
    output_list = [outputs] if isinstance(outputs, Tensor) else list(outputs)
    input_list = [inputs] if isinstance(inputs, Tensor) else list(inputs)
    if not output_list:
        raise AutogradError("grad() requires at least one output tensor")
    if grad_outputs is None:
        grad_outputs = [None] * len(output_list)
    if len(grad_outputs) != len(output_list):
        raise AutogradError(
            f"expected {len(output_list)} grad_outputs, got {len(grad_outputs)}")

    table: dict[int, Tensor] = {}
    for out, seed in zip(output_list, grad_outputs):
        if seed is None:
            if out.data.size != 1:
                raise AutogradError(
                    "non-scalar output requires an explicit grad_output "
                    f"(shape {out.shape})")
            seed_t = Tensor(np.ones_like(out.data))
        else:
            seed_t = as_tensor(seed)
            if seed_t.shape != out.shape:
                raise ShapeError(
                    f"grad_output shape {seed_t.shape} does not match output "
                    f"shape {out.shape}")
        _accumulate(table, out, seed_t)

    order = _topo_order(output_list)
    grad_mode = enable_grad if create_graph else no_grad
    with grad_mode():
        for node in reversed(order):
            node_grad = table.get(id(node))
            if node_grad is None or node._backward is None:
                continue
            input_grads = node._backward(node_grad)
            if len(input_grads) != len(node._inputs):
                raise AutogradError(
                    f"op {node._op_name!r} returned {len(input_grads)} "
                    f"gradients for {len(node._inputs)} inputs")
            for parent, g in zip(node._inputs, input_grads):
                if g is None or not parent.requires_grad:
                    continue
                if g.shape != parent.shape:
                    raise ShapeError(
                        f"op {node._op_name!r} produced gradient of shape "
                        f"{g.shape} for input of shape {parent.shape}")
                _accumulate(table, parent, g)

    results: list[Tensor | None] = []
    for tensor in input_list:
        g = table.get(id(tensor))
        if g is None and not allow_unused:
            raise AutogradError(
                "an input tensor is not reachable from the outputs; pass "
                "allow_unused=True to receive None instead")
        results.append(g)
    return results


def _accumulate(table: dict[int, Tensor], node: Tensor, value: Tensor) -> None:
    existing = table.get(id(node))
    if existing is None:
        table[id(node)] = value
    else:
        table[id(node)] = add(existing, value)


# ----------------------------------------------------------------------
# Broadcasting helpers
# ----------------------------------------------------------------------

def sum_to(tensor: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce ``tensor`` by summation until it has ``shape``.

    This is the differentiable inverse of numpy broadcasting and is used by
    elementwise backward rules.
    """
    if tensor.shape == tuple(shape):
        return tensor
    ndim_diff = tensor.ndim - len(shape)
    if ndim_diff < 0:
        raise ShapeError(f"cannot sum_to from {tensor.shape} to {tuple(shape)}")
    out = tensor
    if ndim_diff > 0:
        out = tensor_sum(out, axis=tuple(range(ndim_diff)), keepdims=False)
    reduce_axes = tuple(
        i for i, dim in enumerate(shape) if dim == 1 and out.shape[i] != 1)
    if reduce_axes:
        out = tensor_sum(out, axis=reduce_axes, keepdims=True)
    if out.shape != tuple(shape):
        raise ShapeError(
            f"sum_to produced {out.shape}, expected {tuple(shape)}")
    return out


# ----------------------------------------------------------------------
# Primitive operations
# ----------------------------------------------------------------------

def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise addition with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def backward(g: Tensor):
        ga = sum_to(g, a.shape) if a.requires_grad else None
        gb = sum_to(g, b.shape) if b.requires_grad else None
        return ga, gb

    return make_op(a.data + b.data, (a, b), backward, "add")


def sub(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise subtraction with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def backward(g: Tensor):
        ga = sum_to(g, a.shape) if a.requires_grad else None
        gb = neg(sum_to(g, b.shape)) if b.requires_grad else None
        return ga, gb

    return make_op(a.data - b.data, (a, b), backward, "sub")


def mul(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise multiplication with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def backward(g: Tensor):
        ga = sum_to(mul(g, b), a.shape) if a.requires_grad else None
        gb = sum_to(mul(g, a), b.shape) if b.requires_grad else None
        return ga, gb

    return make_op(a.data * b.data, (a, b), backward, "mul")


def div(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise division ``a / b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)

    def backward(g: Tensor):
        ga = sum_to(div(g, b), a.shape) if a.requires_grad else None
        gb = None
        if b.requires_grad:
            gb = sum_to(neg(div(mul(g, a), mul(b, b))), b.shape)
        return ga, gb

    return make_op(a.data / b.data, (a, b), backward, "div")


def neg(a: Tensor) -> Tensor:
    """Elementwise negation."""
    a = as_tensor(a)

    def backward(g: Tensor):
        return (neg(g),)

    return make_op(-a.data, (a,), backward, "neg")


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product of two 1-D or 2-D tensors."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim > 2 or b.ndim > 2:
        raise ShapeError(
            f"matmul supports tensors of rank <= 2, got {a.shape} @ {b.shape}")

    def backward(g: Tensor):
        if a.ndim == 1 and b.ndim == 1:
            # scalar output: g is (), grads are g*b and g*a.
            ga = mul(g, b) if a.requires_grad else None
            gb = mul(g, a) if b.requires_grad else None
            return ga, gb
        a2 = reshape(a, (1, -1)) if a.ndim == 1 else a
        b2 = reshape(b, (-1, 1)) if b.ndim == 1 else b
        g2 = g
        if a.ndim == 1:
            g2 = reshape(g2, (1, -1)) if b.ndim == 2 else g2
        if b.ndim == 1 and a.ndim == 2:
            g2 = reshape(g2, (-1, 1))
        ga = gb = None
        if a.requires_grad:
            ga = matmul(g2, transpose(b2))
            if a.ndim == 1:
                ga = reshape(ga, a.shape)
        if b.requires_grad:
            gb = matmul(transpose(a2), g2)
            if b.ndim == 1:
                gb = reshape(gb, b.shape)
        return ga, gb

    return make_op(a.data @ b.data, (a, b), backward, "matmul")


def transpose(a: Tensor) -> Tensor:
    """Transpose a 2-D tensor (no-op on 1-D tensors)."""
    a = as_tensor(a)

    def backward(g: Tensor):
        return (transpose(g),)

    return make_op(a.data.T, (a,), backward, "transpose")


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reshape, preserving the element count."""
    a = as_tensor(a)
    original = a.shape

    def backward(g: Tensor):
        return (reshape(g, original),)

    return make_op(a.data.reshape(shape), (a,), backward, "reshape")


def power(a: Tensor, exponent: float) -> Tensor:
    """Elementwise power with a constant exponent."""
    a = as_tensor(a)
    exponent = float(exponent)

    def backward(g: Tensor):
        return (mul(g, mul(Tensor(exponent), power(a, exponent - 1.0))),)

    return make_op(a.data ** exponent, (a,), backward, "power")


def exp(a: Tensor) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(g: Tensor):
        # Recompute exp(a) as a tensor op so double-backward differentiates it.
        return (mul(g, exp(a)),)

    return make_op(out_data, (a,), backward, "exp")


def log(a: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    a = as_tensor(a)

    def backward(g: Tensor):
        return (div(g, a),)

    return make_op(np.log(a.data), (a,), backward, "log")


def sqrt(a: Tensor) -> Tensor:
    """Elementwise square root."""
    return power(a, 0.5)


def relu(a: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    a = as_tensor(a)
    mask = (a.data > 0).astype(np.float64)

    def backward(g: Tensor):
        return (mul(g, Tensor(mask)),)

    return make_op(a.data * mask, (a,), backward, "relu")


def sigmoid(a: Tensor) -> Tensor:
    """Elementwise logistic sigmoid, computed in a numerically stable way."""
    a = as_tensor(a)
    out_data = _stable_sigmoid(a.data)

    def backward(g: Tensor):
        s = sigmoid(a)
        return (mul(g, mul(s, sub(Tensor(1.0), s))),)

    return make_op(out_data, (a,), backward, "sigmoid")


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    e = np.exp(x[~positive])
    out[~positive] = e / (1.0 + e)
    return out


def tanh(a: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)

    def backward(g: Tensor):
        t = tanh(a)
        return (mul(g, sub(Tensor(1.0), mul(t, t))),)

    return make_op(np.tanh(a.data), (a,), backward, "tanh")


def abs_(a: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the origin)."""
    a = as_tensor(a)
    sign = np.sign(a.data)

    def backward(g: Tensor):
        return (mul(g, Tensor(sign)),)

    return make_op(np.abs(a.data), (a,), backward, "abs")


def tensor_sum(
    a: Tensor,
    axis: int | tuple[int, ...] | None = None,
    keepdims: bool = False,
) -> Tensor:
    """Summation over one or more axes."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    input_shape = a.shape

    if axis is None:
        axes: tuple[int, ...] = tuple(range(a.ndim))
    elif isinstance(axis, int):
        axes = (axis % a.ndim,)
    else:
        axes = tuple(ax % a.ndim for ax in axis)

    def backward(g: Tensor):
        g_expanded = g
        if not keepdims and axes:
            expanded_shape = list(input_shape)
            for ax in axes:
                expanded_shape[ax] = 1
            g_expanded = reshape(g, tuple(expanded_shape))
        ones = Tensor(np.ones(input_shape))
        return (mul(g_expanded, ones),)

    return make_op(out_data, (a,), backward, "sum")


def tensor_mean(
    a: Tensor,
    axis: int | tuple[int, ...] | None = None,
    keepdims: bool = False,
) -> Tensor:
    """Arithmetic mean over one or more axes."""
    a = as_tensor(a)
    total = tensor_sum(a, axis=axis, keepdims=keepdims)
    count = a.data.size / total.data.size
    return div(total, Tensor(float(count)))


def gather_rows(a: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``a[indices]`` from a 2-D (or 1-D) tensor.

    Duplicate indices are allowed; the backward pass scatter-adds.
    """
    a = as_tensor(a)
    idx = np.asarray(indices, dtype=np.int64)
    if idx.ndim != 1:
        raise ShapeError(f"gather_rows expects 1-D indices, got {idx.shape}")

    def backward(g: Tensor):
        return (scatter_rows_add(g, idx, a.shape),)

    return make_op(a.data[idx], (a,), backward, "gather_rows")


def scatter_rows_add(a: Tensor, indices: np.ndarray, shape: tuple[int, ...]) -> Tensor:
    """Scatter rows of ``a`` into a zero tensor of ``shape``, adding duplicates."""
    a = as_tensor(a)
    idx = np.asarray(indices, dtype=np.int64)
    out_data = np.zeros(shape, dtype=np.float64)
    np.add.at(out_data, idx, a.data)

    def backward(g: Tensor):
        return (gather_rows(g, idx),)

    return make_op(out_data, (a,), backward, "scatter_rows_add")


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    ts = tuple(as_tensor(t) for t in tensors)
    if not ts:
        raise ShapeError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.shape[axis] for t in ts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: Tensor):
        grads = []
        for i, t in enumerate(ts):
            if not t.requires_grad:
                grads.append(None)
                continue
            grads.append(narrow(g, axis, int(offsets[i]), int(sizes[i])))
        return tuple(grads)

    return make_op(out_data, ts, backward, "concat")


def narrow(a: Tensor, axis: int, start: int, length: int) -> Tensor:
    """Slice ``length`` entries along ``axis`` starting at ``start``."""
    a = as_tensor(a)
    index: list[slice] = [slice(None)] * a.ndim
    index[axis] = slice(start, start + length)
    index_t = tuple(index)
    input_shape = a.shape

    def backward(g: Tensor):
        return (pad_slice(g, axis, start, input_shape),)

    return make_op(a.data[index_t], (a,), backward, "narrow")


def pad_slice(a: Tensor, axis: int, start: int, shape: tuple[int, ...]) -> Tensor:
    """Embed ``a`` into a zero tensor of ``shape`` at offset ``start``."""
    a = as_tensor(a)
    out_data = np.zeros(shape, dtype=np.float64)
    index: list[slice] = [slice(None)] * len(shape)
    index[axis] = slice(start, start + a.shape[axis])
    index_t = tuple(index)
    out_data[index_t] = a.data
    length = a.shape[axis]

    def backward(g: Tensor):
        return (narrow(g, axis, start, length),)

    return make_op(out_data, (a,), backward, "pad_slice")


def slice_rows(a: Tensor, start: int, stop: int) -> Tensor:
    """Row slice ``a[start:stop]`` of a 2-D tensor."""
    return narrow(a, 0, start, stop - start)


def dropout(a: Tensor, rate: float, rng: np.random.Generator | None = None,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``rate`` and rescale."""
    if not 0.0 <= rate < 1.0:
        raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")
    if not training or rate == 0.0:
        return a
    a = as_tensor(a)
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(a.shape) >= rate).astype(np.float64) / (1.0 - rate)
    return mul(a, Tensor(mask))


def maximum_const(a: Tensor, value: float) -> Tensor:
    """Elementwise ``max(a, value)`` against a scalar constant."""
    a = as_tensor(a)
    mask = (a.data > value).astype(np.float64)
    out_data = np.maximum(a.data, value)

    def backward(g: Tensor):
        return (mul(g, Tensor(mask)),)

    return make_op(out_data, (a,), backward, "maximum_const")


def clip_min_const(a: Tensor, minimum: float) -> Tensor:
    """Alias of :func:`maximum_const`, named for clamping denominators."""
    return maximum_const(a, minimum)
