"""Numerical gradient checking for the autodiff engine.

Used pervasively by the test suite: first-order checks compare analytic
gradients to central finite differences; second-order checks verify
``create_graph=True`` by differentiating a directional derivative.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import AutogradError
from repro.tensor.tensor import Tensor, grad, tensor_sum, mul

__all__ = ["numerical_grad", "gradcheck", "gradgradcheck"]


def numerical_grad(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    flat = target.data.reshape(-1)
    result = np.zeros_like(flat)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = func(*inputs).item()
        flat[i] = original - eps
        low = func(*inputs).item()
        flat[i] = original
        result[i] = (high - low) / (2.0 * eps)
    return result.reshape(target.shape)


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Check analytic first-order gradients of a scalar function.

    Raises :class:`AutogradError` with a diagnostic message on mismatch so
    test failures are actionable.
    """
    output = func(*inputs)
    analytic = grad(output, list(inputs), allow_unused=True)
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_grad(func, inputs, index, eps=eps)
        got = analytic[index]
        got_data = np.zeros_like(expected) if got is None else got.data
        if not np.allclose(got_data, expected, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(got_data - expected)))
            raise AutogradError(
                f"gradcheck failed for input {index}: max abs error {worst:.3e}\n"
                f"analytic:\n{got_data}\nnumeric:\n{expected}")
    return True


def gradgradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
    seed: int = 0,
) -> bool:
    """Check second-order gradients via a random directional derivative.

    For scalar ``f``, defines ``h(x) = sum(grad f(x) * v)`` with a fixed
    random direction ``v`` and gradchecks ``h`` — this exercises the graph
    built by ``create_graph=True``.
    """
    rng = np.random.default_rng(seed)
    directions = [Tensor(rng.standard_normal(t.shape)) for t in inputs]

    def directional(*xs: Tensor) -> Tensor:
        output = func(*xs)
        first = grad(output, list(xs), create_graph=True, allow_unused=True)
        total = None
        for g, v in zip(first, directions):
            if g is None:
                continue
            term = tensor_sum(mul(g, v))
            total = term if total is None else total + term
        if total is None:
            raise AutogradError("no differentiable inputs for gradgradcheck")
        return total

    return gradcheck(directional, inputs, eps=eps, atol=atol, rtol=rtol)
