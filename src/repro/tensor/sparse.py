"""Sparse-matrix support for the autodiff engine.

Large original-graph adjacency matrices are stored as *constant*
``scipy.sparse`` CSR matrices.  Only the dense operand of a sparse-dense
product is differentiable, which matches every use in the paper: the
original adjacency ``A`` is data, while synthetic features/adjacency and the
mapping matrix are dense trainable tensors.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor, make_op

__all__ = ["spmm", "to_csr", "sparse_memory_bytes", "dense_memory_bytes"]


def to_csr(matrix) -> sp.csr_matrix:
    """Coerce a dense array or any scipy sparse matrix into CSR float64."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64)
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {dense.shape}")
    return sp.csr_matrix(dense)


def spmm(sparse_const: sp.spmatrix, dense: Tensor) -> Tensor:
    """Product ``sparse_const @ dense`` with gradients for ``dense`` only.

    The sparse operand is treated as a constant; its transpose is captured
    for the backward pass (``grad_dense = sparse.T @ grad_out``), which is
    itself an :func:`spmm` so double-backward works.
    """
    if not sp.issparse(sparse_const):
        raise ShapeError("spmm expects a scipy sparse matrix as first operand")
    matrix = sparse_const.tocsr()
    dense = as_tensor(dense)
    if dense.ndim not in (1, 2):
        raise ShapeError(f"spmm expects a 1-D or 2-D dense operand, got {dense.shape}")
    if matrix.shape[1] != dense.shape[0]:
        raise ShapeError(
            f"spmm shape mismatch: {matrix.shape} @ {dense.shape}")
    out_data = matrix @ dense.data
    matrix_t = matrix.T.tocsr()

    def backward(g: Tensor):
        return (spmm(matrix_t, g),)

    return make_op(np.asarray(out_data), (dense,), backward, "spmm")


def sparse_memory_bytes(matrix: sp.spmatrix) -> int:
    """Bytes needed to store a CSR matrix (data + indices + indptr)."""
    csr = matrix.tocsr()
    return int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)


def dense_memory_bytes(array: np.ndarray) -> int:
    """Bytes needed to store a dense array."""
    return int(np.asarray(array).nbytes)
