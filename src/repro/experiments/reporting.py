"""Plain-text reporting of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "mean_std", "format_mean_std"]


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and (population) standard deviation of a sequence."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan"), float("nan")
    return float(arr.mean()), float(arr.std())


def format_mean_std(values: Sequence[float], scale: float = 100.0,
                    digits: int = 2) -> str:
    """Render e.g. accuracies as ``76.94±0.01`` (paper convention)."""
    mean, std = mean_std(values)
    return f"{mean * scale:.{digits}f}±{std * scale:.{digits}f}"


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
