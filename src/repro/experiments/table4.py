"""Table IV — generalizability of the synthetic graph and mapping across
GNN architectures.

Trains GCN, GraphSAGE, APPNP and Cheby on MCond's synthetic graph and
serves each both on the original graph (MCond_SO) and on the connected
synthetic graph (MCond_SS), reporting accuracy and per-batch inference
time.  The headline shape: SS accuracy within a few points of SO at a
fraction of the latency, for every architecture.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.pipeline import ExperimentContext

__all__ = ["run_table4", "TABLE4_ARCHITECTURES"]

TABLE4_ARCHITECTURES = ("gcn", "graphsage", "appnp", "cheby")


def run_table4(context: ExperimentContext, budget: int,
               architectures: Sequence[str] = TABLE4_ARCHITECTURES,
               batch_modes: Sequence[str] = ("graph", "node"),
               hidden: int = 64) -> list[dict]:
    """One dataset's block of Table IV."""
    prepared = context.prepared
    seed = context.profile.seeds[0]
    condensed = context.reduce("mcond", budget, seed=seed)
    rows: list[dict] = []
    for arch in architectures:
        model = context.train("synthetic", model_name=arch,
                              condensed=condensed,
                              validate_deployment="synthetic",
                              seed=seed, hidden=hidden)
        for batch_mode in batch_modes:
            for variant, deployment in (("mcond_so", "original"),
                                        ("mcond_ss", "synthetic")):
                report = context.evaluate(model, deployment, condensed,
                                          batch_mode=batch_mode)
                rows.append({
                    "dataset": prepared.name,
                    "budget": budget,
                    "batch": batch_mode,
                    "architecture": arch,
                    "method": variant,
                    "accuracy": report.accuracy,
                    "time_ms": report.mean_batch_milliseconds,
                })
    return rows
