"""Shared experiment pipeline: prepare → reduce → train → evaluate.

:class:`ExperimentContext` memoizes the expensive stages (condensation and
model training) so the table/figure harnesses can share work — e.g.
Table II evaluates MCond under three deployment settings from a single
condensation run, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigError
from repro.condense import CondensedGraph, MCondResult
from repro.experiments.settings import (EffortProfile, MethodSpec, METHODS,
                                        current_profile)
from repro.graph.datasets import IncrementalBatch, InductiveSplit, load_dataset
from repro.graph.ops import symmetric_normalize
from repro.inference.engine import InductiveServer, InferenceReport
from repro.nn.metrics import accuracy
from repro.nn.models import GNNModel, make_model
from repro.nn.trainer import TrainConfig, train_node_classifier
from repro.registry import REDUCERS

__all__ = ["PreparedDataset", "prepare_dataset", "ExperimentContext"]


@dataclass
class PreparedDataset:
    """A dataset with the derived objects every experiment needs."""

    name: str
    split: InductiveSplit
    val_batch: IncrementalBatch
    test_batch: IncrementalBatch

    @cached_property
    def operator(self):
        """Normalized adjacency of the original (training) graph."""
        return symmetric_normalize(self.split.original.adjacency)

    @property
    def original(self):
        return self.split.original

    def reduction_ratio(self, budget: int) -> float:
        """Effective ``r`` = synthetic nodes / original nodes."""
        return budget / self.split.original.num_nodes


def prepare_dataset(name: str, seed: int = 0, scale: float = 1.0) -> PreparedDataset:
    """Load a dataset and precompute its evaluation batches."""
    split = load_dataset(name, seed=seed, scale=scale)
    return PreparedDataset(
        name=name,
        split=split,
        val_batch=split.incremental_batch("val"),
        test_batch=split.incremental_batch("test"))


class ExperimentContext:
    """Caches condensation and training results for one prepared dataset."""

    def __init__(self, prepared: PreparedDataset,
                 profile: EffortProfile | None = None) -> None:
        self.prepared = prepared
        self.profile = profile or current_profile()
        self._condensed: dict[tuple, CondensedGraph] = {}
        self._method_results: dict[tuple, object] = {}
        self._models: dict[tuple, GNNModel] = {}

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------
    # Loss weights tuned per (method, dataset) by validation accuracy,
    # exactly as the paper's grid search over {0, 0.01, 0.1, 1, 10, 100,
    # 1000} (Sec. IV-A).
    _TUNED: dict[str, dict[str, dict[str, float]]] = {
        "mcond": {
            "pubmed-sim": {"lambda_structure": 0.01},
            "flickr-sim": {"lambda_structure": 0.1},
            "reddit-sim": {"lambda_structure": 0.1},
        },
    }

    def reducer_config(self, method: str, **overrides) -> dict:
        """Flat config for ``method`` at the context's effort profile.

        The registry entry declares which profile fields the method
        understands (``profile_params``); per-dataset tuned weights and
        caller overrides are layered on top.
        """
        entry = REDUCERS.get(method)
        cfg = {name: getattr(self.profile, name)
               for name in entry.profile_params}
        # The sharded wrapper runs another method per shard: layer the
        # *inner* method's tuned weights so `--shards K` keeps the same
        # per-dataset hyper-parameters as the direct run.
        tuned_key = entry.name
        if entry.name == "sharded":
            tuned_key = str(overrides.get("inner", "mcond")).lower()
        cfg.update(self._TUNED.get(tuned_key, {}).get(self.prepared.name, {}))
        cfg.update(overrides)
        return cfg

    def reduce(self, method: str, budget: int, seed: int = 0,
               **overrides) -> CondensedGraph:
        """Run (or fetch) a registered reduction method at the given budget."""
        entry = REDUCERS.get(method)
        key = (entry.name, budget, seed, tuple(sorted(overrides.items())))
        if key in self._condensed:
            return self._condensed[key]
        reducer = entry.factory(
            seed=seed, **self.reducer_config(method, **overrides))
        condensed = reducer.reduce(self.prepared.split, budget)
        if entry.keeps_result:
            result = getattr(reducer, "last_result", None)
            assert result is not None
            self._method_results[key] = result
        self._condensed[key] = condensed
        return condensed

    def mcond_result(self, budget: int, seed: int = 0, **overrides) -> MCondResult:
        """Full MCond result (mapping module + loss histories)."""
        key = ("mcond", budget, seed, tuple(sorted(overrides.items())))
        if key not in self._method_results:
            self.reduce("mcond", budget, seed, **overrides)
        return self._method_results[key]

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_config(self) -> TrainConfig:
        return TrainConfig(epochs=self.profile.train_epochs,
                           lr=self.profile.train_lr,
                           patience=self.profile.train_patience,
                           eval_every=5)

    def train(self, train_source: str, model_name: str = "sgc",
              condensed: CondensedGraph | None = None,
              validate_deployment: str | None = None,
              seed: int = 0, **model_kwargs) -> GNNModel:
        """Train a model on the original or a synthetic graph.

        ``validate_deployment`` controls which deployment the early-stopping
        validator simulates (defaults to the training side's graph).
        """
        if train_source not in ("original", "synthetic"):
            raise ConfigError(
                f"train_source must be 'original' or 'synthetic', got {train_source!r}")
        condensed_key = None if condensed is None else id(condensed)
        key = (train_source, model_name, condensed_key, validate_deployment,
               seed, tuple(sorted(model_kwargs.items())))
        if key in self._models:
            return self._models[key]

        split = self.prepared.split
        graph = self.prepared.original
        model = make_model(model_name, graph.feature_dim, split.num_classes,
                           seed=seed, **model_kwargs)
        if validate_deployment is None:
            validate_deployment = "original" if train_source == "original" else (
                "synthetic" if condensed is not None and condensed.supports_attachment()
                else "original")
        validator = self._make_validator(model, validate_deployment, condensed)

        if train_source == "original":
            train_node_classifier(
                model, self.prepared.operator, graph.features, graph.labels,
                split.labeled_in_original, validator=validator,
                config=self.train_config())
        else:
            if condensed is None:
                raise ConfigError("synthetic training requires a condensed graph")
            operator = condensed.normalized_adjacency()
            train_node_classifier(
                model, operator, condensed.features, condensed.labels,
                np.arange(condensed.num_nodes), validator=validator,
                config=self.train_config())
        self._models[key] = model
        return model

    def _make_validator(self, model: GNNModel, deployment: str,
                        condensed: CondensedGraph | None):
        prepared = self.prepared
        if deployment == "synthetic" and (
                condensed is None or not condensed.supports_attachment()):
            deployment = "original"

        def validator(current: GNNModel) -> float:
            server = InductiveServer(current, deployment, prepared.original,
                                     condensed)
            logits, _, _ = server.serve_batch(prepared.val_batch, "graph")
            return accuracy(logits, prepared.val_batch.labels)

        return validator

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, model: GNNModel, deployment: str,
                 condensed: CondensedGraph | None = None,
                 which: str = "test", batch_mode: str = "graph",
                 batch_size: int = 1000) -> InferenceReport:
        """Serve an evaluation batch and report accuracy/latency/memory."""
        batch = self.prepared.test_batch if which == "test" else self.prepared.val_batch
        server = InductiveServer(model, deployment, self.prepared.original,
                                 condensed)
        return server.run(batch, batch_size=batch_size, batch_mode=batch_mode)

    # ------------------------------------------------------------------
    # Whole-method assembly (one Table II cell)
    # ------------------------------------------------------------------
    def run_method(self, method: str, budget: int, batch_mode: str = "graph",
                   model_name: str = "sgc", seed: int = 0,
                   batch_size: int = 1000) -> InferenceReport:
        """Reduce (if needed), train, and evaluate one method end to end."""
        if method not in METHODS:
            raise ConfigError(
                f"unknown method {method!r}; known: {', '.join(METHODS)}")
        spec: MethodSpec = METHODS[method]
        condensed = None
        if spec.reducer is not None:
            condensed = self.reduce(spec.reducer, budget, seed=seed)
        model = self.train(spec.train_source, model_name=model_name,
                           condensed=condensed,
                           validate_deployment=spec.eval_deployment
                           if condensed is not None else "original",
                           seed=seed)
        return self.evaluate(model, spec.eval_deployment, condensed,
                             batch_mode=batch_mode, batch_size=batch_size)
