"""Figure 5 — mapping-matrix structure and the class-aware initialization.

(a) the trained mapping aggregated into class blocks is diagonal-dominant
    (original nodes are represented mostly by same-class synthetic nodes);
(b) the class-aware initialization already has that block structure;
(c) class-aware initialization starts at a lower mapping loss, converges
    faster, and ends at a higher accuracy than random initialization.
"""

from __future__ import annotations

import numpy as np

from repro.condense.mapping import MappingMatrix, class_block_mass
from repro.experiments.pipeline import ExperimentContext
from repro.experiments.settings import METHODS

__all__ = ["run_fig5", "diagonal_dominance"]


def diagonal_dominance(block_mass: np.ndarray) -> float:
    """Mean ratio of the diagonal entry to its row sum (1.0 = perfectly
    class-pure mapping)."""
    sums = block_mass.sum(axis=1)
    valid = sums > 0
    if not valid.any():
        return 0.0
    return float((np.diag(block_mass)[valid] / sums[valid]).mean())


def run_fig5(context: ExperimentContext, budget: int) -> dict:
    """Reproduce Fig. 5's three panels as summary statistics."""
    prepared = context.prepared
    seed = context.profile.seeds[0]
    num_classes = prepared.split.num_classes
    original_labels = prepared.original.labels

    results: dict[str, dict] = {}
    for init_name, class_aware in (("class_aware", True), ("random", False)):
        result = context.mcond_result(budget, seed=seed,
                                      class_aware_init=class_aware)
        condensed = result.condensed
        spec = METHODS["mcond_ss"]
        model = context.train(spec.train_source, condensed=condensed,
                              validate_deployment=spec.eval_deployment,
                              seed=seed)
        report = context.evaluate(model, spec.eval_deployment, condensed,
                                  batch_mode="node")
        trained_mass = class_block_mass(result.mapping.normalized_array(),
                                        original_labels, condensed.labels,
                                        num_classes)
        results[init_name] = {
            "losses": list(result.mapping_losses),
            "accuracy": report.accuracy,
            "diagonal_dominance": diagonal_dominance(trained_mass),
            "block_mass": trained_mass,
        }

    # Panel (b): the initialization itself, before any training.
    synthetic_labels = context.reduce("mcond", budget, seed=seed).labels
    init_mapping = MappingMatrix.class_aware(original_labels, synthetic_labels,
                                             seed=seed)
    init_mass = class_block_mass(init_mapping.normalized_array(),
                                 original_labels, synthetic_labels,
                                 num_classes)

    class_aware = results["class_aware"]
    random_init = results["random"]
    return {
        "dataset": prepared.name,
        "budget": budget,
        "trained_diagonal_dominance": class_aware["diagonal_dominance"],
        "init_diagonal_dominance": diagonal_dominance(init_mass),
        "loss_first_class_aware": class_aware["losses"][0],
        "loss_first_random": random_init["losses"][0],
        "loss_last_class_aware": class_aware["losses"][-1],
        "loss_last_random": random_init["losses"][-1],
        "accuracy_class_aware": class_aware["accuracy"],
        "accuracy_random": random_init["accuracy"],
        "losses_class_aware": class_aware["losses"],
        "losses_random": random_init["losses"],
    }
