"""Table V — ablation of MCond's optimization constraints.

Four configurations of MCond_SS per dataset:

- ``plain``     — neither structure loss nor inductive loss;
- ``wo_str``    — no structure loss (Eq. 8 off);
- ``wo_ind``    — no inductive loss (Eq. 12 off);
- ``full``      — MCond as proposed.

Expected shape: full > wo_str > wo_ind > plain, with the inductive loss
the most influential single term.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.pipeline import ExperimentContext
from repro.experiments.settings import METHODS

__all__ = ["run_table5", "ABLATIONS"]

ABLATIONS: dict[str, dict[str, bool]] = {
    "plain": {"use_structure_loss": False, "use_inductive_loss": False},
    "wo_str": {"use_structure_loss": False, "use_inductive_loss": True},
    "wo_ind": {"use_structure_loss": True, "use_inductive_loss": False},
    "full": {"use_structure_loss": True, "use_inductive_loss": True},
}


def run_table5(context: ExperimentContext, budget: int,
               batch_modes: Sequence[str] = ("node", "graph")) -> list[dict]:
    """One dataset's block of Table V (MCond_SS under ablated losses)."""
    prepared = context.prepared
    seed = context.profile.seeds[0]
    spec = METHODS["mcond_ss"]
    rows: list[dict] = []
    for ablation, flags in ABLATIONS.items():
        condensed = context.reduce("mcond", budget, seed=seed, **flags)
        model = context.train(spec.train_source, condensed=condensed,
                              validate_deployment=spec.eval_deployment,
                              seed=seed)
        for batch_mode in batch_modes:
            report = context.evaluate(model, spec.eval_deployment, condensed,
                                      batch_mode=batch_mode)
            rows.append({
                "dataset": prepared.name,
                "budget": budget,
                "ablation": ablation,
                "batch": batch_mode,
                "accuracy": report.accuracy,
            })
    return rows
