"""Figure 6 — sparsification trade-off of the mapping matrix.

Sweeps the threshold ``delta`` of Eq. (14) on a trained MCond mapping and
reports, per value: the mapping sparsity and the MCond_OS test accuracy.
Expected shape: sparsity rises monotonically with ``delta``; accuracy first
improves slightly (noise suppression) then collapses (information loss).
No retraining is needed — the sweep re-thresholds one trained mapping.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.pipeline import ExperimentContext
from repro.experiments.settings import METHODS

__all__ = ["run_fig6", "DEFAULT_DELTAS"]

DEFAULT_DELTAS = (0.0, 1e-4, 1e-3, 3e-3, 0.01, 0.03, 0.05, 0.1, 0.2, 0.4)


def run_fig6(context: ExperimentContext, budget: int,
             deltas: Sequence[float] = DEFAULT_DELTAS,
             batch_mode: str = "node") -> list[dict]:
    """One dataset's panel of Fig. 6 (MCond_OS, node batch, delta sweep)."""
    prepared = context.prepared
    seed = context.profile.seeds[0]
    result = context.mcond_result(budget, seed=seed)
    spec = METHODS["mcond_os"]
    model = context.train(spec.train_source,
                          condensed=result.condensed,
                          validate_deployment=spec.eval_deployment, seed=seed)
    rows: list[dict] = []
    for delta in deltas:
        condensed = result.condensed_with_threshold(delta)
        if condensed.mapping.nnz == 0:
            rows.append({
                "dataset": prepared.name, "budget": budget, "delta": delta,
                "sparsity": 1.0, "accuracy": float("nan"), "mapping_nnz": 0,
            })
            continue
        report = context.evaluate(model, "synthetic", condensed,
                                  batch_mode=batch_mode)
        rows.append({
            "dataset": prepared.name,
            "budget": budget,
            "delta": delta,
            "sparsity": result.mapping.sparsity(delta),
            "accuracy": report.accuracy,
            "mapping_nnz": int(condensed.mapping.nnz),
        })
    return rows
