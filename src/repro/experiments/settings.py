"""Experiment settings: method matrix, budgets, effort profiles.

The paper's four deployment settings are encoded as (training source,
inference deployment) pairs per method:

=============  ==============  ==================  =================
method         reduction       trains on           infers on
=============  ==============  ==================  =================
whole          —               original (O)        original (O)
random/degree/
herding/
kcenter        coreset         original (O)        reduced (S)
vng            VNG             original (O)        virtual (S)
gcond          GCond           synthetic (S)       original (O)
mcond_os       MCond           original (O)        synthetic (S)
mcond_so       MCond           synthetic (S)       original (O)
mcond_ss       MCond           synthetic (S)       synthetic (S)
=============  ==============  ==================  =================

Budgets: the paper quotes reduction ratios ``r`` relative to the training
graph; at our ~20x reduced dataset scale the same ``r`` would leave fewer
synthetic nodes than classes, so budgets are specified as synthetic node
counts chosen to preserve the paper's *nodes-per-class*, and every report
prints both the budget and the effective ``r``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["MethodSpec", "METHODS", "method_names", "dataset_budgets",
           "EffortProfile", "QUICK", "FULL", "current_profile"]


@dataclass(frozen=True)
class MethodSpec:
    """How one Table II column is assembled."""

    name: str
    reducer: str | None        # registry key for the reduction method
    train_source: str          # "original" | "synthetic"
    eval_deployment: str       # "original" | "synthetic"

    @property
    def setting(self) -> str:
        """The paper's arrow notation, e.g. ``S->O``."""
        train = "O" if self.train_source == "original" else "S"
        infer = "O" if self.eval_deployment == "original" else "S"
        return f"{train}->{infer}"


METHODS: dict[str, MethodSpec] = {
    "whole": MethodSpec("whole", None, "original", "original"),
    "random": MethodSpec("random", "random", "original", "synthetic"),
    "degree": MethodSpec("degree", "degree", "original", "synthetic"),
    "herding": MethodSpec("herding", "herding", "original", "synthetic"),
    "kcenter": MethodSpec("kcenter", "kcenter", "original", "synthetic"),
    "vng": MethodSpec("vng", "vng", "original", "synthetic"),
    "gcond": MethodSpec("gcond", "gcond", "synthetic", "original"),
    "mcond_os": MethodSpec("mcond_os", "mcond", "original", "synthetic"),
    "mcond_so": MethodSpec("mcond_so", "mcond", "synthetic", "original"),
    "mcond_ss": MethodSpec("mcond_ss", "mcond", "synthetic", "synthetic"),
}


def method_names() -> list[str]:
    """All Table II method keys, in presentation order."""
    return list(METHODS)


# Budgets preserving the paper's synthetic-nodes-per-class at reduced scale.
_DATASET_BUDGETS: dict[str, tuple[int, ...]] = {
    "pubmed-sim": (30, 60),     # 50% / 100% of the 60-node label budget
    "flickr-sim": (35, 70),     # 5 / 10 nodes per class
    "reddit-sim": (82, 164),    # 2 / 4 nodes per class
    "tiny-sim": (9, 15),
}


def dataset_budgets(name: str) -> tuple[int, ...]:
    """Synthetic-node budgets evaluated for ``name`` (small, large)."""
    if name not in _DATASET_BUDGETS:
        raise ConfigError(
            f"no budgets registered for dataset {name!r}; "
            f"known: {', '.join(sorted(_DATASET_BUDGETS))}")
    return _DATASET_BUDGETS[name]


@dataclass(frozen=True)
class EffortProfile:
    """Compute budget knob shared by all experiment harnesses.

    ``quick`` keeps the full pipeline intact at CI-friendly cost; ``full``
    runs longer optimization and multiple seeds for tighter numbers.
    Select via the ``REPRO_EFFORT`` environment variable.
    """

    name: str
    train_epochs: int
    train_patience: int
    train_lr: float
    outer_loops: int
    match_steps: int
    mapping_steps: int
    relay_steps: int
    seeds: tuple[int, ...]
    inference_repeats: int

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigError("profile needs at least one seed")


QUICK = EffortProfile(
    name="quick", train_epochs=80, train_patience=12, train_lr=0.05,
    outer_loops=2, match_steps=8, mapping_steps=20, relay_steps=3,
    seeds=(0,), inference_repeats=2)

FULL = EffortProfile(
    name="full", train_epochs=200, train_patience=25, train_lr=0.05,
    outer_loops=4, match_steps=15, mapping_steps=40, relay_steps=3,
    seeds=(0, 1, 2), inference_repeats=5)

_PROFILES = {"quick": QUICK, "full": FULL}


def current_profile() -> EffortProfile:
    """Profile selected by ``REPRO_EFFORT`` (default: quick)."""
    key = os.environ.get("REPRO_EFFORT", "quick").lower()
    if key not in _PROFILES:
        raise ConfigError(
            f"REPRO_EFFORT={key!r} unknown; use one of {', '.join(_PROFILES)}")
    return _PROFILES[key]
