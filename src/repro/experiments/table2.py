"""Table II — inductive inference accuracy of all methods.

For each dataset, budget (reduction ratio), batch setting and method, runs
reduce → train → serve and reports test accuracy.  MCond is condensed once
per (budget, seed) and reused across its three deployment variants, as in
the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.pipeline import ExperimentContext
from repro.experiments.reporting import format_mean_std, mean_std
from repro.experiments.settings import METHODS

__all__ = ["run_table2", "TABLE2_METHODS"]

TABLE2_METHODS = ("whole", "random", "degree", "herding", "kcenter", "vng",
                  "mcond_os", "gcond", "mcond_so", "mcond_ss")


def run_table2(context: ExperimentContext, budgets: Sequence[int],
               batch_modes: Sequence[str] = ("graph", "node"),
               methods: Sequence[str] = TABLE2_METHODS) -> list[dict]:
    """Run one dataset's slice of Table II; returns one row per cell."""
    rows: list[dict] = []
    prepared = context.prepared
    for batch_mode in batch_modes:
        for budget in budgets:
            for method in methods:
                accs = []
                for seed in context.profile.seeds:
                    report = context.run_method(method, budget,
                                                batch_mode=batch_mode,
                                                seed=seed)
                    accs.append(report.accuracy)
                mean, std = mean_std(accs)
                rows.append({
                    "dataset": prepared.name,
                    "batch": batch_mode,
                    "budget": budget,
                    "r": f"{context.prepared.reduction_ratio(budget):.2%}",
                    "method": method,
                    "setting": METHODS[method].setting,
                    "accuracy": mean,
                    "std": std,
                    "display": format_mean_std(accs),
                })
    return rows
