"""Experiment harnesses regenerating every table and figure of the paper."""

from repro.experiments.settings import (
    MethodSpec,
    METHODS,
    method_names,
    dataset_budgets,
    EffortProfile,
    QUICK,
    FULL,
    current_profile,
)
from repro.experiments.pipeline import (PreparedDataset, prepare_dataset,
                                        ExperimentContext)
from repro.experiments.reporting import format_table, mean_std, format_mean_std
from repro.experiments.table2 import run_table2, TABLE2_METHODS
from repro.experiments.fig34 import run_fig34, FIG34_METHODS
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4, TABLE4_ARCHITECTURES
from repro.experiments.table5 import run_table5, ABLATIONS
from repro.experiments.fig5 import run_fig5, diagonal_dominance
from repro.experiments.fig6 import run_fig6, DEFAULT_DELTAS
from repro.experiments.fig7 import run_fig7, DEFAULT_LAMBDAS, DEFAULT_BETAS

__all__ = [
    "MethodSpec", "METHODS", "method_names", "dataset_budgets",
    "EffortProfile", "QUICK", "FULL", "current_profile",
    "PreparedDataset", "prepare_dataset", "ExperimentContext",
    "format_table", "mean_std", "format_mean_std",
    "run_table2", "TABLE2_METHODS",
    "run_fig34", "FIG34_METHODS",
    "run_table3",
    "run_table4", "TABLE4_ARCHITECTURES",
    "run_table5", "ABLATIONS",
    "run_fig5", "diagonal_dominance",
    "run_fig6", "DEFAULT_DELTAS",
    "run_fig7", "DEFAULT_LAMBDAS", "DEFAULT_BETAS",
]
