"""Figure 7 — sensitivity to the loss weights ``lambda`` and ``beta``.

Grid search over ``lambda_structure`` (weight of the structure loss,
Eq. 9) and ``beta_inductive`` (weight of the inductive loss, Eq. 13),
reporting MCond_OS accuracy for each combination.  Each (lambda, beta)
pair requires its own condensation run, so the default grids are small;
the paper's qualitative shape is a mid-range optimum on both axes.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.pipeline import ExperimentContext
from repro.experiments.settings import METHODS

__all__ = ["run_fig7", "DEFAULT_LAMBDAS", "DEFAULT_BETAS"]

DEFAULT_LAMBDAS = (0.0, 0.01, 0.1, 1.0, 10.0)
DEFAULT_BETAS = (0.0, 1.0, 10.0, 100.0, 1000.0)


def run_fig7(context: ExperimentContext, budget: int,
             lambdas: Sequence[float] = DEFAULT_LAMBDAS,
             betas: Sequence[float] = DEFAULT_BETAS,
             batch_mode: str = "node") -> list[dict]:
    """One dataset's Fig. 7 sensitivity grid.

    The two axes are swept independently around the defaults (as in the
    paper's two line plots), not as a full cross-product, to keep the
    number of condensation runs linear.
    """
    rows: list[dict] = []
    base_lambda = 0.1
    base_beta = 100.0
    for lam in lambdas:
        rows.append(_run_point(context, budget, lam, base_beta,
                               "lambda", lam, batch_mode))
    for beta in betas:
        rows.append(_run_point(context, budget, base_lambda, beta,
                               "beta", beta, batch_mode))
    return rows


def _run_point(context: ExperimentContext, budget: int, lam: float,
               beta: float, axis: str, value: float,
               batch_mode: str) -> dict:
    seed = context.profile.seeds[0]
    condensed = context.reduce("mcond", budget, seed=seed,
                               lambda_structure=lam, beta_inductive=beta)
    spec = METHODS["mcond_os"]
    model = context.train(spec.train_source, condensed=condensed,
                          validate_deployment=spec.eval_deployment, seed=seed)
    report = context.evaluate(model, spec.eval_deployment, condensed,
                              batch_mode=batch_mode)
    return {
        "dataset": context.prepared.name,
        "budget": budget,
        "axis": axis,
        "value": value,
        "lambda": lam,
        "beta": beta,
        "accuracy": report.accuracy,
    }
