"""Figures 3 & 4 — inference time and memory of every deployment option.

Figure 3 is the graph-batch setting, Figure 4 the node-batch setting; both
report per-batch inference latency and deployment memory for the reduced
graphs at each ratio plus the full original graph ("Whole", the 100%
column).  The headline numbers — MCond's speedup and compression over
Whole — are computed per row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.pipeline import ExperimentContext
from repro.experiments.settings import METHODS
from repro.inference.benchmark import compression, speedup

__all__ = ["run_fig34", "FIG34_METHODS"]

FIG34_METHODS = ("random", "degree", "herding", "kcenter", "vng", "mcond_ss")


def run_fig34(context: ExperimentContext, budgets: Sequence[int],
              batch_mode: str = "graph",
              methods: Sequence[str] = FIG34_METHODS) -> list[dict]:
    """One dataset's panel of Fig. 3 (graph batch) or Fig. 4 (node batch).

    MCond appears once per budget ("MCond" in the figures covers both OS
    and SS since they share the synthetic-graph serving path); "Whole" is
    the original-graph deployment measured at 100%.
    """
    rows: list[dict] = []
    prepared = context.prepared
    seed = context.profile.seeds[0]
    repeats = context.profile.inference_repeats

    def measure(method: str, budget: int) -> dict:
        spec = METHODS[method]
        condensed = None
        if spec.reducer is not None:
            condensed = context.reduce(spec.reducer, budget, seed=seed)
        model = context.train(spec.train_source, condensed=condensed,
                              validate_deployment=spec.eval_deployment
                              if condensed is not None else "original",
                              seed=seed)
        times, memories, acc = [], [], 0.0
        for _ in range(repeats):
            report = context.evaluate(model, spec.eval_deployment, condensed,
                                      batch_mode=batch_mode)
            times.append(report.mean_batch_seconds)
            memories.append(report.memory_bytes)
            acc = report.accuracy
        return {
            "time_s": float(np.median(times)),
            "memory_bytes": int(np.mean(memories)),
            "accuracy": acc,
        }

    whole = measure("whole", budgets[0])
    for budget in budgets:
        ratio = prepared.reduction_ratio(budget)
        for method in methods:
            stats = measure(method, budget)
            rows.append({
                "dataset": prepared.name,
                "batch": batch_mode,
                "budget": budget,
                "r": f"{ratio:.2%}",
                "method": method,
                "time_ms": stats["time_s"] * 1e3,
                "memory_mb": stats["memory_bytes"] / 2**20,
                "speedup_vs_whole": speedup(whole["time_s"], stats["time_s"]),
                "compression_vs_whole": compression(whole["memory_bytes"],
                                                    stats["memory_bytes"]),
                "accuracy": stats["accuracy"],
            })
    rows.append({
        "dataset": prepared.name,
        "batch": batch_mode,
        "budget": prepared.original.num_nodes,
        "r": "100.00%",
        "method": "whole",
        "time_ms": whole["time_s"] * 1e3,
        "memory_mb": whole["memory_bytes"] / 2**20,
        "speedup_vs_whole": 1.0,
        "compression_vs_whole": 1.0,
        "accuracy": whole["accuracy"],
    })
    return rows
