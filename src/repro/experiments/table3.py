"""Table III — label/error propagation calibration on O vs S deployments.

For a model trained on MCond's synthetic graph, compares vanilla GNN
predictions with LP- and EP-calibrated predictions when serving on the
original graph (O) and on the connected synthetic graph (S), and measures
the propagation time on each — the S-side propagation runs over ``N' + n``
nodes, which is where the reported acceleration comes from.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.pipeline import ExperimentContext
from repro.graph.ops import symmetric_normalize
from repro.inference.engine import InductiveServer
from repro.nn.metrics import accuracy
from repro.propagation.error_prop import error_propagation, softmax_rows
from repro.propagation.label_prop import label_propagation
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["run_table3"]


def run_table3(context: ExperimentContext, budget: int,
               batch_modes=("graph", "node"), alpha: float = 0.8,
               iterations: int = 20, gamma: float = 0.4) -> list[dict]:
    """One dataset's block of Table III."""
    prepared = context.prepared
    seed = context.profile.seeds[0]
    condensed = context.reduce("mcond", budget, seed=seed)
    model = context.train("synthetic", condensed=condensed,
                          validate_deployment="synthetic", seed=seed)
    test = prepared.test_batch
    rows: list[dict] = []

    for batch_mode in batch_modes:
        for deployment, base_graph in (("original", prepared.original),
                                       ("synthetic", None)):
            server = InductiveServer(model, deployment, prepared.original,
                                     condensed)
            attached = server.attach(test, batch_mode)
            operator = symmetric_normalize(attached.adjacency)
            with no_grad():
                logits = model(operator, Tensor(attached.features)).data
            base_logits = logits[:attached.base_size]
            inductive_logits = logits[attached.base_size:]
            vanilla_acc = accuracy(inductive_logits, test.labels)

            if deployment == "original":
                base_labels = prepared.original.labels
            else:
                base_labels = condensed.labels
            num_classes = prepared.split.num_classes

            prior = softmax_rows(inductive_logits)
            lp_scores, lp_time = label_propagation(
                attached, base_labels, num_classes, prior=prior,
                alpha=alpha, iterations=iterations, return_time=True)
            lp_acc = accuracy(lp_scores, test.labels)

            ep_scores, ep_time = error_propagation(
                attached, base_labels, base_logits, inductive_logits,
                num_classes, alpha=alpha, iterations=iterations,
                gamma=gamma, return_time=True)
            ep_acc = accuracy(ep_scores, test.labels)

            rows.append({
                "dataset": prepared.name,
                "budget": budget,
                "batch": batch_mode,
                "graph": "O" if deployment == "original" else "S",
                "vanilla": vanilla_acc,
                "lp": lp_acc,
                "ep": ep_acc,
                "prop_time_ms": float(np.mean([lp_time, ep_time])) * 1e3,
            })

    # Per-batch-mode acceleration ratio (O time / S time), as in the paper.
    for batch_mode in batch_modes:
        pair = [r for r in rows if r["batch"] == batch_mode]
        o_row = next(r for r in pair if r["graph"] == "O")
        s_row = next(r for r in pair if r["graph"] == "S")
        s_row["acceleration"] = o_row["prop_time_ms"] / max(
            s_row["prop_time_ms"], 1e-9)
        o_row["acceleration"] = 1.0
    return rows
