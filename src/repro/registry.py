"""String-keyed plugin registries for reducers, models, and datasets.

The facade (:mod:`repro.api`), the experiment pipeline, and the CLI all
resolve components through the three registries defined here instead of
hard-coded ``if method == ...`` chains.  Each registry maps a lower-case
name to an entry carrying a factory plus optional metadata; components
self-register at import time with the ``@register_*`` decorators, so adding
a new reduction method (or GNN backbone, or dataset) is one decorated
definition — every consumer (``repro condense``, ``ExperimentContext``,
``repro list``) picks it up automatically.

Registration is strict: duplicate keys raise :class:`~repro.errors.RegistryError`
unless ``overwrite=True`` is passed — silently shadowing a method would
corrupt experiment provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Callable, Generic, Iterator, TypeVar

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "ReducerEntry",
    "FactoryEntry",
    "REDUCERS",
    "MODELS",
    "DATASETS",
    "SCHEDULERS",
    "WORKLOADS",
    "ROUTERS",
    "SHED_POLICIES",
    "SCALE_POLICIES",
    "TASKS",
    "register_reducer",
    "register_model",
    "register_dataset",
    "register_scheduler",
    "register_workload",
    "register_router",
    "register_shed_policy",
    "register_scale_policy",
    "register_task",
    "make_reducer",
    "make_scheduler",
    "make_workload",
    "make_router",
    "make_shed_policy",
    "make_scale_policy",
    "make_task",
]

T = TypeVar("T")


class Registry(Generic[T]):
    """A named string → entry mapping with decorator-style registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    # ------------------------------------------------------------------
    def register(self, name: str, entry: T, *, overwrite: bool = False) -> T:
        key = self._normalize(name)
        if not overwrite and key in self._entries:
            raise RegistryError(
                f"{self.kind} {key!r} is already registered; "
                "pass overwrite=True to replace it")
        self._entries[key] = entry
        return entry

    def unregister(self, name: str) -> T:
        """Remove and return an entry (plugin teardown, tests)."""
        key = self._normalize(name)
        if key not in self._entries:
            raise RegistryError(f"{self.kind} {key!r} is not registered")
        return self._entries.pop(key)

    def view(self):
        """A live, read-only mapping over the entries.

        Stays in sync with later registrations; writes raise ``TypeError``
        (register through the registry, not the view).
        """
        return MappingProxyType(self._entries)

    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        key = self._normalize(name)
        if key not in self._entries:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.keys())}")
        return self._entries[key]

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def items(self) -> list[tuple[str, T]]:
        return [(key, self._entries[key]) for key in self.keys()]

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"registry keys must be non-empty strings, got {name!r}")
        return name.lower()

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, keys={self.keys()})"


@dataclass(frozen=True)
class ReducerEntry:
    """A registered reduction method.

    ``factory(seed=..., **cfg)`` builds a ready-to-run
    :class:`~repro.condense.base.GraphReducer`.  ``profile_params`` names
    the :class:`~repro.experiments.settings.EffortProfile` fields the
    factory understands (e.g. ``outer_loops``) so the pipeline can inject
    compute budgets generically, without knowing the method.
    ``description`` feeds ``repro list``.
    """

    name: str
    factory: Callable[..., Any]
    profile_params: tuple[str, ...] = ()
    description: str = ""
    keeps_result: bool = False  # factory's reducer exposes ``last_result``


@dataclass(frozen=True)
class FactoryEntry:
    """A registered factory with a one-line description for ``repro list``.

    Used by the serving registries: ``factory(**config)`` builds a
    micro-batch scheduler or a workload generator.
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""


REDUCERS: Registry[ReducerEntry] = Registry("reduction method")
MODELS: Registry[type] = Registry("model architecture")
DATASETS: Registry[Any] = Registry("dataset")
SCHEDULERS: Registry[FactoryEntry] = Registry("micro-batch scheduler")
WORKLOADS: Registry[FactoryEntry] = Registry("workload generator")
ROUTERS: Registry[FactoryEntry] = Registry("fleet routing policy")
SHED_POLICIES: Registry[FactoryEntry] = Registry("gateway shed policy")
SCALE_POLICIES: Registry[FactoryEntry] = Registry("gateway scale policy")
TASKS: Registry[FactoryEntry] = Registry("serving task")


def register_reducer(name: str, *, profile_params: tuple[str, ...] = (),
                     description: str = "", keeps_result: bool = False,
                     overwrite: bool = False):
    """Decorator registering a reducer factory under ``name``.

    The decorated callable must accept ``seed`` plus arbitrary config
    keyword arguments and return a ``GraphReducer``.
    """

    def wrap(factory):
        REDUCERS.register(
            name,
            ReducerEntry(name=name.lower(), factory=factory,
                         profile_params=tuple(profile_params),
                         description=description, keeps_result=keeps_result),
            overwrite=overwrite)
        return factory

    return wrap


def register_model(name: str, *, overwrite: bool = False):
    """Decorator registering a :class:`~repro.nn.models.GNNModel` subclass."""

    def wrap(cls):
        MODELS.register(name, cls, overwrite=overwrite)
        return cls

    return wrap


def register_dataset(name: str, *, overwrite: bool = False):
    """Decorator (or direct call) registering a dataset spec under ``name``."""

    def wrap(spec):
        DATASETS.register(name, spec, overwrite=overwrite)
        return spec

    return wrap


def register_scheduler(name: str, *, description: str = "",
                       overwrite: bool = False):
    """Decorator registering a micro-batch scheduler factory under ``name``."""

    def wrap(factory):
        SCHEDULERS.register(
            name, FactoryEntry(name=name.lower(), factory=factory,
                               description=description),
            overwrite=overwrite)
        return factory

    return wrap


def register_workload(name: str, *, description: str = "",
                      overwrite: bool = False):
    """Decorator registering a workload-generator factory under ``name``."""

    def wrap(factory):
        WORKLOADS.register(
            name, FactoryEntry(name=name.lower(), factory=factory,
                               description=description),
            overwrite=overwrite)
        return factory

    return wrap


def register_router(name: str, *, description: str = "",
                    overwrite: bool = False):
    """Decorator registering a fleet routing-policy factory under ``name``."""

    def wrap(factory):
        ROUTERS.register(
            name, FactoryEntry(name=name.lower(), factory=factory,
                               description=description),
            overwrite=overwrite)
        return factory

    return wrap


def register_shed_policy(name: str, *, description: str = "",
                         overwrite: bool = False):
    """Decorator registering a gateway admission/shed-policy factory."""

    def wrap(factory):
        SHED_POLICIES.register(
            name, FactoryEntry(name=name.lower(), factory=factory,
                               description=description),
            overwrite=overwrite)
        return factory

    return wrap


def register_scale_policy(name: str, *, description: str = "",
                          overwrite: bool = False):
    """Decorator registering a gateway autoscaling-policy factory."""

    def wrap(factory):
        SCALE_POLICIES.register(
            name, FactoryEntry(name=name.lower(), factory=factory,
                               description=description),
            overwrite=overwrite)
        return factory

    return wrap


def register_task(name: str, *, description: str = "",
                  overwrite: bool = False):
    """Decorator registering a serving-task executor factory under ``name``.

    The decorated callable takes no arguments and returns the executor —
    ``executor(prepared, task, batch_mode=..., frozen=...)`` — that every
    serving layer dispatches :class:`~repro.serving.embeddings.ServeTask`
    requests through.
    """

    def wrap(factory):
        TASKS.register(
            name, FactoryEntry(name=name.lower(), factory=factory,
                               description=description),
            overwrite=overwrite)
        return factory

    return wrap


def make_reducer(method: str, seed: int = 0, **cfg):
    """Instantiate a registered reduction method.

    ``cfg`` is passed through to the factory; invalid options surface as
    the method's own config errors.
    """
    entry = REDUCERS.get(method)
    return entry.factory(seed=seed, **cfg)


def make_scheduler(name: str, **cfg):
    """Instantiate a registered micro-batch scheduler."""
    return SCHEDULERS.get(name).factory(**cfg)


def make_workload(name: str, **cfg):
    """Instantiate a registered workload generator."""
    return WORKLOADS.get(name).factory(**cfg)


def make_router(name: str, **cfg):
    """Instantiate a registered fleet routing policy."""
    return ROUTERS.get(name).factory(**cfg)


def make_shed_policy(name: str, **cfg):
    """Instantiate a registered gateway shed policy."""
    return SHED_POLICIES.get(name).factory(**cfg)


def make_scale_policy(name: str, **cfg):
    """Instantiate a registered gateway scale policy."""
    return SCALE_POLICIES.get(name).factory(**cfg)


def make_task(name: str, **cfg):
    """Instantiate a registered serving-task executor."""
    return TASKS.get(name).factory(**cfg)
