"""MCond: mapping-aware graph condensation for inductive node representation learning.

A full reproduction of Gao et al., *Graph Condensation for Inductive Node
Representation Learning* (ICDE 2024), built from scratch on numpy/scipy.

**Start at :mod:`repro.api`** — the one-call facade over the whole
pipeline (``condense`` → ``deploy`` → ``serve``) and the persistable
:class:`~repro.api.DeploymentBundle` artifact.  Components resolve through
the string-keyed plugin registries in :mod:`repro.registry`
(``REDUCERS``, ``MODELS``, ``DATASETS``); registering a new method, GNN
backbone, or dataset makes it available to the facade, the experiment
harnesses, and the ``repro`` CLI at once.

Layers underneath the facade:

- :mod:`repro.tensor` — reverse-mode autodiff with higher-order gradients.
- :mod:`repro.graph` — graph containers, synthetic dataset simulators,
  inductive-node attachment (Eq. 3 / Eq. 11).
- :mod:`repro.nn` — GNN models (SGC, GCN, GraphSAGE, APPNP, Cheby) and
  optimizers.
- :mod:`repro.condense` — coreset baselines, VNG, GCond, and MCond itself.
- :mod:`repro.inference` — the four deployment settings (O→O, O→S, S→O,
  S→S) with latency/memory accounting.
- :mod:`repro.serving` — the online runtime: prepared-deployment cache,
  micro-batching scheduler, bounded queue, workload generators, and the
  ``repro bench`` serving-latency benchmark.
- :mod:`repro.propagation` — label propagation and error propagation
  calibration.
- :mod:`repro.experiments` — harnesses regenerating every table and figure.

The ``repro`` command (``python -m repro``) exposes the same flow as
subcommands: ``repro condense``, ``repro serve``, ``repro eval``,
``repro list``, plus the paper's ``table*``/``fig*`` reports.
"""

__version__ = "1.1.0"

from repro import errors

__all__ = ["errors", "api", "registry", "__version__"]


def __getattr__(name: str):
    # Lazy imports keep `import repro` light while making `repro.api` and
    # `repro.registry` available without an explicit submodule import.
    if name in ("api", "registry"):
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
