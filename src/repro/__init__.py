"""MCond: mapping-aware graph condensation for inductive node representation learning.

A full reproduction of Gao et al., *Graph Condensation for Inductive Node
Representation Learning* (ICDE 2024), built from scratch on numpy/scipy:

- :mod:`repro.tensor` — reverse-mode autodiff with higher-order gradients.
- :mod:`repro.graph` — graph containers, synthetic dataset simulators,
  inductive-node attachment (Eq. 3 / Eq. 11).
- :mod:`repro.nn` — GNN models (SGC, GCN, GraphSAGE, APPNP, Cheby) and
  optimizers.
- :mod:`repro.condense` — coreset baselines, VNG, GCond, and MCond itself.
- :mod:`repro.inference` — the four deployment settings (O→O, O→S, S→O,
  S→S) with latency/memory accounting.
- :mod:`repro.propagation` — label propagation and error propagation
  calibration.
- :mod:`repro.experiments` — harnesses regenerating every table and figure.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
