"""Shared helpers for machine-readable benchmark reports.

Both tracked benchmark artifacts — ``BENCH_serving.json`` (the online
phase, :mod:`repro.serving.bench`) and ``BENCH_condense.json`` (the
offline phase, :mod:`repro.condense.bench`) — are plain JSON dicts
written with the same deterministic formatting, so their diffs across
commits are the repo's performance trajectory.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["write_benchmark_json", "require_keys"]


def write_benchmark_json(result: dict, path: str | Path) -> Path:
    """Persist a benchmark result as stable, sorted JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return target


def require_keys(mapping: dict, keys, where: str, error: type) -> None:
    """Raise ``error`` naming every key of ``keys`` missing from ``mapping``."""
    missing = [key for key in keys if key not in mapping]
    if missing:
        # repro-check: errors dynamic type — callers pass a ReproError class
        raise error(f"{where} misses keys: {missing}")
