"""Back-compat alias: the timers live in :mod:`repro.telemetry.timers`.

``Stopwatch`` grew stage-span integration when it moved into the
telemetry package; import from :mod:`repro.telemetry` in new code.
"""

from repro.telemetry.timers import Stopwatch, format_seconds

__all__ = ["Stopwatch", "format_seconds"]
