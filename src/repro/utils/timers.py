"""Wall-clock helpers used by examples and the CLI."""

from __future__ import annotations

import time

__all__ = ["Stopwatch", "format_seconds"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Stopwatch() as watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering: ``1.2ms``, ``3.4s``, ``2m05s``."""
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, remainder = divmod(seconds, 60.0)
    return f"{int(minutes)}m{remainder:04.1f}s"
