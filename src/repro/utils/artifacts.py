"""Shared helpers for ``.npz`` artifact files.

``np.savez`` silently appends ``.npz`` to paths that lack the suffix, so a
naive ``save("x.bin")`` writes ``x.bin.npz`` while ``load("x.bin")`` looks
for the original name and fails.  Every artifact writer/reader in the
library routes paths through :func:`normalize_npz_path` so save and load
always agree on the on-disk name.

:func:`save_npz` and :func:`open_npz_archive` additionally translate the
raw I/O failures numpy surfaces — a missing parent directory, a
permission error, a truncated or non-zip file — into
:class:`~repro.errors.ArtifactError`, so every artifact path problem
reaches the CLI as a clean ``exit 2`` message instead of a traceback.
"""

from __future__ import annotations

import zipfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.errors import ArtifactError

__all__ = ["normalize_npz_path", "save_npz", "open_npz_archive"]


def normalize_npz_path(path: str | Path) -> Path:
    """Return ``path`` with the ``.npz`` suffix ``np.savez`` would produce.

    Mirrors numpy's behavior exactly: a missing suffix is appended (not
    substituted), so ``x.bin`` maps to ``x.bin.npz`` and ``x.npz`` is left
    untouched.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_npz(path: str | Path, payload: dict) -> Path:
    """Write ``payload`` as a compressed ``.npz``; returns the real path.

    Unwritable targets (missing parent directory, permissions, full disk)
    raise :class:`ArtifactError` with the offending path in the message.
    """
    target = normalize_npz_path(path)
    try:
        np.savez_compressed(target, **payload)
    except OSError as exc:
        raise ArtifactError(
            f"cannot write artifact {target}: {exc}") from exc
    return target


@contextmanager
def open_npz_archive(path: str | Path, kind: str = "artifact"):
    """Open an ``.npz`` for reading, yielding the ``NpzFile``.

    Missing files raise ``ArtifactError(f"no {kind} at ...")``; unreadable
    or corrupt files (permissions, truncation, not a zip archive) raise
    :class:`ArtifactError` naming the path and the underlying failure.
    """
    target = normalize_npz_path(path)
    if not target.exists():
        raise ArtifactError(f"no {kind} at {target}")
    try:
        archive = np.load(target)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ArtifactError(
            f"cannot read {kind} {target}: {exc}") from exc
    try:
        yield archive
    finally:
        archive.close()
