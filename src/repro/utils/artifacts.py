"""Shared helpers for ``.npz`` artifact files.

``np.savez`` silently appends ``.npz`` to paths that lack the suffix, so a
naive ``save("x.bin")`` writes ``x.bin.npz`` while ``load("x.bin")`` looks
for the original name and fails.  Every artifact writer/reader in the
library routes paths through :func:`normalize_npz_path` so save and load
always agree on the on-disk name.

:func:`save_npz` and :func:`open_npz_archive` additionally translate the
raw I/O failures numpy surfaces — a missing parent directory, a
permission error, a truncated or non-zip file — into
:class:`~repro.errors.ArtifactError`, so every artifact path problem
reaches the CLI as a clean ``exit 2`` message instead of a traceback.
The translation covers the *whole* read, not just the ``np.load`` call:
``.npz`` members decompress lazily, so a truncated archive often opens
fine and only fails when an array is pulled out mid-``with``.

Zero-copy loading
-----------------
``open_npz_archive(path, mmap=True)`` yields a :class:`MappedNpzArchive`
instead of an eagerly-read ``NpzFile``: the file is memory-mapped once,
read-only, and every *stored* (uncompressed) ``.npy`` member becomes a
buffer-backed array over the shared mapping — no decompression, no copy,
and N processes opening the same artifact share one page-cache copy of
the bytes.  Deflated members (the ``np.savez_compressed`` layout) fall
back to an eager per-member read, so ``mmap=True`` is always safe to
request.  Write ``save_npz(path, payload, compressed=False)`` (the
``layout="mmap"`` bundle option) to produce fully mappable artifacts.
"""

from __future__ import annotations

import io
import mmap as _mmap
import struct
import zipfile
import zlib
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.errors import ArtifactError, ReproError

__all__ = ["normalize_npz_path", "save_npz", "open_npz_archive",
           "MappedNpzArchive"]

#: Exceptions that signal a corrupt / truncated / unreadable artifact when
#: raised while an archive is being read.  ``zlib.error`` and ``EOFError``
#: come out of lazy member decompression; ``struct.error`` out of zip
#: header parsing; ``ValueError`` out of numpy's format checks.
_READ_ERRORS = (OSError, ValueError, zipfile.BadZipFile, zlib.error,
                EOFError, struct.error)


def normalize_npz_path(path: str | Path) -> Path:
    """Return ``path`` with the ``.npz`` suffix ``np.savez`` would produce.

    Mirrors numpy's behavior exactly: a missing suffix is appended (not
    substituted), so ``x.bin`` maps to ``x.bin.npz`` and ``x.npz`` is left
    untouched.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_npz(path: str | Path, payload: dict, *,
             compressed: bool = True) -> Path:
    """Write ``payload`` as an ``.npz``; returns the real path.

    ``compressed=True`` (default) deflates every member — the smallest
    artifact.  ``compressed=False`` stores members raw, which is what
    makes :class:`MappedNpzArchive` zero-copy: stored members can be
    memory-mapped in place.  Unwritable targets (missing parent
    directory, permissions, full disk) raise :class:`ArtifactError` with
    the offending path in the message.
    """
    target = normalize_npz_path(path)
    writer = np.savez_compressed if compressed else np.savez
    try:
        writer(target, **payload)
    except OSError as exc:
        raise ArtifactError(
            f"cannot write artifact {target}: {exc}") from exc
    return target


class MappedNpzArchive:
    """A read-only, memory-mapped view of an ``.npz`` archive.

    Mirrors the slice of the ``NpzFile`` interface the artifact readers
    use — ``.files``, ``archive[name]``, ``close()`` — so it can stand in
    for ``np.load``'s return value.  Stored (uncompressed) members are
    returned as non-writable arrays backed by one shared ``mmap`` of the
    file; deflated members are read eagerly as a fallback.

    The arrays keep the mapping alive (they hold buffer references), so
    they remain valid after :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        try:
            self._buffer = _mmap.mmap(self._handle.fileno(), 0,
                                      access=_mmap.ACCESS_READ)
            self._zip = zipfile.ZipFile(self._handle)
            self._members = {
                info.filename[:-len(".npy")]
                if info.filename.endswith(".npy") else info.filename: info
                for info in self._zip.infolist()}
        except Exception:
            self.close()
            raise
        self.files = list(self._members)
        self._cache: dict[str, np.ndarray] = {}
        #: Member names served zero-copy from the mapping (diagnostics).
        self.mapped: set[str] = set()

    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._members:
            raise KeyError(f"{name} is not a file in the archive")
        if name not in self._cache:
            info = self._members[name]
            if info.compress_type == zipfile.ZIP_STORED:
                self._cache[name] = self._mapped_member(info)
                self.mapped.add(name)
            else:
                with self._zip.open(info) as member:
                    self._cache[name] = np.lib.format.read_array(
                        member, allow_pickle=False)
        return self._cache[name]

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def _mapped_member(self, info: zipfile.ZipInfo) -> np.ndarray:
        """A non-writable array over the member's bytes in the mapping.

        The central directory's ``header_offset`` points at the member's
        *local* file header, whose name/extra fields may differ in length
        from the central ones — the data offset must be derived from the
        local header itself.
        """
        header = self._buffer[info.header_offset:info.header_offset + 30]
        if len(header) < 30 or header[:4] != b"PK\x03\x04":
            raise ArtifactError(
                f"{self.path} member {info.filename!r} has a corrupt "
                "local zip header")
        name_len, extra_len = struct.unpack("<HH", header[26:30])
        start = info.header_offset + 30 + name_len + extra_len
        member = memoryview(self._buffer)[start:start + info.file_size]
        # The npy header is tiny; copy just its prefix to parse it, then
        # point the array at the mapped payload bytes.
        prefix = io.BytesIO(member[:min(len(member), 66000)].tobytes())
        version = np.lib.format.read_magic(prefix)
        read_header = {
            (1, 0): np.lib.format.read_array_header_1_0,
            (2, 0): np.lib.format.read_array_header_2_0,
        }.get(version, np.lib.format.read_array_header_2_0)
        shape, fortran, dtype = read_header(prefix)
        if dtype.hasobject:
            raise ArtifactError(
                f"{self.path} member {info.filename!r} holds Python "
                "objects and cannot be memory-mapped")
        offset = prefix.tell()
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        data = np.frombuffer(member, dtype=dtype, count=count, offset=offset)
        return data.reshape(shape, order="F" if fortran else "C")

    # ------------------------------------------------------------------
    def close(self) -> None:
        for attr in ("_zip", "_handle"):
            handle = getattr(self, attr, None)
            if handle is not None:
                handle.close()
        # the mmap itself stays open while served arrays reference it;
        # dropping our handle lets it collapse once they are gone
        if getattr(self, "_buffer", None) is not None:
            self._buffer = None

    def __enter__(self) -> "MappedNpzArchive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"MappedNpzArchive({str(self.path)!r}, "
                f"members={len(self.files)}, mapped={len(self.mapped)})")


@contextmanager
def open_npz_archive(path: str | Path, kind: str = "artifact", *,
                     mmap: bool = False):
    """Open an ``.npz`` for reading, yielding the archive object.

    Missing files raise ``ArtifactError(f"no {kind} at ...")``; unreadable
    or corrupt files (permissions, truncation, not a zip archive) raise
    :class:`ArtifactError` naming the path and the underlying failure —
    including corruption that only surfaces *inside* the ``with`` block,
    when a lazily-decompressed member is actually read.  Library errors
    (``ReproError``) raised by the block pass through untouched.

    ``mmap=True`` yields a :class:`MappedNpzArchive` — zero-copy for
    stored members, eager fallback for deflated ones.
    """
    target = normalize_npz_path(path)
    if not target.exists():
        raise ArtifactError(f"no {kind} at {target}")
    try:
        archive = MappedNpzArchive(target) if mmap else np.load(target)
    except _READ_ERRORS as exc:
        raise ArtifactError(
            f"cannot read {kind} {target}: {exc}") from exc
    try:
        yield archive
    except ReproError:
        raise
    except _READ_ERRORS as exc:
        # lazy member reads fail *inside* the block (truncation, bad CRC);
        # the message repeats the cause rather than asserting corruption,
        # since the block's parsing code shares these exception types
        raise ArtifactError(
            f"cannot read {kind} {target}: {exc}") from exc
    finally:
        archive.close()
