"""Shared helpers for ``.npz`` artifact files.

``np.savez`` silently appends ``.npz`` to paths that lack the suffix, so a
naive ``save("x.bin")`` writes ``x.bin.npz`` while ``load("x.bin")`` looks
for the original name and fails.  Every artifact writer/reader in the
library routes paths through :func:`normalize_npz_path` so save and load
always agree on the on-disk name.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["normalize_npz_path"]


def normalize_npz_path(path: str | Path) -> Path:
    """Return ``path`` with the ``.npz`` suffix ``np.savez`` would produce.

    Mirrors numpy's behavior exactly: a missing suffix is appended (not
    substituted), so ``x.bin`` maps to ``x.bin.npz`` and ``x.npz`` is left
    untouched.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path
