"""Deterministic seeding helpers.

The library threads explicit ``numpy.random.Generator`` objects through
every stochastic component; these helpers create and fan them out.
"""

from __future__ import annotations

import random

import numpy as np

from repro.errors import ConfigError

__all__ = ["seed_everything", "spawn_rngs"]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and numpy's global state and return a fresh Generator.

    Library code never relies on global state, but examples and ad-hoc
    scripts may; seeding both keeps them reproducible.
    """
    if not isinstance(seed, int):
        raise ConfigError(f"seed must be an int, got {type(seed).__name__}")
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Uses numpy's ``SeedSequence.spawn`` so streams are statistically
    independent — e.g. one per experiment repetition.
    """
    if count <= 0:
        raise ConfigError(f"count must be positive, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
