"""Small shared utilities: seeding, timing, artifact paths."""

from repro.utils.artifacts import normalize_npz_path
from repro.utils.reports import write_benchmark_json
from repro.utils.seeding import seed_everything, spawn_rngs
from repro.utils.timers import Stopwatch, format_seconds

__all__ = ["seed_everything", "spawn_rngs", "Stopwatch", "format_seconds",
           "normalize_npz_path", "write_benchmark_json"]
