"""Small shared utilities: seeding, timing, table-free progress logs."""

from repro.utils.seeding import seed_everything, spawn_rngs
from repro.utils.timers import Stopwatch, format_seconds

__all__ = ["seed_everything", "spawn_rngs", "Stopwatch", "format_seconds"]
