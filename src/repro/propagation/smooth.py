"""The "smooth" step of Correct & Smooth — an optional refinement of EP.

Error propagation (the *correct* step, :mod:`repro.propagation.error_prop`)
fixes systematic bias; smoothing afterwards propagates the *corrected*
scores themselves, pulling each inductive prediction toward its
neighborhood consensus.  This is the full C&S pipeline of Huang et al.
[47], provided as an extension beyond the paper's Table III.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InferenceError
from repro.graph.incremental import AttachedGraph
from repro.graph.ops import symmetric_normalize
from repro.tensor.functional import one_hot

__all__ = ["smooth_predictions", "correct_and_smooth"]


def smooth_predictions(attached: AttachedGraph, base_labels: np.ndarray,
                       inductive_scores: np.ndarray, num_classes: int,
                       alpha: float = 0.8, iterations: int = 20) -> np.ndarray:
    """Propagate class scores with base labels clamped to ground truth.

    Returns the smoothed ``(n, C)`` scores of the inductive rows.
    """
    if not 0.0 < alpha < 1.0:
        raise InferenceError(f"alpha must be in (0, 1), got {alpha}")
    base_labels = np.asarray(base_labels, dtype=np.int64)
    if base_labels.shape[0] != attached.base_size:
        raise InferenceError(
            f"base_labels has {base_labels.shape[0]} rows, expected "
            f"{attached.base_size}")
    scores = np.asarray(inductive_scores, dtype=np.float64)
    if scores.shape != (attached.num_new, num_classes):
        raise InferenceError(
            f"inductive_scores shape {scores.shape} != "
            f"({attached.num_new}, {num_classes})")
    anchor = np.zeros((attached.num_nodes, num_classes), dtype=np.float64)
    anchor[:attached.base_size] = one_hot(base_labels, num_classes)
    anchor[attached.base_size:] = scores
    operator = symmetric_normalize(attached.adjacency, self_loops=True)
    state = anchor.copy()
    for _ in range(iterations):
        state = alpha * (operator @ state) + (1.0 - alpha) * anchor
        state[:attached.base_size] = anchor[:attached.base_size]
    return state[attached.base_size:]


def correct_and_smooth(attached: AttachedGraph, base_labels: np.ndarray,
                       base_logits: np.ndarray, inductive_logits: np.ndarray,
                       num_classes: int, alpha: float = 0.8,
                       iterations: int = 20, gamma: float = 0.4) -> np.ndarray:
    """The full C&S pipeline: error propagation then label smoothing."""
    from repro.propagation.error_prop import error_propagation
    corrected = error_propagation(attached, base_labels, base_logits,
                                  inductive_logits, num_classes,
                                  alpha=alpha, iterations=iterations,
                                  gamma=gamma)
    return smooth_predictions(attached, base_labels, corrected, num_classes,
                              alpha=alpha, iterations=iterations)
