"""Label propagation (LP) calibration on a connected graph [46].

Given an attached graph (base graph + inductive nodes, Eq. 3 or Eq. 11),
LP spreads the base nodes' known labels to the inductive rows through the
normalized adjacency:

    ``F <- alpha * S F + (1 - alpha) * F0``

where base rows of ``F0`` are (clamped) one-hot labels and inductive rows
start from an optional prior — typically the GNN's softmax output, which is
what makes this a *calibration* of the GNN rather than a replacement.

On MCond's connected synthetic graph the propagation runs over ``N' + n``
nodes instead of ``N + n`` — the source of the Table III speedups.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import InferenceError
from repro.graph.incremental import AttachedGraph
from repro.graph.ops import symmetric_normalize
from repro.tensor.functional import one_hot

__all__ = ["label_propagation", "propagate_scores"]


def propagate_scores(attached: AttachedGraph, initial: np.ndarray,
                     clamp_rows: np.ndarray, clamp_values: np.ndarray,
                     alpha: float = 0.8, iterations: int = 20) -> np.ndarray:
    """Generic clamped propagation used by both LP and EP.

    ``clamp_rows`` are reset to ``clamp_values`` after every step (label
    clamping in classic LP).
    """
    if not 0.0 < alpha < 1.0:
        raise InferenceError(f"alpha must be in (0, 1), got {alpha}")
    if iterations <= 0:
        raise InferenceError(f"iterations must be positive, got {iterations}")
    operator = symmetric_normalize(attached.adjacency, self_loops=True)
    scores = np.array(initial, dtype=np.float64, copy=True)
    anchor = np.array(scores, copy=True)
    for _ in range(iterations):
        scores = alpha * (operator @ scores) + (1.0 - alpha) * anchor
        scores[clamp_rows] = clamp_values
    return scores


def label_propagation(attached: AttachedGraph, base_labels: np.ndarray,
                      num_classes: int, prior: np.ndarray | None = None,
                      alpha: float = 0.8, iterations: int = 20,
                      return_time: bool = False):
    """Propagate base labels to the attached inductive nodes.

    Parameters
    ----------
    attached:
        Augmented graph with inductive nodes appended at the end.
    base_labels:
        ``(B,)`` integer labels of the base (original or synthetic) nodes.
    prior:
        Optional ``(n, C)`` prior scores for the inductive rows (the GNN's
        softmax output); zeros when omitted (pure LP).
    return_time:
        When true, also return the propagation wall-clock seconds (the
        quantity Table III reports).

    Returns
    -------
    ``(n, C)`` propagated scores for the inductive rows — optionally with
    the measured propagation time.
    """
    base_labels = np.asarray(base_labels, dtype=np.int64)
    if base_labels.shape[0] != attached.base_size:
        raise InferenceError(
            f"base_labels has {base_labels.shape[0]} rows, expected "
            f"{attached.base_size}")
    clamp_values = one_hot(base_labels, num_classes)
    initial = np.zeros((attached.num_nodes, num_classes), dtype=np.float64)
    initial[:attached.base_size] = clamp_values
    if prior is not None:
        prior = np.asarray(prior, dtype=np.float64)
        if prior.shape != (attached.num_new, num_classes):
            raise InferenceError(
                f"prior shape {prior.shape} != ({attached.num_new}, {num_classes})")
        initial[attached.base_size:] = prior
    start = time.perf_counter()
    scores = propagate_scores(attached, initial,
                              clamp_rows=np.arange(attached.base_size),
                              clamp_values=clamp_values,
                              alpha=alpha, iterations=iterations)
    elapsed = time.perf_counter() - start
    result = scores[attached.base_size:]
    if return_time:
        return result, elapsed
    return result
