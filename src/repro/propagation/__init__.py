"""Non-parametric calibration: label propagation and error propagation."""

from repro.propagation.label_prop import label_propagation, propagate_scores
from repro.propagation.error_prop import error_propagation, softmax_rows
from repro.propagation.smooth import smooth_predictions, correct_and_smooth

__all__ = ["label_propagation", "propagate_scores", "error_propagation",
           "softmax_rows", "smooth_predictions", "correct_and_smooth"]
