"""Error propagation (EP) calibration — the "correct" step of
Correct & Smooth (Huang et al.) [47].

The GNN's residual errors on *base* nodes (whose labels are known) are
propagated through the connected graph and used to revise the inductive
predictions:

    ``E0[base]      = onehot(y_base) - softmax(logits_base)``
    ``E  <- alpha * S E + (1 - alpha) * E0``   (inductive rows start at 0)
    ``corrected     = softmax(logits_inductive) + gamma * E[inductive]``

On the synthetic graph the base nodes are the ``N'`` synthetic nodes with
their predefined labels ``Y'``, so the propagation cost again scales with
``N'`` rather than ``N``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import InferenceError
from repro.graph.incremental import AttachedGraph
from repro.graph.ops import symmetric_normalize
from repro.tensor.functional import one_hot

__all__ = ["error_propagation", "softmax_rows"]


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise numpy softmax (inference-side, no autodiff needed)."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


def error_propagation(attached: AttachedGraph, base_labels: np.ndarray,
                      base_logits: np.ndarray, inductive_logits: np.ndarray,
                      num_classes: int, alpha: float = 0.8,
                      iterations: int = 20, gamma: float = 1.0,
                      return_time: bool = False):
    """Correct inductive predictions with propagated base-node errors.

    Parameters
    ----------
    base_labels / base_logits:
        Labels and model logits of the ``B`` base nodes.
    inductive_logits:
        Model logits of the ``n`` attached inductive nodes.
    gamma:
        Correction strength applied to the propagated error.
    return_time:
        Also return the propagation wall-clock seconds.

    Returns
    -------
    ``(n, C)`` corrected class scores for the inductive nodes.
    """
    if not 0.0 < alpha < 1.0:
        raise InferenceError(f"alpha must be in (0, 1), got {alpha}")
    base_labels = np.asarray(base_labels, dtype=np.int64)
    base_logits = np.asarray(base_logits, dtype=np.float64)
    inductive_logits = np.asarray(inductive_logits, dtype=np.float64)
    if base_labels.shape[0] != attached.base_size:
        raise InferenceError(
            f"base_labels has {base_labels.shape[0]} rows, expected "
            f"{attached.base_size}")
    if base_logits.shape != (attached.base_size, num_classes):
        raise InferenceError(
            f"base_logits shape {base_logits.shape} != "
            f"({attached.base_size}, {num_classes})")
    if inductive_logits.shape != (attached.num_new, num_classes):
        raise InferenceError(
            f"inductive_logits shape {inductive_logits.shape} != "
            f"({attached.num_new}, {num_classes})")

    base_probs = softmax_rows(base_logits)
    errors = np.zeros((attached.num_nodes, num_classes), dtype=np.float64)
    errors[:attached.base_size] = one_hot(base_labels, num_classes) - base_probs

    start = time.perf_counter()
    operator = symmetric_normalize(attached.adjacency, self_loops=True)
    anchor = errors.copy()
    for _ in range(iterations):
        errors = alpha * (operator @ errors) + (1.0 - alpha) * anchor
    corrected = softmax_rows(inductive_logits) + gamma * errors[attached.base_size:]
    elapsed = time.perf_counter() - start
    if return_time:
        return corrected, elapsed
    return corrected
