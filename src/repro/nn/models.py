"""GNN architectures used in the paper's experiments.

All models share one interface:

- ``embed(operator, x)`` — node representations ``H = f(A, X)`` used by
  MCond's structure/transductive/inductive losses;
- ``forward(operator, x)`` — class logits (``classifier(f(A, X))``);
- the propagation ``operator`` is a normalized adjacency, either a constant
  scipy sparse matrix or a differentiable dense :class:`Tensor`.

SGC is the relay/deployment default (as in the paper); GCN, GraphSAGE,
APPNP and Cheby cover the generalizability study (Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import (APPNPPropagate, ChebConv, GCNConv, Linear,
                             SAGEConv, propagate)
from repro.nn.module import Module
from repro.registry import MODELS, register_model
from repro.tensor.tensor import Tensor, as_tensor, dropout, relu

__all__ = ["GNNModel", "SGC", "GCN", "GraphSAGE", "APPNP", "Cheby", "MLP",
           "make_model", "MODEL_REGISTRY"]


class GNNModel(Module):
    """Shared base: dropout bookkeeping and the embed/forward contract."""

    def __init__(self, dropout_rate: float, seed: int) -> None:
        super().__init__()
        if not 0.0 <= dropout_rate < 1.0:
            raise ConfigError(f"dropout must be in [0, 1), got {dropout_rate}")
        self.dropout_rate = dropout_rate
        self._dropout_rng = np.random.default_rng(seed ^ 0x5EED)

    def _maybe_dropout(self, h: Tensor) -> Tensor:
        return dropout(h, self.dropout_rate, rng=self._dropout_rng,
                       training=self.training)

    # Subclasses implement these two.
    def embed(self, operator, x) -> Tensor:
        """Penultimate node representations under ``operator``.

        The serving contract behind the ``embed``/``link_score``/``topk``
        tasks (:mod:`repro.serving.embeddings`): every registered model
        returns the representation its classifier head consumes, and
        ``forward`` must factor through it.  Under ``eval()`` the output
        is deterministic (dropout is identity), so cached base-node
        embeddings stay bitwise-comparable across processes.
        """
        raise NotImplementedError

    def forward(self, operator, x) -> Tensor:
        raise NotImplementedError

    def __call__(self, operator, x) -> Tensor:
        return self.forward(operator, x)


class SGC(GNNModel):
    """Simplified Graph Convolution: ``logits = Â^K X W``.

    The embedding is the parameter-free K-hop propagation ``Â^K X``; the
    classifier is a single linear layer.  This is the relay model used for
    condensation in the paper (fast, and gradient matching touches only
    ``W``).
    """

    def __init__(self, in_features: int, num_classes: int, k_hops: int = 2,
                 dropout_rate: float = 0.0, seed: int = 0) -> None:
        super().__init__(dropout_rate, seed)
        self.k_hops = int(k_hops)
        rng = np.random.default_rng(seed)
        self.classifier = Linear(in_features, num_classes, rng)

    def embed(self, operator, x) -> Tensor:
        h = as_tensor(x)
        for _ in range(self.k_hops):
            h = propagate(operator, h)
        return h

    def forward(self, operator, x) -> Tensor:
        h = self._maybe_dropout(self.embed(operator, x))
        return self.classifier(h)


class GCN(GNNModel):
    """Graph Convolutional Network (Kipf & Welling), L layers."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__(dropout_rate, seed)
        if num_layers < 2:
            raise ConfigError(f"GCN needs >= 2 layers, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.num_layers = num_layers
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for i in range(num_layers):
            setattr(self, f"conv_{i}", GCNConv(dims[i], dims[i + 1], rng))

    def embed(self, operator, x) -> Tensor:
        h = as_tensor(x)
        for i in range(self.num_layers - 1):
            h = relu(getattr(self, f"conv_{i}")(operator, h))
            h = self._maybe_dropout(h)
        return h

    def forward(self, operator, x) -> Tensor:
        h = self.embed(operator, x)
        return getattr(self, f"conv_{self.num_layers - 1}")(operator, h)


class GraphSAGE(GNNModel):
    """GraphSAGE with mean-style neighbor aggregation and concat update."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 num_layers: int = 2, dropout_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__(dropout_rate, seed)
        if num_layers < 2:
            raise ConfigError(f"GraphSAGE needs >= 2 layers, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.num_layers = num_layers
        dims = [in_features] + [hidden] * (num_layers - 1) + [num_classes]
        for i in range(num_layers):
            setattr(self, f"conv_{i}", SAGEConv(dims[i], dims[i + 1], rng))

    def embed(self, operator, x) -> Tensor:
        h = as_tensor(x)
        for i in range(self.num_layers - 1):
            h = relu(getattr(self, f"conv_{i}")(operator, h))
            h = self._maybe_dropout(h)
        return h

    def forward(self, operator, x) -> Tensor:
        h = self.embed(operator, x)
        return getattr(self, f"conv_{self.num_layers - 1}")(operator, h)


class APPNP(GNNModel):
    """Predict-then-propagate: an MLP followed by PPR propagation."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 k_hops: int = 10, alpha: float = 0.1,
                 dropout_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__(dropout_rate, seed)
        rng = np.random.default_rng(seed)
        self.linear_in = Linear(in_features, hidden, rng)
        self.linear_out = Linear(hidden, num_classes, rng)
        self.propagation = APPNPPropagate(k_hops, alpha)

    def embed(self, operator, x) -> Tensor:
        h = relu(self.linear_in(as_tensor(x)))
        h = self._maybe_dropout(h)
        return self.propagation(operator, h)

    def forward(self, operator, x) -> Tensor:
        return self.linear_out(self.embed(operator, x))


class Cheby(GNNModel):
    """Two-layer Chebyshev spectral GNN."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 order: int = 2, dropout_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__(dropout_rate, seed)
        rng = np.random.default_rng(seed)
        self.conv_in = ChebConv(in_features, hidden, order, rng)
        self.conv_out = ChebConv(hidden, num_classes, order, rng)

    def embed(self, operator, x) -> Tensor:
        h = relu(self.conv_in(operator, as_tensor(x)))
        return self._maybe_dropout(h)

    def forward(self, operator, x) -> Tensor:
        return self.conv_out(operator, self.embed(operator, x))


class MLP(GNNModel):
    """Structure-free baseline: ignores the propagation operator."""

    def __init__(self, in_features: int, num_classes: int, hidden: int = 64,
                 dropout_rate: float = 0.1, seed: int = 0) -> None:
        super().__init__(dropout_rate, seed)
        rng = np.random.default_rng(seed)
        self.linear_in = Linear(in_features, hidden, rng)
        self.linear_out = Linear(hidden, num_classes, rng)

    def embed(self, operator, x) -> Tensor:
        h = relu(self.linear_in(as_tensor(x)))
        return self._maybe_dropout(h)

    def forward(self, operator, x) -> Tensor:
        return self.linear_out(self.embed(operator, x))


for _name, _cls in (("sgc", SGC), ("gcn", GCN), ("graphsage", GraphSAGE),
                    ("appnp", APPNP), ("cheby", Cheby), ("mlp", MLP)):
    register_model(_name)(_cls)


def __getattr__(name: str):
    # Legacy alias kept for callers that enumerate architectures directly.
    # A live read-only view: plugin models registered later appear, and the
    # pre-1.1 mutation idiom (MODEL_REGISTRY["x"] = cls) fails loudly —
    # registration goes through repro.registry.register_model now.
    if name == "MODEL_REGISTRY":
        return MODELS.view()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_model(name: str, in_features: int, num_classes: int,
               seed: int = 0, **kwargs) -> GNNModel:
    """Instantiate a model by registry name (case-insensitive).

    The returned model carries ``registry_name`` and ``build_config``
    attributes recording how to rebuild it — :class:`repro.api.DeploymentBundle`
    persists these alongside the weights.
    """
    cls = MODELS.get(name)
    model = cls(in_features, num_classes, seed=seed, **kwargs)
    model.registry_name = name.lower()
    model.build_config = {"in_features": in_features,
                          "num_classes": num_classes, "seed": seed, **kwargs}
    return model
