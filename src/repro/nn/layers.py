"""Neural layers and the propagation operator abstraction.

Every GNN layer receives a *propagation operator* — either a constant scipy
sparse matrix (deployment on the original graph) or a dense differentiable
:class:`Tensor` (the learnable synthetic adjacency during condensation).
:func:`propagate` dispatches between the two, which is what lets one model
implementation serve both the O→· and S→· settings of the paper.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.tensor.sparse import spmm
from repro.tensor.tensor import Tensor, add, as_tensor, concat, matmul, relu

__all__ = ["propagate", "Linear", "GCNConv", "SAGEConv", "ChebConv",
           "APPNPPropagate", "MLPBlock"]


def propagate(operator, h: Tensor) -> Tensor:
    """Apply a propagation operator to node representations.

    ``operator`` may be a scipy sparse matrix (constant), a dense numpy
    array (constant), or a :class:`Tensor` (differentiable).
    """
    if sp.issparse(operator):
        return spmm(operator, h)
    if isinstance(operator, Tensor):
        return matmul(operator, h)
    return matmul(Tensor(np.asarray(operator, dtype=np.float64)), h)


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"Linear dims must be positive, got ({in_features}, {out_features})")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng),
                                name="weight")
        self.bias: Parameter | None = None
        if bias:
            self.bias = Parameter(zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = matmul(as_tensor(x), self.weight)
        if self.bias is not None:
            out = add(out, self.bias)
        return out

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class GCNConv(Module):
    """Graph convolution of Eq. (1): ``H' = act(Â H W)``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng, bias=bias)

    def forward(self, operator, h: Tensor) -> Tensor:
        return self.linear(propagate(operator, as_tensor(h)))

    def __call__(self, operator, h: Tensor) -> Tensor:
        return self.forward(operator, h)


class SAGEConv(Module):
    """GraphSAGE convolution: ``H' = [H, Â H] W`` (concat aggregator)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.linear = Linear(2 * in_features, out_features, rng, bias=bias)

    def forward(self, operator, h: Tensor) -> Tensor:
        h = as_tensor(h)
        neighbor = propagate(operator, h)
        return self.linear(concat([h, neighbor], axis=1))

    def __call__(self, operator, h: Tensor) -> Tensor:
        return self.forward(operator, h)


class ChebConv(Module):
    """Chebyshev spectral convolution of order ``K``.

    Uses the recursion ``T_0 = H``, ``T_1 = P H``, ``T_k = 2 P T_{k-1} -
    T_{k-2}`` on the supplied propagation operator ``P`` and learns one
    weight matrix per order.  With ``P`` the normalized adjacency this is
    the standard shifted Chebyshev basis (lambda_max ≈ 2 convention).
    """

    def __init__(self, in_features: int, out_features: int, order: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        if order < 1:
            raise ShapeError(f"Chebyshev order must be >= 1, got {order}")
        self.order = order
        for k in range(order):
            setattr(self, f"theta_{k}",
                    Linear(in_features, out_features, rng, bias=bias and k == 0))

    def forward(self, operator, h: Tensor) -> Tensor:
        h = as_tensor(h)
        basis_prev = h
        out = getattr(self, "theta_0")(basis_prev)
        if self.order == 1:
            return out
        basis_curr = propagate(operator, h)
        out = add(out, getattr(self, "theta_1")(basis_curr))
        for k in range(2, self.order):
            basis_next = Tensor(2.0) * propagate(operator, basis_curr) - basis_prev
            basis_prev, basis_curr = basis_curr, basis_next
            out = add(out, getattr(self, f"theta_{k}")(basis_curr))
        return out

    def __call__(self, operator, h: Tensor) -> Tensor:
        return self.forward(operator, h)


class APPNPPropagate(Module):
    """APPNP's personalized-PageRank propagation (no parameters).

    ``Z_{k+1} = (1 - alpha) P Z_k + alpha Z_0`` for ``k_hops`` steps.
    """

    def __init__(self, k_hops: int, alpha: float) -> None:
        super().__init__()
        if k_hops < 1:
            raise ShapeError(f"k_hops must be >= 1, got {k_hops}")
        if not 0.0 < alpha < 1.0:
            raise ShapeError(f"alpha must be in (0, 1), got {alpha}")
        self.k_hops = k_hops
        self.alpha = alpha

    def forward(self, operator, h: Tensor) -> Tensor:
        h = as_tensor(h)
        z = h
        for _ in range(self.k_hops):
            z = (Tensor(1.0 - self.alpha) * propagate(operator, z)
                 + Tensor(self.alpha) * h)
        return z

    def __call__(self, operator, h: Tensor) -> Tensor:
        return self.forward(operator, h)


class MLPBlock(Module):
    """A stack of Linear+ReLU layers (final layer linear)."""

    def __init__(self, dims: list[int], rng: np.random.Generator) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ShapeError(f"MLPBlock needs >= 2 dims, got {dims}")
        self.depth = len(dims) - 1
        for i in range(self.depth):
            setattr(self, f"layer_{i}", Linear(dims[i], dims[i + 1], rng))

    def forward(self, x: Tensor) -> Tensor:
        h = as_tensor(x)
        for i in range(self.depth):
            h = getattr(self, f"layer_{i}")(h)
            if i < self.depth - 1:
                h = relu(h)
        return h

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)
