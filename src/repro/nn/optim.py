"""Gradient-descent optimizers (SGD with momentum, Adam).

Optimizers read each parameter's accumulated ``.grad`` and update
``.data`` in place; this happens strictly between graph constructions,
which keeps the autodiff engine's immutability contract.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.tensor.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ConfigError(f"weight decay must be >= 0, got {weight_decay}")
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigError("optimizer received an empty parameter list")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def _effective_grad(self, param: Parameter) -> np.ndarray | None:
        if param.grad is None:
            return None
        g = param.grad.data
        if self.weight_decay:
            g = g + self.weight_decay * param.data
        return g

    def step(self) -> None:
        raise NotImplementedError

    def apply_grads(self, grads: Sequence[Tensor | None]) -> None:
        """Set ``.grad`` from an external list (functional-grad workflows)."""
        if len(grads) != len(self.parameters):
            raise ConfigError(
                f"got {len(grads)} gradients for {len(self.parameters)} parameters")
        for param, g in zip(self.parameters, grads):
            param.grad = None if g is None else g.detach()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: Sequence[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            g = self._effective_grad(param)
            if g is None:
                continue
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + g
                self._velocity[id(param)] = velocity
                g = velocity
            param.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._first: dict[int, np.ndarray] = {}
        self._second: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            g = self._effective_grad(param)
            if g is None:
                continue
            m = self._first.get(id(param))
            v = self._second.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * g
            v = self.beta2 * v + (1.0 - self.beta2) * (g * g)
            self._first[id(param)] = m
            self._second[id(param)] = v
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            param.data -= self.lr * update
