"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["accuracy", "macro_f1", "confusion_matrix", "predictions_from_logits"]


def predictions_from_logits(logits: np.ndarray) -> np.ndarray:
    """Argmax class predictions from a ``(n, C)`` score matrix."""
    scores = np.asarray(logits)
    if scores.ndim != 2:
        raise ShapeError(f"expected 2-D logits, got shape {scores.shape}")
    return scores.argmax(axis=1)


def accuracy(logits_or_preds: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions; accepts logits or class indices."""
    arr = np.asarray(logits_or_preds)
    preds = predictions_from_logits(arr) if arr.ndim == 2 else arr
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ShapeError(f"predictions {preds.shape} vs labels {labels.shape}")
    if labels.size == 0:
        raise ShapeError("cannot compute accuracy of an empty label set")
    return float((preds == labels).mean())


def confusion_matrix(preds: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``(C, C)`` matrix with rows = true class, columns = predicted."""
    preds = np.asarray(preds, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if preds.shape != labels.shape:
        raise ShapeError(f"predictions {preds.shape} vs labels {labels.shape}")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, preds), 1)
    return matrix


def macro_f1(logits_or_preds: np.ndarray, labels: np.ndarray,
             num_classes: int | None = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    arr = np.asarray(logits_or_preds)
    preds = predictions_from_logits(arr) if arr.ndim == 2 else arr
    labels = np.asarray(labels)
    if num_classes is None:
        num_classes = int(max(preds.max(), labels.max())) + 1
    matrix = confusion_matrix(preds, labels, num_classes)
    true_pos = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    precision = np.divide(true_pos, predicted, out=np.zeros_like(true_pos),
                          where=predicted > 0)
    recall = np.divide(true_pos, actual, out=np.zeros_like(true_pos),
                       where=actual > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros_like(true_pos),
                   where=denom > 0)
    present = actual > 0
    if not present.any():
        raise ShapeError("no classes present in labels")
    return float(f1[present].mean())
