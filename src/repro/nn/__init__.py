"""Neural substrate: modules, GNN models, optimizers, trainer, metrics.

Importing this package registers every architecture in
:data:`repro.registry.MODELS`; :func:`~repro.nn.models.make_model`
resolves them by name, and :mod:`repro.api` builds on that.
"""

from repro.nn.module import Module, Parameter
from repro.nn.init import glorot_uniform, glorot_normal, zeros, uniform
from repro.nn.layers import (
    propagate,
    Linear,
    GCNConv,
    SAGEConv,
    ChebConv,
    APPNPPropagate,
    MLPBlock,
)
from repro.nn.models import (
    GNNModel,
    SGC,
    GCN,
    GraphSAGE,
    APPNP,
    Cheby,
    MLP,
    make_model,
)
from repro.nn.optim import Optimizer, SGD, Adam
from repro.nn.trainer import (
    TrainConfig,
    TrainResult,
    train_node_classifier,
    evaluate_logits,
    evaluate_accuracy,
)
from repro.nn.metrics import (accuracy, macro_f1, confusion_matrix,
                              predictions_from_logits)


def __getattr__(name: str):
    if name == "MODEL_REGISTRY":  # live view — see repro.nn.models
        from repro.nn import models
        return models.MODEL_REGISTRY
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Module", "Parameter",
    "glorot_uniform", "glorot_normal", "zeros", "uniform",
    "propagate", "Linear", "GCNConv", "SAGEConv", "ChebConv",
    "APPNPPropagate", "MLPBlock",
    "GNNModel", "SGC", "GCN", "GraphSAGE", "APPNP", "Cheby", "MLP",
    "make_model", "MODEL_REGISTRY",
    "Optimizer", "SGD", "Adam",
    "TrainConfig", "TrainResult", "train_node_classifier",
    "evaluate_logits", "evaluate_accuracy",
    "accuracy", "macro_f1", "confusion_matrix", "predictions_from_logits",
]
