"""Minimal module system: parameter registration and state management.

Mirrors the small subset of ``torch.nn.Module`` the paper's training loops
need: recursive parameter collection, train/eval mode, and state dicts for
checkpointing the best validation model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import ArtifactError, ShapeError
from repro.tensor.tensor import Tensor
from repro.utils.artifacts import normalize_npz_path

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is always a trainable leaf."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` attributes in
    ``__init__``; registration happens automatically through
    ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children (depth-first)."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter data in place (shapes must match)."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ShapeError(
                    f"parameter {name}: state shape {value.shape} != {param.shape}")
            param.data[...] = value

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    def save_weights(self, path: str | Path) -> None:
        """Persist :meth:`state_dict` as an ``.npz`` archive."""
        np.savez_compressed(normalize_npz_path(path), **self.state_dict())

    def load_weights(self, path: str | Path) -> None:
        """Load weights saved by :meth:`save_weights` (strict shape match)."""
        target = normalize_npz_path(path)
        if not target.exists():
            raise ArtifactError(f"no weight archive at {target}")
        with np.load(target) as archive:
            self.load_state_dict({name: archive[name] for name in archive.files})
