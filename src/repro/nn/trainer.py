"""Full-graph node-classification training loop with early stopping.

One trainer serves every deployment setting of the paper: the caller
supplies the propagation operator (original or synthetic graph) and an
optional validation callback — e.g. accuracy of validation nodes attached
to whichever graph the model will be deployed on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.nn.metrics import accuracy
from repro.nn.models import GNNModel
from repro.nn.optim import Adam
from repro.tensor.functional import cross_entropy
from repro.tensor.tensor import Tensor, gather_rows, no_grad

__all__ = ["TrainConfig", "TrainResult", "train_node_classifier", "evaluate_logits"]


@dataclass
class TrainConfig:
    """Hyper-parameters of the training loop."""

    epochs: int = 200
    lr: float = 0.01
    weight_decay: float = 5e-4
    patience: int = 30
    eval_every: int = 1

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigError(f"epochs must be positive, got {self.epochs}")
        if self.patience <= 0:
            raise ConfigError(f"patience must be positive, got {self.patience}")
        if self.eval_every <= 0:
            raise ConfigError(f"eval_every must be positive, got {self.eval_every}")


@dataclass
class TrainResult:
    """Outcome of :func:`train_node_classifier`."""

    best_score: float
    best_epoch: int
    epochs_run: int
    losses: list[float] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)


def train_node_classifier(
    model: GNNModel,
    operator,
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    validator: Callable[[GNNModel], float] | None = None,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Fit ``model`` on one graph with cross-entropy over ``train_idx``.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.models.GNNModel`.
    operator:
        Normalized adjacency of the training graph (sparse or dense).
    features / labels:
        Node features and integer labels of the training graph.
    train_idx:
        Indices of supervised nodes (the paper's labeled set).
    validator:
        Optional callback scoring the current model (higher is better);
        drives early stopping and best-weight restoration.  When omitted,
        training-loss improvement is used instead.
    """
    config = config or TrainConfig()
    train_idx = np.asarray(train_idx, dtype=np.int64)
    if train_idx.size == 0:
        raise ConfigError("train_idx is empty")
    x = Tensor(np.asarray(features, dtype=np.float64))
    optimizer = Adam(model.parameters(), lr=config.lr,
                     weight_decay=config.weight_decay)

    best_score = -np.inf
    best_epoch = -1
    best_state: dict[str, np.ndarray] | None = None
    stale = 0
    result = TrainResult(best_score=-np.inf, best_epoch=-1, epochs_run=0)

    for epoch in range(config.epochs):
        model.train()
        optimizer.zero_grad()
        logits = model(operator, x)
        loss = cross_entropy(gather_rows(logits, train_idx), labels[train_idx])
        loss.backward()
        optimizer.step()
        loss_value = loss.item()
        result.losses.append(loss_value)
        result.epochs_run = epoch + 1

        if (epoch + 1) % config.eval_every:
            continue
        if validator is not None:
            model.eval()
            score = float(validator(model))
        else:
            score = -loss_value
        result.scores.append(score)
        if score > best_score:
            best_score = score
            best_epoch = epoch
            best_state = model.state_dict()
            stale = 0
        else:
            stale += 1
            if stale >= config.patience:
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    result.best_score = best_score
    result.best_epoch = best_epoch
    return result


def evaluate_logits(model: GNNModel, operator, features: np.ndarray) -> np.ndarray:
    """Inference-mode logits as a plain numpy array."""
    model.eval()
    with no_grad():
        logits = model(operator, Tensor(np.asarray(features, dtype=np.float64)))
    return logits.data


def evaluate_accuracy(model: GNNModel, operator, features: np.ndarray,
                      labels: np.ndarray, indices: np.ndarray | None = None) -> float:
    """Accuracy of ``model`` on ``indices`` (all nodes when omitted)."""
    logits = evaluate_logits(model, operator, features)
    labels = np.asarray(labels)
    if indices is not None:
        idx = np.asarray(indices, dtype=np.int64)
        return accuracy(logits[idx], labels[idx])
    return accuracy(logits, labels)
