"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["glorot_uniform", "glorot_normal", "zeros", "uniform"]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    if len(shape) < 2:
        raise ShapeError(f"glorot initialization needs >= 2 dims, got {shape}")
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    if len(shape) < 2:
        raise ShapeError(f"glorot initialization needs >= 2 dims, got {shape}")
    fan_in, fan_out = shape[0], shape[1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Plain uniform initialization."""
    return rng.uniform(low, high, size=shape)
