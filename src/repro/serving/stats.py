"""Per-request latency accounting for the serving runtime.

Each served request contributes one :class:`RequestRecord` with its queue
wait (enqueue → dequeue) and compute time (its micro-batch's attach +
forward, shared by every request in the batch).  :class:`LatencyAccounting`
aggregates them into the percentile summary the ROADMAP's serving story is
measured by — p50/p95/p99 end-to-end latency, the wait/compute split, and
throughput.  Quantiles come from the shared
:func:`repro.inference.benchmark.latency_percentiles` helper so every
latency report in the repo interpolates the same way.

This module predates :mod:`repro.telemetry` and stays the exact-sample
view (true percentiles over a sliding window); the telemetry histograms
(``repro_stage_latency_seconds``, fixed buckets) are the scrapeable
approximation of the same latencies.  The runtime feeds both.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.inference.benchmark import latency_percentiles


def _json_safe(value: float) -> float | None:
    """NaN/inf become ``None`` so the dict stays strict-JSON clean."""
    return value if math.isfinite(value) else None

# Percentiles are computed over a sliding window of the most recent
# requests; lifetime counters stay exact.  The bound keeps a long-lived
# runtime's accounting memory (and each stats() pass) constant.
DEFAULT_WINDOW = 65536

__all__ = ["RequestRecord", "RuntimeStats", "LatencyAccounting"]


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one request through the runtime."""

    num_nodes: int
    queue_seconds: float
    compute_seconds: float
    batch_size: int  # requests coalesced into its micro-batch

    @property
    def latency_seconds(self) -> float:
        return self.queue_seconds + self.compute_seconds


@dataclass(frozen=True)
class RuntimeStats:
    """Aggregated serving statistics over a runtime's lifetime (so far).

    Counters (``requests``/``nodes``/``batches``/``rejected``) are exact
    lifetime totals; latency means and percentiles summarize the most
    recent :data:`DEFAULT_WINDOW` requests.
    """

    requests: int
    nodes: int
    batches: int
    rejected: int
    failed: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    queue_wait_mean: float
    compute_mean: float
    mean_batch_requests: float
    wall_seconds: float

    @property
    def throughput_rps(self) -> float:
        """Requests per second over the observed wall-clock window."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    @property
    def throughput_nodes_per_s(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.nodes / self.wall_seconds

    def as_dict(self) -> dict:
        """JSON-ready view (used by ``repro bench`` and ``serve-online``).

        Latency fields of an idle runtime (no completed requests yet) are
        NaN in the dataclass and serialize as ``None`` here — strict JSON
        has no NaN, and ``0.0`` would read as a real measurement.
        """
        return {
            "requests": self.requests,
            "nodes": self.nodes,
            "batches": self.batches,
            "rejected": self.rejected,
            "failed": self.failed,
            "latency_p50_ms": _json_safe(self.latency_p50 * 1e3),
            "latency_p95_ms": _json_safe(self.latency_p95 * 1e3),
            "latency_p99_ms": _json_safe(self.latency_p99 * 1e3),
            "latency_mean_ms": _json_safe(self.latency_mean * 1e3),
            "queue_wait_mean_ms": _json_safe(self.queue_wait_mean * 1e3),
            "compute_mean_ms": _json_safe(self.compute_mean * 1e3),
            "mean_batch_requests": self.mean_batch_requests,
            "throughput_rps": self.throughput_rps,
            "throughput_nodes_per_s": self.throughput_nodes_per_s,
        }


@dataclass
class LatencyAccounting:
    """Collects :class:`RequestRecord`s and summarizes them on demand.

    Written from both the serving loop (batches) and producer threads
    (rejections), so every mutation and the summary snapshot take the
    internal lock.  Only the last ``window`` records are retained for
    percentile/mean computation — the request/node/batch/rejection
    counters cover the whole lifetime regardless.
    """

    window: int = DEFAULT_WINDOW
    rejected: int = 0
    failed: int = 0
    batches: int = 0
    requests_total: int = 0
    nodes_total: int = 0
    _first_start: float | None = None
    _last_end: float | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        self.records: deque[RequestRecord] = deque(maxlen=self.window)

    def observe_batch(self, records: list[RequestRecord], started: float,
                      finished: float) -> None:
        with self._lock:
            self.records.extend(records)
            self.batches += 1
            self.requests_total += len(records)
            self.nodes_total += sum(r.num_nodes for r in records)
            if self._first_start is None or started < self._first_start:
                self._first_start = started
            if self._last_end is None or finished > self._last_end:
                self._last_end = finished

    def observe_rejection(self, count: int = 1) -> None:
        with self._lock:
            self.rejected += count

    def observe_failure(self, count: int = 1) -> None:
        """Requests admitted but whose micro-batch raised while serving."""
        with self._lock:
            self.failed += count

    def summary(self) -> RuntimeStats:
        with self._lock:
            records = list(self.records)
            rejected = self.rejected
            failed = self.failed
            batches = self.batches
            requests_total = self.requests_total
            nodes_total = self.nodes_total
            first_start = self._first_start
            last_end = self._last_end
        if not records:
            # An idle or fully-shedding runtime must still report — the
            # rejection/failure counts are exactly what an overloaded
            # operator reads.  Latency fields are NaN, not 0.0: a zero
            # would masquerade as a real (excellent) measurement when the
            # runtime is polled before its first completed request.
            tail = latency_percentiles([], empty=math.nan)
            return RuntimeStats(
                requests=requests_total, nodes=nodes_total, batches=batches,
                rejected=rejected, failed=failed,
                latency_p50=tail["p50"], latency_p95=tail["p95"],
                latency_p99=tail["p99"],
                latency_mean=math.nan, queue_wait_mean=math.nan,
                compute_mean=math.nan,
                mean_batch_requests=0.0, wall_seconds=0.0)
        latencies = np.asarray([r.latency_seconds for r in records])
        waits = np.asarray([r.queue_seconds for r in records])
        computes = np.asarray([r.compute_seconds for r in records])
        tail = latency_percentiles(latencies)
        wall = 0.0
        if first_start is not None and last_end is not None:
            wall = max(last_end - first_start, 0.0)
        return RuntimeStats(
            requests=requests_total,
            nodes=nodes_total,
            batches=batches,
            rejected=rejected,
            failed=failed,
            latency_p50=tail["p50"],
            latency_p95=tail["p95"],
            latency_p99=tail["p99"],
            latency_mean=float(latencies.mean()),
            queue_wait_mean=float(waits.mean()),
            compute_mean=float(computes.mean()),
            mean_batch_requests=requests_total / max(batches, 1),
            wall_seconds=wall)
