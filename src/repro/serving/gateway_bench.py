"""The network-gateway benchmark behind ``repro bench-gateway``.

Measures what the gateway tier adds — and what it must not cost — on a
simulated dataset, writing the machine-readable ``BENCH_gateway.json``:

- **socket throughput** — pipelined requests/s through the framed TCP
  protocol (binary float64 payloads) versus the in-process fleet on the
  same replica count and request stream; the gate demands the network
  tier keeps at least ``min_socket_ratio`` (default 0.7x) of the
  in-process rate;
- **shed accounting** — a burst against a deliberately tiny in-flight
  cap with the watermark policy: every offered request must come back as
  exactly one ``ok`` or one retriable ``shed`` (``served + shed ==
  offered``), with retry-after hints on the sheds;
- **autoscale reaction** — a :class:`~repro.serving.workload.RampWorkload`
  arrival schedule against a 1-replica fleet with the ``queue-depth``
  scale policy: the replica count must grow *before* the ramp peaks,
  shrink back after the traffic drains, and no admitted request may be
  lost across the whole scale-up/scale-down cycle;
- **parity** — logits served over the socket (both JSON and binary
  encodings) are bitwise equal to direct ``ServingFleet.submit_batch``
  for the same requests, over the graph/node/frozen paths;
- **telemetry overhead** — the same pipelined stream with per-request
  tracing + stage histograms on versus fully off: the gate demands the
  instrumented gateway keeps at least ``min_telemetry_ratio`` (default
  0.97x) of the uninstrumented rate, with bitwise-equal logits on both
  sides and a slowest-trace stage breakdown covering every canonical
  gateway stage.

Like the fleet benchmark, throughput ratios are measured in one process
run on one host, same artifact, same requests — the comparison is
transport overhead, nothing else.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.errors import ServingError
from repro.serving.embeddings import ServeTask
from repro.serving.fleet import ServingFleet
from repro.serving.fleet_bench import _measure_throughput, usable_cores
from repro.serving.gateway import (QueueDepthScale, ServingGateway,
                                   WatermarkShed)
from repro.serving.protocol import GatewayClient
from repro.serving.workload import RampWorkload, split_requests
from repro.telemetry import GATEWAY_STAGES
from repro.utils.reports import write_benchmark_json

__all__ = ["GATEWAY_BENCH_SCHEMA_VERSION", "run_gateway_benchmark",
           "check_gateway_benchmark_schema", "gate_gateway_benchmark",
           "write_benchmark_json"]

GATEWAY_BENCH_SCHEMA_VERSION = 2


def _open_gateway(path: Path, replicas: int, *, router: str,
                  batch_mode: str, telemetry: bool = True,
                  **gateway_options) -> ServingGateway:
    fleet = ServingFleet(path, replicas, router=router,
                         batch_mode=batch_mode, telemetry=telemetry)
    try:
        gateway = ServingGateway(fleet, owns_fleet=True,
                                 telemetry=telemetry, **gateway_options)
        gateway.start()
    except Exception:
        fleet.close(drain=False)
        raise
    return gateway


def _measure_socket_throughput(path: Path, replicas: int, requests, *,
                               router: str, batch_mode: str) -> dict:
    """Pipelined req/s over the framed socket (binary payloads)."""
    gateway = _open_gateway(path, replicas, router=router,
                            batch_mode=batch_mode,
                            max_inflight=4 * len(requests) + 16)
    try:
        with GatewayClient(*gateway.address, encoding="binary") as client:
            for request in requests[:2 * replicas]:  # warm off the clock
                client.serve_batch(request)
            gateway.fleet.reset_latencies()
            started = time.perf_counter()
            count = len([client.submit(ServeTask(batch=request))
                         for request in requests])
            replies = client.drain(count)
            wall = time.perf_counter() - started
            served = sum(reply.ok for reply in replies.values())
            stats = gateway.stats()
    finally:
        gateway.close()
    return {
        "replicas": replicas,
        "requests": len(requests),
        "served": served,
        "wall_s": wall,
        "requests_per_s": served / wall if wall > 0 else 0.0,
        "latency_p50_ms": stats["fleet"]["latency_p50_ms"],
        "latency_p95_ms": stats["fleet"]["latency_p95_ms"],
        "latency_p99_ms": stats["fleet"]["latency_p99_ms"],
    }


def _measure_shedding(path: Path, requests, *, router: str,
                      batch_mode: str, max_inflight: int = 8,
                      rounds: int = 3) -> dict:
    """Burst past a tiny in-flight cap; audit the shed accounting."""
    gateway = _open_gateway(
        path, 1, router=router, batch_mode=batch_mode,
        shed_policy=WatermarkShed(high=0.5, low=0.25, retry_after_ms=25.0),
        max_inflight=max_inflight)
    try:
        ok = shed = errors = 0
        hints = 0
        with GatewayClient(*gateway.address, encoding="binary") as client:
            for _ in range(rounds):
                count = len([client.submit(ServeTask(batch=r))
                             for r in requests])
                for reply in client.drain(count).values():
                    if reply.status == "ok":
                        ok += 1
                    elif reply.status == "shed":
                        shed += 1
                        hints += reply.retry_after_ms is not None
                    else:
                        errors += 1
        stats = gateway.stats()
    finally:
        gateway.close()
    return {
        "offered": stats["offered"],
        "served": stats["served"],
        "shed": stats["shed"],
        "errors": stats["errors"],
        "max_inflight": max_inflight,
        "replies_ok": ok,
        "replies_shed": shed,
        "replies_error": errors,
        "shed_with_retry_hint": hints,
        "accounting_exact": (
            stats["offered"] == stats["served"] + stats["shed"]
            + stats["errors"] and stats["inflight"] == 0
            and ok == stats["served"] and shed == stats["shed"]),
    }


def _measure_autoscale(path: Path, requests, *, router: str,
                       batch_mode: str, seed: int,
                       start_rate: float = 100.0, end_rate: float = 1200.0,
                       duration_s: float = 1.5,
                       max_replicas: int = 2) -> dict:
    """Ramp arrivals against 1 replica; watch the autoscaler react."""
    workload = RampWorkload(start_rate=start_rate, end_rate=end_rate,
                            duration_s=duration_s)
    arrivals = workload.arrivals(len(requests), rng=seed)
    gateway = _open_gateway(
        path, 1, router=router, batch_mode=batch_mode,
        max_inflight=4 * len(requests) + 16,
        scale_policy=QueueDepthScale(min_replicas=1,
                                     max_replicas=max_replicas,
                                     up_backlog=2.0, down_backlog=0.5),
        autoscale_interval=0.05, scale_cooldown=0.3)
    try:
        with GatewayClient(*gateway.address, encoding="binary") as client:
            client.serve_batch(requests[0])  # warm the single replica
            ramp_started = time.monotonic()
            offset = ramp_started - gateway.started_at
            for arrival, request in zip(arrivals, requests):
                wait = arrival - (time.monotonic() - ramp_started)
                if wait > 0:
                    time.sleep(wait)
                client.submit(ServeTask(batch=request))
            replies = client.drain(len(requests))
            ok = sum(reply.ok for reply in replies.values())
            shed = sum(reply.status == "shed" for reply in replies.values())
            peak = max((event["to"] for event in gateway.scale_events),
                       default=1)
            # traffic is gone: the policy must walk the fleet back down
            deadline = time.monotonic() + 30.0
            while (gateway.fleet.num_replicas > 1
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            scaled_down = gateway.fleet.num_replicas == 1
            probe_ok = client.serve_batch(requests[0]).ok
        events = [{**event, "t_s": event["t_s"] - offset}
                  for event in gateway.scale_events]
    finally:
        gateway.close()
    up_times = [event["t_s"] for event in events if event["action"] == "up"]
    return {
        "requests": len(requests),
        "served": ok,
        "shed": shed,
        "lost": len(requests) - ok - shed,
        "ramp": {"start_rate": start_rate, "end_rate": end_rate,
                 "duration_s": duration_s,
                 "peak_s": float(arrivals[-1])},
        "scaled_up": bool(up_times),
        "scale_up_reaction_s": min(up_times) if up_times else None,
        "peak_replicas": peak,
        "max_replicas": max_replicas,
        "scaled_down": scaled_down,
        "post_scale_down_probe_ok": bool(probe_ok),
        "events": events,
    }


def _measure_telemetry_overhead(path: Path, replicas: int, requests, *,
                                router: str, batch_mode: str,
                                repeats: int = 2) -> dict:
    """Pipelined rate with telemetry on vs fully off (best of ``repeats``).

    Both sides replay the identical stream through fresh gateways on the
    same artifact; a probe request's logits are kept from each side for
    the bitwise-parity check (telemetry must be pure observation), and
    the instrumented side's slowest retained trace must break down into
    every canonical gateway stage.
    """
    rates: dict[bool, float] = {}
    probes: dict[bool, np.ndarray | None] = {}
    slow_stages: list[str] = []
    for telemetry in (True, False):
        best = 0.0
        gateway = _open_gateway(path, replicas, router=router,
                                batch_mode=batch_mode, telemetry=telemetry,
                                max_inflight=4 * len(requests) + 16)
        try:
            with GatewayClient(*gateway.address,
                               encoding="binary") as client:
                for request in requests[:2 * replicas]:  # warm off the clock
                    client.serve_batch(request)
                probe = client.serve_batch(requests[0])
                probes[telemetry] = probe.logits if probe.ok else None
                for _ in range(repeats):
                    gateway.fleet.reset_latencies()
                    started = time.perf_counter()
                    count = len([client.submit(ServeTask(batch=r))
                                 for r in requests])
                    replies = client.drain(count)
                    wall = time.perf_counter() - started
                    served = sum(reply.ok for reply in replies.values())
                    best = max(best, served / wall if wall > 0 else 0.0)
                if telemetry:
                    slowest = gateway.slowest(1)
                    slow_stages = (sorted(slowest[0].stages())
                                   if slowest else [])
        finally:
            gateway.close()
        rates[telemetry] = best
    ratio = (rates[True] / rates[False] if rates[False] > 0 else 0.0)
    parity = (probes[True] is not None and probes[False] is not None
              and np.array_equal(probes[True], probes[False]))
    return {
        "replicas": replicas,
        "requests": len(requests),
        "repeats": repeats,
        "instrumented_rps": rates[True],
        "uninstrumented_rps": rates[False],
        "overhead_ratio": ratio,
        "parity_bitwise_equal": bool(parity),
        "slowest_trace_stages": slow_stages,
        "slowest_has_all_stages": set(GATEWAY_STAGES) <= set(slow_stages),
    }


def _check_parity(path: Path, requests, *, router: str,
                  batch_mode: str) -> dict:
    """Socket replies vs direct fleet futures, bitwise, per path."""
    gateway = _open_gateway(path, 1, router=router, batch_mode=batch_mode,
                            max_inflight=64)
    fleet = gateway.fleet
    paths: dict[str, bool | None] = {}
    try:
        clients = {encoding: GatewayClient(*gateway.address,
                                           encoding=encoding)
                   for encoding in ("json", "binary")}
        try:
            for mode in ("graph", "node"):
                equal = True
                for encoding, client in clients.items():
                    for request in requests:
                        direct = fleet.submit_batch(
                            request, mode=mode).result(timeout=120.0)
                        reply = client.serve_batch(request, mode=mode)
                        equal &= (reply.ok
                                  and np.array_equal(direct, reply.logits))
                paths[mode] = equal
            try:
                direct = fleet.submit_batch(
                    requests[0], frozen=True).result(timeout=120.0)
            except ServingError:
                paths["frozen"] = None  # deployment has no frozen path
            else:
                reply = clients["binary"].serve_batch(requests[0],
                                                      frozen=True)
                paths["frozen"] = (reply.ok
                                   and np.array_equal(direct, reply.logits))
        finally:
            for client in clients.values():
                client.close()
    finally:
        gateway.close()
    checked = [value for value in paths.values() if value is not None]
    return {"paths": paths,
            "gateway_bitwise_equal": bool(checked) and all(checked)}


def run_gateway_benchmark(dataset: str = "pubmed-sim", *,
                          method: str = "mcond", budget: int | None = None,
                          seed: int = 0, scale: float = 1.0,
                          profile: str | None = "quick",
                          deployment: str = "original",
                          replicas: int = 2, num_requests: int = 48,
                          nodes_per_request: int = 8,
                          ramp_requests: int = 200,
                          router: str = "round-robin",
                          batch_mode: str = "node",
                          artifact_path: str | Path | None = None) -> dict:
    """Run the gateway benchmark end to end; returns the JSON-ready dict."""
    from repro import api  # local import: serving stays facade-independent
    from repro.experiments import dataset_budgets

    if budget is None:
        budget = dataset_budgets(dataset)[-1]
    if replicas < 1:
        raise ServingError(f"replicas must be positive, got {replicas}")
    bundle = api.deploy(dataset, method, budget, seed=seed, scale=scale,
                        profile=profile, deployment=deployment)
    temp_dir = None
    if artifact_path is None:
        import tempfile
        temp_dir = tempfile.mkdtemp(prefix="repro-gateway-")
        artifact_path = Path(temp_dir) / "gateway.npz"
    try:
        path = bundle.save(artifact_path, layout="mmap")
        requests = split_requests(api.evaluation_batch(bundle), num_requests,
                                  nodes_per_request)
        ramp = split_requests(api.evaluation_batch(bundle), ramp_requests,
                              nodes_per_request)

        in_process = _measure_throughput(path, replicas, requests,
                                         router=router,
                                         batch_mode=batch_mode)
        socket = _measure_socket_throughput(path, replicas, requests,
                                            router=router,
                                            batch_mode=batch_mode)
        ratio = (socket["requests_per_s"] / in_process["requests_per_s"]
                 if in_process["requests_per_s"] > 0 else 0.0)
        return {
            "schema_version": GATEWAY_BENCH_SCHEMA_VERSION,
            "kind": "gateway-benchmark",
            "dataset": dataset,
            "method": method,
            "budget": budget,
            "seed": seed,
            "scale": scale,
            "deployment": deployment,
            "batch_mode": batch_mode,
            "router": router,
            "replicas": replicas,
            "num_requests": num_requests,
            "nodes_per_request": nodes_per_request,
            "usable_cores": usable_cores(),
            "artifact": {"layout": "mmap",
                         "bytes": int(path.stat().st_size)},
            "throughput": {"in_process": in_process, "socket": socket,
                           "socket_ratio": ratio},
            "shedding": _measure_shedding(path, requests, router=router,
                                          batch_mode=batch_mode),
            "autoscale": _measure_autoscale(path, ramp, router=router,
                                            batch_mode=batch_mode,
                                            seed=seed),
            "parity": _check_parity(path, requests[:3], router=router,
                                    batch_mode=batch_mode),
            "telemetry": _measure_telemetry_overhead(
                path, replicas, requests, router=router,
                batch_mode=batch_mode),
        }
    finally:
        if temp_dir is not None:
            import shutil
            shutil.rmtree(temp_dir, ignore_errors=True)


def check_gateway_benchmark_schema(result: dict) -> None:
    """Validate the benchmark dict's shape; raises ServingError on drift."""
    top = ("schema_version", "kind", "dataset", "method", "budget", "seed",
           "scale", "deployment", "batch_mode", "router", "replicas",
           "num_requests", "nodes_per_request", "usable_cores", "artifact",
           "throughput", "shedding", "autoscale", "parity", "telemetry")
    missing = [key for key in top if key not in result]
    if missing:
        raise ServingError(f"gateway benchmark misses keys: {missing}")
    if result["kind"] != "gateway-benchmark":
        raise ServingError(f"unexpected benchmark kind {result['kind']!r}")
    throughput = result["throughput"]
    for side in ("in_process", "socket"):
        if side not in throughput:
            raise ServingError(f"throughput misses {side!r}")
        for key in ("replicas", "requests", "served", "wall_s",
                    "requests_per_s", "latency_p50_ms", "latency_p95_ms"):
            if key not in throughput[side]:
                raise ServingError(f"throughput[{side}] misses {key!r}")
    if "socket_ratio" not in throughput:
        raise ServingError("throughput misses 'socket_ratio'")
    for key in ("latency_p99_ms",):
        if key not in throughput["socket"]:
            raise ServingError(f"throughput[socket] misses {key!r}")
    for key in ("offered", "served", "shed", "errors", "max_inflight",
                "replies_ok", "replies_shed", "replies_error",
                "shed_with_retry_hint", "accounting_exact"):
        if key not in result["shedding"]:
            raise ServingError(f"shedding misses {key!r}")
    for key in ("requests", "served", "shed", "lost", "ramp", "scaled_up",
                "scale_up_reaction_s", "peak_replicas", "max_replicas",
                "scaled_down", "post_scale_down_probe_ok", "events"):
        if key not in result["autoscale"]:
            raise ServingError(f"autoscale misses {key!r}")
    if "peak_s" not in result["autoscale"]["ramp"]:
        raise ServingError("autoscale ramp misses 'peak_s'")
    for key in ("paths", "gateway_bitwise_equal"):
        if key not in result["parity"]:
            raise ServingError(f"parity misses {key!r}")
    for key in ("instrumented_rps", "uninstrumented_rps", "overhead_ratio",
                "parity_bitwise_equal", "slowest_trace_stages",
                "slowest_has_all_stages"):
        if key not in result["telemetry"]:
            raise ServingError(f"telemetry misses {key!r}")


def gate_gateway_benchmark(result: dict, *,
                           min_socket_ratio: float = 0.7,
                           min_telemetry_ratio: float = 0.97) -> list[str]:
    """Perf-gate checks; returns failure messages (empty = gate passed)."""
    failures = []
    throughput = result["throughput"]
    if throughput["socket_ratio"] < min_socket_ratio:
        failures.append(
            f"socket throughput ({throughput['socket']['requests_per_s']:.0f}"
            f" req/s) is below {min_socket_ratio:.0%} of in-process "
            f"({throughput['in_process']['requests_per_s']:.0f} req/s)")
    shedding = result["shedding"]
    if shedding["shed"] <= 0:
        failures.append("the shed phase never shed a request "
                        "(the watermark policy did not engage)")
    if not shedding["accounting_exact"]:
        failures.append(
            f"shed accounting is not exact: offered={shedding['offered']} "
            f"!= served={shedding['served']} + shed={shedding['shed']} "
            f"+ errors={shedding['errors']}")
    if shedding["shed_with_retry_hint"] != shedding["replies_shed"]:
        failures.append("some shed replies carried no retry-after hint")
    autoscale = result["autoscale"]
    if autoscale["lost"] > 0:
        failures.append(
            f"autoscale cycle lost {autoscale['lost']} requests "
            "(every admitted request must be answered)")
    if not autoscale["scaled_up"]:
        failures.append("the autoscaler never scaled up under the ramp")
    elif autoscale["scale_up_reaction_s"] >= autoscale["ramp"]["peak_s"]:
        failures.append(
            f"autoscaler reacted at t={autoscale['scale_up_reaction_s']:.2f}s"
            f", after the ramp peak at t={autoscale['ramp']['peak_s']:.2f}s")
    if not autoscale["scaled_down"]:
        failures.append("the fleet never scaled back down after the ramp")
    if not autoscale["post_scale_down_probe_ok"]:
        failures.append("the post-scale-down probe request failed")
    if not result["parity"]["gateway_bitwise_equal"]:
        failures.append("gateway responses are not bitwise equal to direct "
                        "fleet serving")
    telemetry = result["telemetry"]
    if telemetry["overhead_ratio"] < min_telemetry_ratio:
        failures.append(
            f"instrumented gateway ({telemetry['instrumented_rps']:.0f} "
            f"req/s) is below {min_telemetry_ratio:.0%} of the "
            f"uninstrumented rate "
            f"({telemetry['uninstrumented_rps']:.0f} req/s)")
    if not telemetry["parity_bitwise_equal"]:
        failures.append("telemetry changed the served logits "
                        "(instrumented vs uninstrumented probes differ)")
    if not telemetry["slowest_has_all_stages"]:
        failures.append(
            f"the slowest trace covers stages "
            f"{telemetry['slowest_trace_stages']} — missing some of "
            f"{sorted(GATEWAY_STAGES)}")
    return failures
