"""The standardized serving-latency benchmark behind ``repro bench``.

Measures, on a simulated dataset, the three serving paths over identical
micro-batches:

- ``uncached``  — the naive engine path (re-normalizes the full augmented
  adjacency every batch);
- ``cached``    — the :class:`~repro.serving.prepared.PreparedDeployment`
  path (bitwise-identical logits, request-invariant work hoisted out);
- ``frozen``    — the cached-propagation approximation (SGC only).

plus a closed-loop :class:`~repro.serving.runtime.ServingRuntime` replay
for end-to-end throughput/latency accounting.  The result is a
machine-readable dict (schema below, asserted by the test suite) written
to ``BENCH_serving.json`` — the repo's serving-performance trajectory is
the history of this file across commits.

Per-batch latency is the **best of ``repeats`` runs** (discarding OS
scheduler noise), and the reported mean averages those minima across
batches; percentiles come from the shared quantile helper.

Since schema version 2 the result also carries a **precision axis**
(``result["precision"]``): the frozen path of an original-graph
deployment re-measured under every numeric serving mode (float64 /
float32 / int8 — see ``docs/precision.md``), reporting latency,
throughput, artifact bytes, and eval-batch accuracy per mode, plus a
fused-vs-unfused float64 bitwise check.  :func:`gate_serving_benchmark`
turns that section into the CI perf gate.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.errors import ServingError
from repro.inference.benchmark import TimingStats
from repro.inference.engine import InductiveServer
from repro.serving.prepared import PRECISIONS, PreparedDeployment
from repro.serving.runtime import ServingRuntime
from repro.serving.workload import split_requests, replay
from repro.utils.reports import write_benchmark_json

__all__ = ["BENCH_SCHEMA_VERSION", "run_serving_benchmark",
           "write_benchmark_json", "check_benchmark_schema",
           "gate_serving_benchmark"]

BENCH_SCHEMA_VERSION = 2

_PATH_KEYS = ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "batches",
              "memory_bytes")


def _measure_path(serve, batches, batch_mode: str, repeats: int):
    """Best-of-``repeats`` latency per batch; returns (stats, logits, memory)."""
    per_batch = []
    logits = []
    memory = 0
    for batch in batches:
        best = np.inf
        batch_logits = None
        for _ in range(repeats + 1):  # one extra pass acts as warm-up
            out, seconds, mem = serve(batch, batch_mode)
            if seconds < best:
                best = seconds
            batch_logits = out
            memory = max(memory, mem)
        per_batch.append(best)
        logits.append(batch_logits)
    return TimingStats.from_samples(per_batch), np.vstack(logits), memory


def _path_dict(stats: TimingStats, memory: int) -> dict:
    return {
        "mean_ms": stats.mean_seconds * 1e3,
        "p50_ms": stats.p50_seconds * 1e3,
        "p95_ms": stats.p95_seconds * 1e3,
        "p99_ms": stats.p99_seconds * 1e3,
        "batches": stats.repeats,
        "memory_bytes": int(memory),
    }


def run_serving_benchmark(dataset: str = "pubmed-sim", *,
                          method: str = "mcond", budget: int | None = None,
                          seed: int = 0, scale: float = 1.0,
                          profile: str | None = "quick",
                          num_requests: int = 48, nodes_per_request: int = 4,
                          max_batch_size: int = 8, repeats: int = 3,
                          batch_mode: str = "node",
                          include_original: bool = False) -> dict:
    """Run the serving benchmark end to end; returns the JSON-ready dict."""
    from repro import api  # local import: serving must stay facade-independent
    from repro.experiments import dataset_budgets

    if budget is None:
        budget = dataset_budgets(dataset)[-1]
    bundle = api.deploy(dataset, method, budget, seed=seed, scale=scale,
                        profile=profile)
    test_batch = api.evaluation_batch(bundle)
    requests = split_requests(test_batch, num_requests, nodes_per_request)

    result = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "serving-benchmark",
        "dataset": dataset,
        "method": method,
        "budget": budget,
        "seed": seed,
        "scale": scale,
        "batch_mode": batch_mode,
        "num_requests": num_requests,
        "nodes_per_request": nodes_per_request,
        "max_batch_size": max_batch_size,
        "repeats": repeats,
        "deployments": {},
        "parity": {},
    }

    result["deployments"]["synthetic"] = _bench_deployment(
        bundle, requests, batch_mode, max_batch_size, repeats)
    if include_original:
        whole = api.deploy(dataset, "whole", seed=seed, scale=scale,
                           profile=profile)
        result["deployments"]["original"] = _bench_deployment(
            whole, requests, batch_mode, max_batch_size, repeats)

    # precision axis: the frozen path of an original-graph deployment
    # (the base graph is big enough there for bandwidth effects to show)
    # re-measured under every numeric serving mode
    original = api.deploy(dataset, method, budget, seed=seed, scale=scale,
                          profile=profile, deployment="original")
    result["precision"] = _bench_precision(
        original, api.evaluation_batch(original), batch_mode, repeats)

    # top-level parity aggregates over every benchmarked deployment, so a
    # parity break in any path is visible without digging into sections
    deployments = result["deployments"].values()
    result["parity"]["cached_bitwise_equal"] = all(
        d["parity"]["cached_bitwise_equal"] for d in deployments)
    frozen_diffs = [d["parity"]["frozen_max_abs_diff"] for d in deployments
                    if "frozen_max_abs_diff" in d["parity"]]
    if frozen_diffs:
        result["parity"]["frozen_max_abs_diff"] = max(frozen_diffs)
    return result


def _bench_deployment(bundle, requests, batch_mode: str, max_batch_size: int,
                      repeats: int) -> dict:
    from repro.serving.runtime import merge_requests

    prepared = PreparedDeployment.from_bundle(bundle)
    naive = InductiveServer(bundle.model(), bundle.deployment, bundle.base,
                            bundle.condensed, use_cache=False)

    # identical micro-batch groups for every path
    groups = [requests[i:i + max_batch_size]
              for i in range(0, len(requests), max_batch_size)]
    batches = [merge_requests([_as_request(r) for r in group])
               for group in groups]

    uncached_stats, uncached_logits, uncached_memory = _measure_path(
        naive.serve_batch, batches, batch_mode, repeats)
    cached_stats, cached_logits, cached_memory = _measure_path(
        prepared.serve_batch, batches, batch_mode, repeats)
    parity = {"cached_bitwise_equal": bool(
        np.array_equal(uncached_logits, cached_logits))}

    paths = {
        "uncached": _path_dict(uncached_stats, uncached_memory),
        "cached": _path_dict(cached_stats, cached_memory),
    }
    try:
        frozen_stats, frozen_logits, frozen_memory = _measure_path(
            prepared.serve_batch_frozen, batches, batch_mode, repeats)
        paths["frozen"] = _path_dict(frozen_stats, frozen_memory)
        parity["frozen_max_abs_diff"] = float(
            np.abs(frozen_logits - uncached_logits).max())
    except ServingError:
        pass  # non-linear model: no cached-propagation path

    # closed-loop runtime replay over the same requests
    runtime = ServingRuntime(prepared, "sizecap", batch_mode=batch_mode,
                             scheduler_options={"max_batch_size": max_batch_size})
    replay(runtime, requests)
    stats = runtime.stats()

    return {
        "storage_bytes": bundle.storage_bytes(),
        "paths": paths,
        "parity": parity,
        "runtime": stats.as_dict(),
        "speedup_cached_vs_uncached":
            uncached_stats.mean_seconds / cached_stats.mean_seconds,
    }


_PRECISION_MIN_NODES = 4096


def _tile_batch(batch, min_nodes: int):
    """Stack the eval batch until it is large enough to be bandwidth-bound.

    Small quick-profile eval batches are overhead-dominated, which hides
    the memory-traffic difference the precision axis exists to measure;
    tiling preserves per-node semantics (accuracy is unchanged) while
    making the kernels stream enough data for dtype width to matter.
    """
    import scipy.sparse as sp

    from repro.serving.runtime import IncrementalBatch

    nodes = int(batch.features.shape[0])
    tiles = max(1, -(-min_nodes // nodes))
    if tiles == 1:
        return batch, 1
    tiled = IncrementalBatch(
        features=np.vstack([batch.features] * tiles),
        incremental=sp.vstack([batch.incremental] * tiles).tocsr(),
        intra=sp.block_diag([batch.intra] * tiles).tocsr(),
        labels=np.concatenate([batch.labels] * tiles))
    return tiled, tiles


def _bench_precision(bundle, batch, batch_mode: str, repeats: int) -> dict:
    """Measure the frozen path under every numeric serving mode.

    Each mode is exercised exactly the way production would see it: the
    bundle is saved at that precision, re-loaded from the artifact, and
    served through :meth:`PreparedDeployment.serve_batch_frozen` on the
    full (tiled) evaluation batch — one large bandwidth-bound request.
    float64 additionally cross-checks the fused kernels against the
    unfused reference bitwise.
    """
    from repro import api  # local import: serving must stay facade-independent

    batch, tiles = _tile_batch(batch, _PRECISION_MIN_NODES)
    labels = np.asarray(batch.labels)
    nodes = int(batch.features.shape[0])
    section = {"deployment": "original", "path": "frozen",
               "eval_nodes": nodes, "tile_factor": tiles, "modes": {}}
    baseline = None
    with tempfile.TemporaryDirectory() as tmp:
        prepared = {}
        loaded = {}
        artifact_bytes = {}
        for mode in PRECISIONS:
            path = os.path.join(tmp, f"artifact_{mode}.npz")
            bundle.save(path, precision=mode)
            artifact_bytes[mode] = os.path.getsize(path)
            loaded[mode] = api.DeploymentBundle.load(path)
            prepared[mode] = loaded[mode].prepare()

        # modes are timed round-robin (not back to back) so clock/cache
        # drift during the run hits every mode equally, keeping the
        # speedup ratio honest; best-of still discards scheduler noise
        best = {mode: np.inf for mode in PRECISIONS}
        logits = {}
        memory = {mode: 0 for mode in PRECISIONS}
        for _ in range(repeats + 2):  # extra passes double as warm-up
            for mode in PRECISIONS:
                out, seconds, mem = prepared[mode].serve_batch_frozen(
                    batch, batch_mode)
                best[mode] = min(best[mode], seconds)
                memory[mode] = max(memory[mode], mem)
                logits[mode] = out

        unfused = loaded["float64"].prepare(fused=False)
        ref, _, _ = unfused.serve_batch_frozen(batch, batch_mode)
        section["fused_bitwise_equal"] = bool(
            np.array_equal(logits["float64"], ref))
        baseline = None
        for mode in PRECISIONS:
            entry = {
                "artifact_bytes": int(artifact_bytes[mode]),
                "mean_ms": best[mode] * 1e3,
                "memory_bytes": int(memory[mode]),
                "throughput_nodes_per_s": nodes / best[mode],
                "accuracy": float(
                    (logits[mode].argmax(axis=1) == labels).mean()),
            }
            if mode == "float64":
                baseline = entry
            else:
                entry["speedup_vs_float64"] = (
                    baseline["mean_ms"] / entry["mean_ms"])
                entry["accuracy_drop_pts"] = (
                    baseline["accuracy"] - entry["accuracy"]) * 100.0
                entry["artifact_bytes_ratio"] = (
                    artifact_bytes[mode] / baseline["artifact_bytes"])
            section["modes"][mode] = entry
    return section


def gate_serving_benchmark(result: dict, *,
                           min_float32_speedup: float = 1.15,
                           max_accuracy_drop: float = 0.5,
                           max_int8_bytes_ratio: float = 0.5) -> list[str]:
    """The CI perf gate over the precision axis (empty list = pass).

    Enforced invariants: the fused float64 frozen path stays bitwise
    identical to the unfused baseline, float32 beats float64 throughput
    by ``min_float32_speedup`` on the frozen path, reduced modes stay
    within ``max_accuracy_drop`` accuracy points of float64, and the
    int8 artifact shrinks to at most ``max_int8_bytes_ratio`` of the
    float64 artifact.
    """
    check_benchmark_schema(result)
    failures: list[str] = []
    if not result["parity"]["cached_bitwise_equal"]:
        failures.append("cached path lost bitwise parity with the "
                        "uncached baseline")
    precision = result["precision"]
    if not precision.get("fused_bitwise_equal"):
        failures.append("fused float64 frozen path is not bitwise "
                        "identical to the unfused baseline")
    modes = precision["modes"]
    speedup = modes["float32"]["speedup_vs_float64"]
    if speedup < min_float32_speedup:
        failures.append(
            f"float32 frozen speedup {speedup:.2f}x is below the "
            f"{min_float32_speedup:.2f}x floor")
    for mode in ("float32", "int8"):
        drop = modes[mode]["accuracy_drop_pts"]
        if drop > max_accuracy_drop:
            failures.append(
                f"{mode} accuracy drop {drop:.2f} points exceeds the "
                f"{max_accuracy_drop:.2f}-point budget")
    ratio = modes["int8"]["artifact_bytes_ratio"]
    if ratio > max_int8_bytes_ratio:
        failures.append(
            f"int8 artifact is {ratio:.2f}x the float64 artifact, above "
            f"the {max_int8_bytes_ratio:.2f}x ceiling")
    return failures


def _as_request(batch):
    from repro.serving.runtime import Request
    return Request(features=np.asarray(batch.features, dtype=np.float64),
                   incremental=batch.incremental.tocsr(),
                   intra=batch.intra.tocsr())


def check_benchmark_schema(result: dict) -> None:
    """Validate the benchmark dict's shape; raises ServingError on drift.

    Shared by the test suite and ``repro bench`` itself so the emitted
    artifact can never silently lose the keys downstream tooling reads.
    """
    top = ("schema_version", "kind", "dataset", "method", "budget", "seed",
           "scale", "batch_mode", "num_requests", "nodes_per_request",
           "max_batch_size", "repeats", "deployments", "parity")
    missing = [key for key in top if key not in result]
    if missing:
        raise ServingError(f"benchmark result misses keys: {missing}")
    if result["kind"] != "serving-benchmark":
        raise ServingError(f"unexpected benchmark kind {result['kind']!r}")
    if not result["deployments"]:
        raise ServingError("benchmark result has no deployments")
    if "cached_bitwise_equal" not in result["parity"]:
        raise ServingError("benchmark result misses parity.cached_bitwise_equal")
    for name, deployment in result["deployments"].items():
        for key in ("storage_bytes", "paths", "parity", "runtime",
                    "speedup_cached_vs_uncached"):
            if key not in deployment:
                raise ServingError(f"deployment {name!r} misses {key!r}")
        for path_name, path in deployment["paths"].items():
            path_missing = [key for key in _PATH_KEYS if key not in path]
            if path_missing:
                raise ServingError(
                    f"path {name}.{path_name} misses {path_missing}")
        runtime_keys = ("requests", "latency_p50_ms", "latency_p95_ms",
                        "latency_p99_ms", "queue_wait_mean_ms",
                        "compute_mean_ms", "throughput_rps")
        runtime_missing = [key for key in runtime_keys
                           if key not in deployment["runtime"]]
        if runtime_missing:
            raise ServingError(
                f"deployment {name!r} runtime misses {runtime_missing}")
    if result["schema_version"] >= 2:
        precision = result.get("precision")
        if not isinstance(precision, dict):
            raise ServingError("schema v2 benchmark misses the precision "
                               "section")
        if "fused_bitwise_equal" not in precision:
            raise ServingError(
                "precision section misses fused_bitwise_equal")
        modes = precision.get("modes", {})
        missing_modes = [m for m in ("float64", "float32", "int8")
                         if m not in modes]
        if missing_modes:
            raise ServingError(f"precision section misses modes: "
                               f"{missing_modes}")
        mode_keys = ("artifact_bytes", "mean_ms", "memory_bytes",
                     "throughput_nodes_per_s", "accuracy")
        reduced_keys = ("speedup_vs_float64", "accuracy_drop_pts",
                        "artifact_bytes_ratio")
        for mode, entry in modes.items():
            required = mode_keys if mode == "float64" else (
                mode_keys + reduced_keys)
            mode_missing = [key for key in required if key not in entry]
            if mode_missing:
                raise ServingError(
                    f"precision mode {mode!r} misses {mode_missing}")
