"""Bounded request queue with pluggable overflow behaviour.

The runtime admits requests through this queue; when producers outpace the
serving loop the ``overflow`` policy decides what happens:

- ``"block"``  — backpressure: ``put`` waits for capacity (optionally up
  to ``timeout`` seconds, then raises);
- ``"reject"`` — fail fast: ``put`` raises :class:`~repro.errors.ServingError`
  immediately, which the runtime converts into a rejected future;
- ``"drop_oldest"`` — load shedding: the oldest queued request is evicted
  (its future fails) to admit the new one.

All operations are thread-safe; the queue is the only synchronization
point between producer threads and the serving loop.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ServingError

__all__ = ["OVERFLOW_POLICIES", "BoundedRequestQueue", "QueueFullError",
           "QueueClosedError"]

OVERFLOW_POLICIES = ("block", "reject", "drop_oldest")


class QueueFullError(ServingError):
    """The queue is at capacity and the policy forbids waiting."""


class QueueClosedError(ServingError):
    """The queue was closed; no further requests are admitted."""


class BoundedRequestQueue:
    """A thread-safe FIFO with a hard capacity and an overflow policy."""

    def __init__(self, capacity: int = 1024, overflow: str = "block") -> None:
        if capacity <= 0:
            raise ServingError(f"queue capacity must be positive, got {capacity}")
        if overflow not in OVERFLOW_POLICIES:
            raise ServingError(
                f"unknown overflow policy {overflow!r}; "
                f"use one of {', '.join(OVERFLOW_POLICIES)}")
        self.capacity = capacity
        self.overflow = overflow
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    def put(self, item, timeout: float | None = None):
        """Admit ``item``; returns the evicted item under ``drop_oldest``
        (else ``None``)."""
        with self._lock:
            if self._closed:
                raise QueueClosedError("queue is closed")
            evicted = None
            if len(self._items) >= self.capacity:
                if self.overflow == "reject":
                    raise QueueFullError(
                        f"queue full ({self.capacity} requests); "
                        "request rejected")
                if self.overflow == "drop_oldest":
                    evicted = self._items.popleft()
                else:  # block — backpressure on the producer
                    if not self._not_full.wait_for(
                            lambda: len(self._items) < self.capacity
                            or self._closed,
                            timeout=timeout):
                        raise QueueFullError(
                            f"queue full ({self.capacity} requests); "
                            f"timed out after {timeout}s of backpressure")
                    if self._closed:
                        raise QueueClosedError("queue closed while waiting")
            self._items.append(item)
            self._not_empty.notify()
            return evicted

    def get(self, timeout: float | None = None):
        """Pop the oldest request; ``None`` on timeout or when closed-and-empty."""
        with self._lock:
            if not self._not_empty.wait_for(
                    lambda: self._items or self._closed, timeout=timeout):
                return None
            if not self._items:
                return None  # closed and drained
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def get_nowait(self):
        """Pop the oldest request without waiting; ``None`` when empty."""
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions; pending items can still be drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __repr__(self) -> str:
        return (f"BoundedRequestQueue(capacity={self.capacity}, "
                f"overflow={self.overflow!r}, pending={len(self)})")
