"""Task-typed serving: embeddings, link scores, and top-k similarity.

The serving stack answers more than class logits.  Every layer —
:class:`~repro.serving.runtime.ServingRuntime`,
:class:`~repro.serving.fleet.ServingFleet`, the gateway and its wire
protocol — accepts one request object, :class:`ServeTask`, whose
``task`` field selects what the reply carries:

- ``predict`` — class logits of the request's inductive nodes.  The
  default, and bit-for-bit identical to the pre-task serving path (it
  dispatches to the very same
  :meth:`~repro.serving.prepared.PreparedDeployment.serve_batch` /
  ``serve_batch_frozen`` calls).
- ``embed`` — the penultimate representation ``H = f(A, X)`` of the
  request's nodes, via the models' existing ``embed()`` contract,
  through the same request-invariant cache path as ``predict``.
- ``link_score`` — edge scores for ``pairs`` of ``(request-local node,
  base node)`` endpoints: the request side is embedded inductively, the
  base side reads the cached base-embedding matrix, and a registered
  scorer (``dot`` or ``hadamard``) combines them.
- ``topk`` — for each request node, its ``k`` nearest base nodes by
  cosine similarity against a precomputed :class:`EmbeddingIndex`; the
  reply packs ``[k neighbor ids | k scores]`` per row (ids are exact as
  float64).

Task executors live in the :data:`repro.registry.TASKS` registry, so
``repro list`` enumerates them and every layer dispatches through one
``make_task`` call instead of per-task branches.

The :class:`EmbeddingIndex` persists with the same uncompressed ``.npz``
scheme as ``DeploymentBundle.save(layout="mmap")``: saved next to a
serving artifact, every replica on a host memory-maps one page-cache
copy of the matrix.  ``PreparedDeployment.apply_delta`` invalidates the
cached matrix (and any attached index), so top-k answers never go stale
against a streamed base graph.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import ArtifactError, ServingError
from repro.graph.datasets import IncrementalBatch
from repro.registry import TASKS, make_task, register_task
from repro.telemetry import stage_span
from repro.utils.artifacts import normalize_npz_path, open_npz_archive, save_npz

__all__ = ["ServeTask", "EmbeddingIndex", "SCORERS", "score_pairs",
           "auc_score", "holdout_split", "sample_link_pairs",
           "evaluate_link_holdout", "tasked_requests", "execute_task",
           "sidecar_index_path"]

#: Registered link scorers: ``dot`` is the inner product of the endpoint
#: embeddings; ``hadamard`` is the mean of their elementwise product.
SCORERS = ("dot", "hadamard")


# ----------------------------------------------------------------------
# The request object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeTask:
    """One task-typed serving request — the single submit surface.

    ``batch`` carries the inductive nodes exactly as before (features,
    incremental connections, optional intra edges); ``task`` selects the
    executor from :data:`repro.registry.TASKS`.  ``mode``, ``frozen``
    and ``key`` are the per-request options the old keyword APIs spread
    across three ``submit`` signatures; ``k``/``pairs``/``scorer`` only
    matter to the ``topk`` and ``link_score`` tasks.
    """

    batch: IncrementalBatch
    task: str = "predict"
    mode: str | None = None
    frozen: bool = False
    key: str | None = None
    k: int = 10
    pairs: np.ndarray | None = None
    scorer: str = "dot"
    trace_id: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.batch, IncrementalBatch):
            raise ServingError(
                f"ServeTask.batch must be an IncrementalBatch, "
                f"got {type(self.batch).__name__}")
        if self.task not in TASKS:
            raise ServingError(
                f"unknown serving task {self.task!r}; "
                f"available: {', '.join(TASKS.keys())}")
        if self.mode is not None and self.mode not in ("graph", "node"):
            raise ServingError(
                f"mode must be 'graph' or 'node', got {self.mode!r}")
        if self.scorer not in SCORERS:
            raise ServingError(
                f"scorer must be one of {', '.join(SCORERS)}, "
                f"got {self.scorer!r}")
        if int(self.k) < 1:
            raise ServingError(f"topk needs k >= 1, got {self.k}")
        object.__setattr__(self, "k", int(self.k))
        if self.pairs is not None:
            pairs = np.asarray(self.pairs, dtype=np.int64)
            if pairs.ndim != 2 or pairs.shape[1] != 2:
                raise ServingError(
                    f"pairs must be (p, 2) endpoint indices, "
                    f"got shape {pairs.shape}")
            object.__setattr__(self, "pairs", pairs)
        elif self.task == "link_score":
            raise ServingError(
                "link_score needs pairs: (p, 2) rows of "
                "(request-local node, base node) endpoint indices")

    @property
    def num_nodes(self) -> int:
        return int(self.batch.features.shape[0])

    def result_rows(self) -> int:
        """How many reply rows this task produces (slicing contract)."""
        if self.task == "link_score":
            return int(self.pairs.shape[0])
        return self.num_nodes


# ----------------------------------------------------------------------
# Scoring primitives
# ----------------------------------------------------------------------
def score_pairs(source: np.ndarray, target: np.ndarray,
                scorer: str = "dot") -> np.ndarray:
    """Combine endpoint embeddings into per-pair scores, in float64."""
    if scorer not in SCORERS:
        raise ServingError(
            f"scorer must be one of {', '.join(SCORERS)}, got {scorer!r}")
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape:
        raise ServingError(
            f"endpoint embeddings disagree in shape: "
            f"{source.shape} vs {target.shape}")
    product = source * target
    if scorer == "hadamard":
        return product.mean(axis=1)
    return product.sum(axis=1)


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Unit-normalize rows; zero rows stay exactly zero (cosine of an
    all-zero embedding is defined as 0 against everything)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1)
    out = np.zeros_like(matrix)
    positive = norms > 0
    out[positive] = matrix[positive] / norms[positive, None]
    return out


def auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve by the Mann–Whitney rank statistic.

    Tied scores receive their average rank, so constant scorers land at
    exactly 0.5.  Needs at least one positive and one negative label.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if scores.shape != labels.shape:
        raise ServingError(
            f"AUC got {scores.size} scores for {labels.size} labels")
    positive = labels == 1
    num_pos = int(positive.sum())
    num_neg = int(scores.size - num_pos)
    if num_pos == 0 or num_neg == 0:
        raise ServingError(
            "AUC needs both positive and negative pairs "
            f"(got {num_pos} positive, {num_neg} negative)")
    _, inverse, counts = np.unique(scores, return_inverse=True,
                                   return_counts=True)
    ends = np.cumsum(counts)
    average_rank = (ends - counts) + (counts + 1) / 2.0
    ranks = average_rank[inverse]
    u = ranks[positive].sum() - num_pos * (num_pos + 1) / 2.0
    return float(u / (num_pos * num_neg))


# ----------------------------------------------------------------------
# The precomputed similarity index
# ----------------------------------------------------------------------
class EmbeddingIndex:
    """A base-node embedding matrix packaged for top-k cosine queries.

    Holds the raw matrix (link-prediction endpoints read it) and a
    row-normalized copy (cosine queries are one dense matmul against
    it).  :meth:`save` writes an uncompressed ``.npz`` — the same
    mmap-friendly layout as ``DeploymentBundle.save(layout="mmap")`` —
    so :meth:`load` with ``mmap=True`` maps both arrays zero-copy and
    every serving replica on the host shares one page-cache copy.
    """

    def __init__(self, embeddings: np.ndarray,
                 normalized: np.ndarray | None = None) -> None:
        embeddings = np.asarray(embeddings)
        if embeddings.ndim != 2:
            raise ServingError(
                f"embedding matrix must be (N, d), got {embeddings.shape}")
        self.embeddings = embeddings
        self.normalized = (normalized if normalized is not None
                           else _normalize_rows(embeddings))
        if self.normalized.shape != embeddings.shape:
            raise ServingError(
                f"normalized matrix shape {self.normalized.shape} != "
                f"embedding matrix shape {embeddings.shape}")

    @property
    def num_nodes(self) -> int:
        return int(self.embeddings.shape[0])

    @property
    def dim(self) -> int:
        return int(self.embeddings.shape[1])

    # ------------------------------------------------------------------
    def topk(self, queries: np.ndarray,
             k: int) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, scores)`` of each query row's ``k`` nearest base
        nodes by cosine similarity, scores descending; ties break toward
        the lower node id (stable sort), so answers are deterministic."""
        k = int(k)
        if k < 1:
            raise ServingError(f"topk needs k >= 1, got {k}")
        if k > self.num_nodes:
            raise ServingError(
                f"topk asked for k={k} neighbors but the index holds "
                f"only {self.num_nodes} base nodes")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ServingError(
                f"query dim {queries.shape[1]} != index dim {self.dim}")
        scores = _normalize_rows(queries) @ np.asarray(self.normalized).T
        order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        return order.astype(np.int64), np.take_along_axis(scores, order,
                                                          axis=1)

    def packed_topk(self, queries: np.ndarray, k: int) -> np.ndarray:
        """The wire shape of a ``topk`` reply: ``(n, 2k)`` float64 rows
        of ``[neighbor ids | cosine scores]`` (ids < 2**53 are exact)."""
        indices, scores = self.topk(queries, k)
        return np.concatenate([indices.astype(np.float64), scores], axis=1)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist uncompressed (mmap-able); returns the ``.npz`` path."""
        target = normalize_npz_path(path)
        payload = {
            "kind": np.asarray("embedding-index"),
            "embeddings": np.asarray(self.embeddings, dtype=np.float64),
            "normalized": np.asarray(self.normalized, dtype=np.float64),
        }
        return save_npz(target, payload, compressed=False)

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = False) -> "EmbeddingIndex":
        """Load an index saved by :meth:`save`; ``mmap=True`` maps the
        matrices read-only instead of copying them into the process."""
        target = normalize_npz_path(path)
        with open_npz_archive(target, "embedding index",
                              mmap=mmap) as archive:
            if ("embeddings" not in archive.files
                    or "normalized" not in archive.files):
                raise ArtifactError(
                    f"{target} is not an embedding index "
                    "(missing embeddings/normalized members)")
            if str(archive["kind"]) != "embedding-index":
                raise ArtifactError(
                    f"{target} has unexpected artifact kind "
                    f"{str(archive['kind'])!r}")
            return cls(archive["embeddings"], archive["normalized"])

    def __repr__(self) -> str:
        return (f"EmbeddingIndex(num_nodes={self.num_nodes}, "
                f"dim={self.dim})")


def sidecar_index_path(artifact: str | Path) -> Path:
    """Where a serving artifact's embedding index lives on disk:
    ``artifact.npz`` → ``artifact.embeddings.npz`` (replica workers probe
    this path and memory-map the index when present)."""
    target = normalize_npz_path(artifact)
    return target.with_name(target.stem + ".embeddings.npz")


# ----------------------------------------------------------------------
# Task executors (the TASKS registry)
# ----------------------------------------------------------------------
def _serve_calls(prepared, frozen: bool):
    if frozen:
        return prepared.serve_batch_frozen, prepared.embed_batch_frozen
    return prepared.serve_batch, prepared.embed_batch


def _execute_predict(prepared, task: ServeTask, *, batch_mode: str = "graph",
                     frozen: bool = False):
    serve, _ = _serve_calls(prepared, frozen)
    return serve(task.batch, batch_mode)


def _execute_embed(prepared, task: ServeTask, *, batch_mode: str = "graph",
                   frozen: bool = False):
    _, embed = _serve_calls(prepared, frozen)
    return embed(task.batch, batch_mode)


def _execute_link_score(prepared, task: ServeTask, *,
                        batch_mode: str = "graph", frozen: bool = False):
    if task.pairs is None:
        raise ServingError("link_score needs pairs of endpoint indices")
    start = time.perf_counter()
    _, embed = _serve_calls(prepared, frozen)
    embeddings, _, memory = embed(task.batch, batch_mode)
    with stage_span("score"):
        local, base = task.pairs[:, 0], task.pairs[:, 1]
        n = embeddings.shape[0]
        if local.size and (local.min() < 0 or local.max() >= n):
            raise ServingError(
                f"link_score pairs cite request-local nodes outside "
                f"[0, {n})")
        num_base = prepared.num_base
        if base.size and (base.min() < 0 or base.max() >= num_base):
            raise ServingError(
                f"link_score pairs cite base nodes outside [0, {num_base})")
        base_matrix = prepared.base_embeddings()
        scores = score_pairs(embeddings[local],
                             np.asarray(base_matrix)[base], task.scorer)
    return scores, time.perf_counter() - start, memory


def _execute_topk(prepared, task: ServeTask, *, batch_mode: str = "graph",
                  frozen: bool = False):
    start = time.perf_counter()
    _, embed = _serve_calls(prepared, frozen)
    embeddings, _, memory = embed(task.batch, batch_mode)
    with stage_span("score"):
        packed = prepared.embedding_index().packed_topk(embeddings, task.k)
    return packed, time.perf_counter() - start, memory


@register_task("predict", description="class logits of the request's "
               "inductive nodes (the classic, bitwise-stable path)")
def _predict_task():
    return _execute_predict


@register_task("embed", description="penultimate node representations via "
               "the models' embed() contract")
def _embed_task():
    return _execute_embed


@register_task("link_score", description="edge scores for (request node, "
               "base node) pairs from cached endpoint embeddings")
def _link_score_task():
    return _execute_link_score


@register_task("topk", description="k nearest base nodes per request node "
               "from the precomputed embedding index")
def _topk_task():
    return _execute_topk


def execute_task(prepared, task: ServeTask, *, batch_mode: str = "graph",
                 frozen: bool = False):
    """Dispatch one :class:`ServeTask` through the registry.

    Returns the executor's ``(result, seconds, memory_bytes)`` triple —
    the same contract as ``PreparedDeployment.serve_batch``.
    """
    executor = make_task(task.task)
    return executor(prepared, task, batch_mode=batch_mode, frozen=frozen)


# ----------------------------------------------------------------------
# Link-prediction holdout evaluation
# ----------------------------------------------------------------------
def holdout_split(batch: IncrementalBatch, *, num_pairs: int = 64,
                  seed: int = 0) -> tuple[IncrementalBatch, np.ndarray,
                                          np.ndarray]:
    """Hold out inductive edges for link-prediction evaluation.

    Samples up to ``num_pairs`` existing ``(request node, base node)``
    edges from the batch's incremental adjacency, *removes* them from
    the returned batch (the model must not see the edges it is asked to
    score), and pairs them with an equal number of sampled non-edges.
    Returns ``(heldout_batch, pairs, labels)`` with ``labels`` 1 for the
    held-out true edges and 0 for the negatives.
    """
    rng = np.random.default_rng(seed)
    incremental = batch.incremental.tocsr().copy()
    incremental.eliminate_zeros()
    coo = incremental.tocoo()
    if coo.nnz == 0:
        raise ServingError(
            "holdout_split needs a batch with incremental edges to hold out")
    num_pos = int(min(num_pairs, coo.nnz))
    chosen = rng.choice(coo.nnz, size=num_pos, replace=False)
    pos_rows = coo.row[chosen].astype(np.int64)
    pos_cols = coo.col[chosen].astype(np.int64)

    heldout = incremental.tolil()
    heldout[pos_rows, pos_cols] = 0.0
    heldout = heldout.tocsr()
    heldout.eliminate_zeros()

    n, width = incremental.shape
    existing = set(zip(coo.row.tolist(), coo.col.tolist()))
    negatives: list[tuple[int, int]] = []
    # rejection-sample non-edges; the incremental block is sparse, so
    # this converges in a handful of rounds
    attempts = 0
    while len(negatives) < num_pos and attempts < 100:
        rows = rng.integers(0, n, size=num_pos)
        cols = rng.integers(0, width, size=num_pos)
        for row, col in zip(rows.tolist(), cols.tolist()):
            if (row, col) not in existing and len(negatives) < num_pos:
                existing.add((row, col))
                negatives.append((row, col))
        attempts += 1
    if len(negatives) < num_pos:
        raise ServingError(
            "could not sample enough negative pairs; the incremental "
            "block is too dense for a holdout evaluation")
    neg = np.asarray(negatives, dtype=np.int64)
    pairs = np.concatenate(
        [np.stack([pos_rows, pos_cols], axis=1), neg], axis=0)
    labels = np.concatenate([np.ones(num_pos, dtype=np.int64),
                             np.zeros(num_pos, dtype=np.int64)])
    heldout_batch = IncrementalBatch(
        features=batch.features, incremental=heldout, intra=batch.intra,
        labels=batch.labels)
    return heldout_batch, pairs, labels


def sample_link_pairs(batch: IncrementalBatch, *, num_pairs: int = 8,
                      seed: int = 0) -> np.ndarray:
    """Endpoint pairs for driving ``link_score`` traffic (no holdout):
    a mix of the batch's existing incremental edges and random
    ``(request node, base node)`` pairs."""
    rng = np.random.default_rng(seed)
    incremental = batch.incremental.tocsr()
    n, width = incremental.shape
    coo = incremental.tocoo()
    take = int(min(num_pairs // 2, coo.nnz))
    parts = []
    if take:
        chosen = rng.choice(coo.nnz, size=take, replace=False)
        parts.append(np.stack([coo.row[chosen], coo.col[chosen]],
                              axis=1).astype(np.int64))
    remaining = num_pairs - take
    if remaining:
        parts.append(np.stack([rng.integers(0, n, size=remaining),
                               rng.integers(0, width, size=remaining)],
                              axis=1).astype(np.int64))
    return np.concatenate(parts, axis=0)


def evaluate_link_holdout(prepared, batch: IncrementalBatch, *,
                          num_pairs: int = 64, scorer: str = "dot",
                          batch_mode: str = "graph", frozen: bool = False,
                          seed: int = 0) -> dict:
    """Inductive edge-holdout AUC of the ``link_score`` task.

    Held-out incremental edges are scored against sampled non-edges;
    a scorer that recovers the removed edges from embeddings alone
    beats the 0.5 chance line.  Returns a JSON-ready summary.
    """
    heldout_batch, pairs, labels = holdout_split(
        batch, num_pairs=num_pairs, seed=seed)
    task = ServeTask(batch=heldout_batch, task="link_score", pairs=pairs,
                     scorer=scorer)
    scores, seconds, _ = execute_task(prepared, task, batch_mode=batch_mode,
                                      frozen=frozen)
    return {
        "auc": auc_score(scores, labels),
        "num_positive": int(labels.sum()),
        "num_negative": int(labels.size - labels.sum()),
        "scorer": scorer,
        "seconds": float(seconds),
    }


# ----------------------------------------------------------------------
# Request adaptation helpers
# ----------------------------------------------------------------------
def tasked_requests(requests: list[IncrementalBatch], task: str, *,
                    k: int = 10, scorer: str = "dot", num_pairs: int = 8,
                    seed: int = 0) -> list[ServeTask]:
    """Wrap replay batches as :class:`ServeTask` requests of one task.

    ``link_score`` requests get deterministic per-request endpoint pairs
    sampled from their own incremental connections
    (:func:`sample_link_pairs`); other tasks pass the batches through.
    """
    tasks = []
    for position, batch in enumerate(requests):
        pairs = None
        if task == "link_score":
            pairs = sample_link_pairs(batch, num_pairs=num_pairs,
                                      seed=seed + position)
        tasks.append(ServeTask(batch=batch, task=task, k=k, pairs=pairs,
                               scorer=scorer))
    return tasks


def _as_task(batch_or_task, **overrides) -> ServeTask:
    """Coerce an :class:`IncrementalBatch` (or pass a ServeTask through),
    applying non-``None`` keyword overrides — the shared glue behind the
    layers' ``submit_batch`` conveniences."""
    if isinstance(batch_or_task, ServeTask):
        task = batch_or_task
        updates = {key: value for key, value in overrides.items()
                   if value is not None and getattr(task, key) != value}
        if not updates:
            return task
        from dataclasses import replace
        return replace(task, **updates)
    if isinstance(batch_or_task, IncrementalBatch):
        clean = {key: value for key, value in overrides.items()
                 if value is not None}
        return ServeTask(batch=batch_or_task, **clean)
    raise ServingError(
        f"expected a ServeTask or IncrementalBatch, "
        f"got {type(batch_or_task).__name__}")


def _legacy_batch(features, incremental, intra=None) -> IncrementalBatch:
    """Assemble the deprecated keyword-API arrays into a batch."""
    feats = np.atleast_2d(np.asarray(features, dtype=np.float64))
    n = feats.shape[0]
    if not sp.issparse(incremental):
        incremental = sp.csr_matrix(
            np.atleast_2d(np.asarray(incremental, dtype=np.float64)))
    if intra is None:
        intra = sp.csr_matrix((n, n), dtype=np.float64)
    elif not sp.issparse(intra):
        intra = sp.csr_matrix(np.asarray(intra, dtype=np.float64))
    return IncrementalBatch(features=feats, incremental=incremental.tocsr(),
                            intra=intra.tocsr(),
                            labels=np.full(n, -1, dtype=np.int64))
