"""Prepared-deployment cache: everything invariant across serving requests.

:class:`PreparedDeployment` is built once per deployed graph (typically
from a :class:`repro.api.DeploymentBundle`) and precomputes what the naive
serving path re-derives on every batch:

- the deployed base block with self-loops already applied, in canonical
  CSR form, plus its per-row entry counts and scatter positions — so the
  augmented operator of Eq. (3)/Eq. (11) is assembled by linear-time
  numpy scatters instead of a COO round-trip (``sp.bmat`` sorts);
- the base features cast to contiguous float64;
- the sparse mapping ``M`` (synthetic deployment) and its storage bytes;
- lazily, the standalone normalized operator of the deployed graph, its
  K-hop propagated features and base logits (``warm_base``) — the cache
  behind answering queries about *known* nodes with zero graph work and
  behind the frozen-base fast path.

Exactness contract
------------------
``attach_normalize`` reproduces, bit for bit, what the naive path

    symmetric_normalize(bmat([[base, inc.T], [inc, ea]]))

produces.  Two scipy details make this non-trivial and are deliberately
mirrored here:

1. ``csr.sum(axis=1)`` is ``np.add.reduceat`` over each row's stored data
   (pairwise summation), *not* a sequential fold — so degrees must be
   computed by ``reduceat`` over the merged row data, which requires
   assembling the merged structure first;
2. the normalization ``scale @ A @ scale`` multiplies every stored entry
   as ``(d_i^{-1/2} * a_ij) * d_j^{-1/2}``, which an elementwise scale of
   the merged data array reproduces exactly.

Because the assembled operator matches the naive one in stored order and
bit pattern, and model forwards fold in stored order, the served logits
are bitwise identical — verified by the parity tests.

Precision modes
---------------
The cache can be built in one of three numeric modes (``precision``):

- ``"float64"`` (default) — the exactness contract above holds end to
  end; this is the only mode that supports streaming deltas.
- ``"float32"`` — the standalone operator, the base features, and the
  propagated K-hop caches are cast to float32 once at prepare time
  (~2x memory bandwidth on the frozen path); logits are gated by an
  accuracy delta against float64, not bitwise parity.
- ``"int8"`` — the frozen K-hop feature caches are quantized with a
  per-column absmax calibration step at prepare time and dequantized on
  gather; everything else behaves like ``"float32"``.

Zero-degree masking is dtype-independent: :func:`_inv_sqrt` leaves
zero-degree rows at exactly ``0.0`` in every mode (the reduced modes
inherit the float64 mask by casting, never by recomputing in low
precision), so isolated nodes serve identically across modes.

Fused kernels
-------------
The frozen fast path applies the ``D^-1/2`` row/col scaling in a single
traversal of each block's CSR arrays (:func:`_fused_scale`) instead of
materializing scaled operator copies, and cache-blocks the base-row
gather: the SpMV's dense operand shrinks to just the hop rows the batch
references.  Both transformations preserve the per-entry multiply order
and scipy's per-row fold order, so the fused float64 path is bitwise
identical to the unfused baseline (``fused=False``, kept as the
reference the benchmark gate compares against).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError, InferenceError, ServingError
from repro.condense.base import CondensedGraph
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.graph.incremental import convert_connections
from repro.graph.ops import add_self_loops
from repro.graph.stream import (
    GraphDelta,
    StreamingGraph,
    csr_row_positions,
    grow_buffer,
    splice_csr_rows,
)
from repro.inference.engine import validate_deployment
from repro.nn.models import GNNModel, SGC
from repro.telemetry import stage_span
from repro.tensor.sparse import sparse_memory_bytes
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["PreparedDeployment", "DeltaRefreshReport", "PRECISIONS"]

#: Supported numeric serving modes, in decreasing storage width.
PRECISIONS = ("float64", "float32", "int8")


@dataclass(frozen=True)
class DeltaRefreshReport:
    """What one :meth:`PreparedDeployment.apply_delta` call did.

    ``mode`` is ``"incremental"`` (touched rows respliced, materialized
    caches refreshed row-wise), ``"rebuild"`` (past the staleness
    threshold — materialized caches recomputed from scratch),
    ``"append-mapping"`` (synthetic deployment: mapping grew zero rows),
    or ``"noop"``.  ``refreshed`` names the caches brought up to date,
    ``invalidated`` the ones dropped for lazy recomputation (the warm
    base logits and the base embeddings / top-k index — full model
    forwards — are never patched in place because BLAS row-subset
    products are not bitwise reproducible).
    """

    mode: str
    seconds: float
    num_base: int
    appended: int
    touched_rows: int
    affected_rows: int
    refreshed: tuple[str, ...] = ()
    invalidated: tuple[str, ...] = ()


def _canonical_csr(matrix, shape: tuple[int, int], name: str) -> sp.csr_matrix:
    """Coerce to canonical float64 CSR (duplicates summed, sorted indices)."""
    if matrix is None:
        return sp.csr_matrix(shape, dtype=np.float64)
    if sp.issparse(matrix):
        csr = matrix.tocsr().astype(np.float64)
    else:
        csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
    if csr.shape != shape:
        raise GraphError(f"{name} has shape {csr.shape}, expected {shape}")
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


def _reduceat_row_sums(data: np.ndarray, indptr: np.ndarray,
                       counts: np.ndarray) -> np.ndarray:
    """Row sums exactly as ``scipy.sparse.csr_matrix.sum(axis=1)``.

    scipy's ``_minor_reduce`` runs ``np.add.reduceat`` at the start offset
    of every non-empty row; empty rows stay zero.  Pairwise summation makes
    this differ (in the last ulp) from a sequential fold, so the benchmark
    and the naive path must share this exact implementation.
    """
    out = np.zeros(counts.shape[0], dtype=np.float64)
    nonempty = np.flatnonzero(counts)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(data, indptr[nonempty])
    return out


def _inv_sqrt(degree: np.ndarray) -> np.ndarray:
    """``D^{-1/2}`` with zero-degree rows left at zero — the exact masking
    the naive ``symmetric_normalize`` applies (parity depends on it)."""
    inv = np.zeros_like(degree)
    positive = degree > 0
    inv[positive] = degree[positive] ** -0.5
    return inv


def _csr_storage_bytes(nnz: int, rows: int, cols: int,
                       value_bytes: int = 8) -> int:
    """Storage of a CSR matrix as scipy would build it (int32 indices when
    they fit, which mirrors ``sp.bmat``'s index-dtype choice)."""
    index_bytes = 4 if max(nnz, rows, cols) < np.iinfo(np.int32).max else 8
    return nnz * (value_bytes + index_bytes) + (rows + 1) * index_bytes


def _fused_scale(block: sp.csr_matrix, inv_row: np.ndarray,
                 inv_col: np.ndarray, dtype) -> np.ndarray:
    """Single-pass ``D^-1/2`` row/col scaling of one CSR block's data.

    One traversal of the block's ``indptr``/``indices``/``data``: every
    stored entry ``a_ij`` becomes ``(inv_row[i] * a_ij) * inv_col[j]``,
    written into a fresh scratch buffer — the block's index structure is
    never copied (the unfused baseline materializes whole scaled operator
    copies instead).  The multiply order matches the exactness contract,
    so a downstream SpMV over this buffer is bitwise identical to the
    unfused path in float64.  Zero entries of ``inv_row``/``inv_col``
    (zero-degree masking) propagate exact zeros in every dtype.
    """
    rows = np.repeat(np.arange(block.shape[0], dtype=np.int64),
                     np.diff(block.indptr))
    data = block.data.astype(dtype, copy=False)
    return (inv_row[rows] * data) * inv_col[block.indices]


def _quantize_columns(  # repro-check: precision-layer the int8 quantizer
        matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-column absmax int8 quantization: ``(q, scale)``.

    ``scale[j] = absmax(column j) / 127`` (1.0 for all-zero columns, so
    dequantization is well-defined), ``q = round(matrix / scale)`` clipped
    to ``[-127, 127]``.  Dequantize as ``q.astype(float32) * scale``;
    exact zeros quantize to exactly 0 and dequantize to exactly 0.0, which
    keeps zero-degree masking semantics intact.
    """
    matrix = np.asarray(matrix)
    if matrix.size:
        absmax = np.abs(matrix).max(axis=0)
    else:
        absmax = np.zeros(matrix.shape[1], dtype=np.float64)
    scale = np.where(absmax > 0, absmax / 127.0, 1.0).astype(np.float32)
    q = np.clip(np.rint(matrix / scale), -127, 127).astype(np.int8)
    return q, scale


def _dequantize(  # repro-check: precision-layer int8 -> float32 inverse
        q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_quantize_columns`, in float32."""
    return q.astype(np.float32) * scale


class PreparedDeployment:
    """Request-invariant serving state for one deployed graph.

    Parameters mirror :class:`repro.inference.engine.InductiveServer`:
    a trained model, a ``deployment`` kind, and the graph it serves on.
    ``precision`` selects the numeric mode (see the module docstring);
    ``fused=False`` keeps the unfused frozen-path baseline that the
    benchmark's bitwise gate compares the fused kernels against.
    """

    def __init__(self, model: GNNModel, deployment: str, base: Graph | None,
                 condensed: CondensedGraph | None = None, *,
                 precision: str = "float64", fused: bool = True) -> None:
        validate_deployment(deployment, base, condensed)
        if precision not in PRECISIONS:
            raise ServingError(
                f"precision must be one of {', '.join(PRECISIONS)}, "
                f"got {precision!r}")
        self.model = model
        self.deployment = deployment
        self.base = base
        self.condensed = condensed
        self.precision = precision
        self._fused = bool(fused)
        self._dtype = np.float64 if precision == "float64" else np.float32
        if deployment == "synthetic":
            raw = condensed.sparse_adjacency()
            raw_features = condensed.features
            self.mapping: sp.csr_matrix | None = condensed.mapping
        else:
            raw = base.adjacency.tocsr().astype(np.float64)
            raw_features = base.features
            self.mapping = None

        # --- request-invariant precomputation -------------------------
        raw.sum_duplicates()
        self._raw_nnz = int(raw.nnz)  # the naive attach keeps explicit zeros
        self.base_loops = add_self_loops(raw)
        self.base_loops.sort_indices()
        self.num_base = int(self.base_loops.shape[0])
        self._base_counts = np.diff(self.base_loops.indptr)
        self.base_features = np.ascontiguousarray(raw_features,
                                                  dtype=self._dtype)
        if self.base_features.shape[0] != self.num_base:
            raise GraphError(
                f"base features rows ({self.base_features.shape[0]}) != "
                f"base nodes ({self.num_base})")
        self._mapping_bytes = (sparse_memory_bytes(self.mapping)
                               if self.mapping is not None else 0)
        self.feature_dim = int(self.base_features.shape[1])
        # warm-base caches, built on first use (they cost one standalone
        # forward and are only needed by warm lookups / the frozen path)
        self._loop_degrees: np.ndarray | None = None
        self._base_operator: sp.csr_matrix | None = None
        self._propagated: list[np.ndarray] | None = None
        self._hop_buffers: list[np.ndarray] | None = None
        self._base_logits: np.ndarray | None = None
        self._base_embeddings: np.ndarray | None = None
        # the top-k similarity index over the base embeddings — either
        # attached from an mmap sidecar artifact or built lazily; dropped
        # whenever a delta changes the base graph
        self._embedding_index = None
        self._frozen_inv_base: np.ndarray | None = None
        #: int8 mode: per-hop ``(q, scale)`` pairs from absmax calibration.
        self._quantized: list[tuple[np.ndarray, np.ndarray]] | None = None
        # the evolving view of the deployed graph, created on first delta
        self._stream: StreamingGraph | None = None
        if precision != "float64" and isinstance(model, SGC):
            # the cast (float32) / calibration (int8) step happens at
            # prepare time, not on the first frozen request
            if precision == "int8":
                self._quantized_hops()
            else:
                self.propagated_base_features()

    # ------------------------------------------------------------------
    @classmethod
    def from_bundle(cls, bundle, *, precision: str | None = None,
                    fused: bool = True) -> "PreparedDeployment":
        """Prepare a persisted :class:`repro.api.DeploymentBundle`.

        ``precision=None`` uses the mode the artifact was saved with
        (``bundle.precision``, ``"float64"`` for bundles predating the
        precision axis).
        """
        if precision is None:
            precision = getattr(bundle, "precision", "float64") or "float64"
        return cls(bundle.model(), bundle.deployment, bundle.base,
                   bundle.condensed, precision=precision, fused=fused)

    # ------------------------------------------------------------------
    # Exact cached attach + normalize
    # ------------------------------------------------------------------
    def attach_normalize(self, incremental, new_features: np.ndarray,
                         intra=None) -> tuple[sp.csr_matrix, np.ndarray, int]:
        """``(operator, features, memory_bytes)`` for one batch.

        ``incremental`` is the raw ``(n, N)`` adjacency into the *original*
        graph; for synthetic deployments it is converted through the
        mapping (Eq. 11) first.  In float64 mode the operator and stacked
        features are bit-for-bit equal to normalizing the naive ``bmat``
        assembly; reduced modes cast the assembled operator data and the
        feature stack to float32 (accuracy-gated, not bitwise).
        ``memory_bytes`` mirrors the naive serving-footprint accounting.
        """
        new_feats = np.asarray(new_features, dtype=self._dtype)
        if new_feats.ndim != 2 or new_feats.shape[1] != self.feature_dim:
            raise GraphError(
                f"feature dims differ: base {self.feature_dim} vs new "
                f"{new_feats.shape[1] if new_feats.ndim == 2 else new_feats.shape}")
        n = new_feats.shape[0]
        inc = self._converted_incremental(incremental, n)
        inc_nnz_raw = int(inc.nnz)
        inc.eliminate_zeros()  # the naive path eliminates after assembly
        ea_raw = _canonical_csr(intra, (n, n), "intra adjacency")
        ea_nnz_raw = int(ea_raw.nnz)
        if n:
            ea_loops = add_self_loops(ea_raw)
            ea_loops.sort_indices()
        else:
            ea_loops = ea_raw
        operator = self._assemble_normalized(inc, ea_loops)
        if self._dtype is not np.float64:
            operator.data = operator.data.astype(self._dtype)
        features = np.vstack([self.base_features, new_feats])
        memory = self._memory_bytes(n, inc_nnz_raw, ea_nnz_raw,
                                    features.shape[0])
        return operator, features, memory

    def _converted_incremental(self, incremental, n: int) -> sp.csr_matrix:
        if self.mapping is not None:
            expected = (n, int(self.mapping.shape[0]))
            if incremental is None:
                incremental = sp.csr_matrix(expected, dtype=np.float64)
            elif tuple(incremental.shape) != expected:
                raise GraphError(
                    f"incremental adjacency has shape {incremental.shape}, "
                    f"expected {expected}")
            # Convert the *raw* matrix: pre-canonicalizing would reorder the
            # ``a @ M`` accumulation and break bitwise parity with Eq. 11.
            converted = convert_connections(incremental, self.mapping)
            converted.sort_indices()
            return converted
        return _canonical_csr(incremental, (n, self.num_base),
                              "incremental adjacency")

    def _assemble_normalized(self, inc: sp.csr_matrix,
                             ea_loops: sp.csr_matrix) -> sp.csr_matrix:
        """Merge the four blocks row-wise and scale — no COO sort.

        Per-row layout matches the canonical (column-sorted) order of the
        naive assembly: base-block columns all precede incremental ones.
        """
        B, n = self.num_base, inc.shape[0]
        total = B + n
        incT = inc.T.tocsr()
        incT.sort_indices()
        counts_bn = np.diff(incT.indptr)
        counts_nb = np.diff(inc.indptr)
        counts_nn = np.diff(ea_loops.indptr)
        row_counts = np.concatenate([self._base_counts + counts_bn,
                                     counts_nb + counts_nn])
        indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)

        def scatter(block: sp.csr_matrix, row_start: int, col_offset: int,
                    lead: np.ndarray) -> None:
            if block.nnz == 0:
                return
            cnt = np.diff(block.indptr)
            starts = indptr[row_start:row_start + block.shape[0]] + lead
            within = (np.arange(block.nnz, dtype=np.int64)
                      - np.repeat(block.indptr[:-1].astype(np.int64), cnt))
            dest = within + np.repeat(starts, cnt)
            indices[dest] = block.indices + col_offset
            data[dest] = block.data

        scatter(self.base_loops, 0, 0, np.zeros(B, dtype=np.int64))
        scatter(incT, 0, B, self._base_counts.astype(np.int64))
        scatter(inc, B, 0, np.zeros(n, dtype=np.int64))
        scatter(ea_loops, B, B, counts_nb.astype(np.int64))

        degree = _reduceat_row_sums(data, indptr[:-1], row_counts)
        inv_sqrt = _inv_sqrt(degree)
        rows = np.repeat(np.arange(total, dtype=np.int64), row_counts)
        data = (inv_sqrt[rows] * data) * inv_sqrt[indices]
        operator = sp.csr_matrix((data, indices, indptr), shape=(total, total))
        operator.has_sorted_indices = True
        return operator

    def _memory_bytes(self, n: int, inc_nnz: int, ea_nnz: int,
                      feature_rows: int) -> int:
        """Serving footprint, matching the naive accounting bit for bit in
        float64 (8-byte values); reduced modes count their 4-byte storage."""
        value_bytes = int(np.dtype(self._dtype).itemsize)
        attached_nnz = self._raw_nnz + 2 * inc_nnz + ea_nnz
        total = self.num_base + n
        memory = _csr_storage_bytes(attached_nnz, total, total, value_bytes)
        memory += feature_rows * self.feature_dim * value_bytes
        return memory + self._mapping_bytes

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_batch(self, batch: IncrementalBatch,
                    batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Serve one batch; returns ``(logits, seconds, memory_bytes)``.

        Same contract — and bitwise the same logits — as
        :meth:`repro.inference.engine.InductiveServer.serve_batch`.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        self.model.eval()
        start = time.perf_counter()
        intra = batch.intra if batch_mode == "graph" else None
        # the sub-spans only reach a trace when the caller installed one
        # (use_trace); otherwise stage_span is a contextvar-read no-op
        with stage_span("operator"):
            operator, features, memory = self.attach_normalize(
                batch.incremental, batch.features, intra)
        with stage_span("forward"), no_grad():
            logits = self.model(operator, Tensor(features))
        inductive = logits.data[self.num_base:]
        elapsed = time.perf_counter() - start
        return inductive, elapsed, memory

    def embed_batch(self, batch: IncrementalBatch,
                    batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Penultimate representations of the batch's inductive nodes.

        Runs the models' ``embed()`` contract through the *same*
        request-invariant attach/normalize cache path as
        :meth:`serve_batch` — the operator assembly is shared bit for
        bit, only the final classifier layer is skipped.  Under
        ``eval()`` dropout is the identity, so embeddings are
        deterministic.  Returns ``(embeddings, seconds, memory_bytes)``.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        self.model.eval()
        start = time.perf_counter()
        intra = batch.intra if batch_mode == "graph" else None
        with stage_span("operator"):
            operator, features, memory = self.attach_normalize(
                batch.incremental, batch.features, intra)
        with stage_span("embed"), no_grad():
            hidden = self.model.embed(operator, Tensor(features))
        inductive = hidden.data[self.num_base:]
        elapsed = time.perf_counter() - start
        return inductive, elapsed, memory

    def serve_task(self, task, *, batch_mode: str = "graph",
                   frozen: bool = False):
        """Execute one :class:`~repro.serving.embeddings.ServeTask`.

        Dispatches through the :data:`repro.registry.TASKS` registry;
        ``task="predict"`` lands on the very same :meth:`serve_batch` /
        :meth:`serve_batch_frozen` calls as the keyword API, so its
        replies stay bitwise identical.  Returns the executor's
        ``(result, seconds, memory_bytes)`` triple.
        """
        from repro.serving.embeddings import execute_task
        return execute_task(self, task, batch_mode=batch_mode, frozen=frozen)

    # ------------------------------------------------------------------
    # Warm base cache (standalone graph, no inductive nodes)
    # ------------------------------------------------------------------
    def _degrees(self) -> np.ndarray:
        """Row sums of ``base_loops`` — scipy's ``sum(axis=1)`` bit for bit
        (``reduceat`` pairwise summation), cached for incremental refresh."""
        if self._loop_degrees is None:
            self._loop_degrees = _reduceat_row_sums(
                self.base_loops.data, self.base_loops.indptr[:-1],
                self._base_counts)
        return self._loop_degrees

    def _scaled_operator(self, inv_sqrt: np.ndarray) -> sp.csr_matrix:
        """``D^{-1/2} (A+I) D^{-1/2}`` by elementwise scaling.

        Shares ``base_loops``' index structure (no sparse matmuls) and is
        bitwise identical to ``symmetric_normalize(base_loops,
        self_loops=False)``: the diagonal products multiply in the same
        ``(d_i^{-1/2} * a_ij) * d_j^{-1/2}`` order and preserve the
        canonical stored layout (asserted by the parity tests).
        """
        loops = self.base_loops
        rows = np.repeat(np.arange(self.num_base, dtype=np.int64),
                         self._base_counts)
        data = (inv_sqrt[rows] * loops.data) * inv_sqrt[loops.indices]
        if self._dtype is not np.float64:
            data = data.astype(self._dtype)  # the cast-once-at-prepare step
        operator = sp.csr_matrix((data, loops.indices, loops.indptr),
                                 shape=loops.shape)
        operator.has_sorted_indices = True
        return operator

    def base_operator(self) -> sp.csr_matrix:
        """Standalone normalized operator of the deployed graph."""
        if self._base_operator is None:
            self._base_operator = self._scaled_operator(
                _inv_sqrt(self._degrees()))
        return self._base_operator

    def warm_base(self) -> np.ndarray:
        """Logits of the deployed (known) nodes, computed once and cached.

        This is the zero-graph-work answer for requests about nodes the
        deployment already contains.
        """
        if self._base_logits is None:
            self.model.eval()
            with no_grad():
                out = self.model(self.base_operator(),
                                 Tensor(self.base_features))
            self._base_logits = out.data
        return self._base_logits

    def base_embeddings(self) -> np.ndarray:
        """Embeddings of the deployed (known) nodes, computed once.

        The link-prediction scorer reads its base endpoints here.  An
        attached :class:`~repro.serving.embeddings.EmbeddingIndex` (the
        mmap sidecar) supplies the matrix directly; otherwise one
        standalone ``embed()`` forward is cached, exactly like
        :meth:`warm_base` caches the base logits.
        """
        if self._embedding_index is not None:
            return np.asarray(self._embedding_index.embeddings)
        if self._base_embeddings is None:
            self.model.eval()
            with no_grad():
                out = self.model.embed(self.base_operator(),
                                       Tensor(self.base_features))
            self._base_embeddings = out.data
        return self._base_embeddings

    def embedding_index(self):
        """The top-k similarity index over the base embeddings.

        Built lazily from :meth:`base_embeddings` unless an mmap sidecar
        index was attached.  :meth:`apply_delta` drops it, so top-k
        replies never cite a pre-delta matrix.
        """
        if self._embedding_index is None:
            from repro.serving.embeddings import EmbeddingIndex
            self._embedding_index = EmbeddingIndex(self.base_embeddings())
        return self._embedding_index

    def attach_embedding_index(self, index) -> None:
        """Adopt a precomputed (typically memory-mapped) embedding index.

        Replica workers call this with the artifact's sidecar index so
        every process on the host shares one page-cache copy of the
        matrix instead of recomputing a base ``embed()`` forward each.
        """
        if int(index.num_nodes) != self.num_base:
            raise ServingError(
                f"embedding index covers {index.num_nodes} nodes but the "
                f"deployment serves {self.num_base} base nodes")
        self._embedding_index = index
        self._base_embeddings = None

    def invalidate_embeddings(self) -> None:
        """Drop the cached base embeddings and top-k index.

        Both are rebuilt lazily on the next ``embed``-family request.
        :meth:`apply_delta` calls this whenever the base graph changes;
        the embed benchmark calls it directly to measure what a serving
        path without the precomputed index would pay per query.
        """
        self._base_embeddings = None
        self._embedding_index = None

    def propagated_base_features(self) -> list[np.ndarray]:
        """``[X, ÂX, Â²X, ...]`` under the *standalone* normalization.

        Only defined for SGC-style linear propagation; this feeds the
        frozen-base fast path where per-request work touches nothing but
        the incremental rows.
        """
        if not isinstance(self.model, SGC):
            raise ServingError(
                "propagated-feature caching needs linear propagation (SGC); "
                f"got {type(self.model).__name__}")
        if self._propagated is None:
            operator = self.base_operator()
            hops = [self.base_features]
            for _ in range(self.model.k_hops):
                hops.append(np.asarray(operator @ hops[-1]))
            self._propagated = hops
            self._hop_buffers = None  # fresh arrays, no grown capacity yet
        return self._propagated

    def _standalone_inv_sqrt_degrees(self) -> np.ndarray:
        """``D^{-1/2}`` of the standalone base graph — request-invariant,
        computed once for the frozen path, in storage dtype (the float64
        mask is cast, so zero-degree rows stay exactly zero)."""
        if self._frozen_inv_base is None:
            self._frozen_inv_base = _inv_sqrt(self._degrees()).astype(
                self._dtype, copy=False)
        return self._frozen_inv_base

    def _quantized_hops(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """int8 mode: the per-column absmax calibration of the K-hop caches.

        The float32 hops are propagated once (through the float32
        standalone operator), quantized column-wise, and only the int8
        arrays plus their scale rows are retained — ~8x smaller than the
        float64 caches.  Dequantization happens on gather in
        :meth:`serve_batch_frozen`.
        """
        if self.precision != "int8":
            raise ServingError(
                f"quantized hops exist only in int8 mode, "
                f"not {self.precision!r}")
        if self._quantized is None:
            if not isinstance(self.model, SGC):
                raise ServingError(
                    "propagated-feature caching needs linear propagation "
                    f"(SGC); got {type(self.model).__name__}")
            operator = self.base_operator()
            hop = self.base_features
            quantized = [_quantize_columns(hop)]
            for _ in range(self.model.k_hops):
                hop = np.asarray(operator @ hop)
                quantized.append(_quantize_columns(hop))
            self._quantized = quantized
        return self._quantized

    def _hop_block(self, k: int, cols: np.ndarray | None) -> np.ndarray:
        """Rows ``cols`` of hop ``k`` (all rows for ``cols=None``).

        This gather is the cache-blocking step of the frozen path: the
        SpMV's dense operand shrinks from the full ``(N, d)`` hop array to
        the contiguous block of rows the batch actually references.  In
        int8 mode the gathered rows are dequantized here — on gather —
        with the per-column calibration scale.
        """
        if self.precision == "int8":
            q, scale = self._quantized_hops()[k]
            return _dequantize(q[cols] if cols is not None else q, scale)
        hops = self.propagated_base_features()
        return hops[k][cols] if cols is not None else hops[k]

    def serve_batch_frozen(self, batch: IncrementalBatch,
                           batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Fast approximate serve: per-request work on incremental rows only.

        Freezes the base-block normalization at its standalone value (the
        classic serving approximation: arriving nodes read from the base
        graph but do not perturb it), so the cached propagated features
        substitute for the base-row forward.  Logits are close to — but
        not bitwise equal to — :meth:`serve_batch`; the exact path stays
        the default.

        The default (fused) kernels scale each block in a single CSR
        traversal (:func:`_fused_scale`, no materialized operator copies)
        and cache-block the base-row gather (:meth:`_hop_block`); the
        float64 fused path is bitwise identical to the unfused baseline
        (``fused=False``).  Reduced precision modes run this path in
        float32, dequantizing int8 hop caches on gather.
        """
        start = time.perf_counter()
        h, memory = self._frozen_hidden(batch, batch_mode)
        with stage_span("forward"), no_grad():
            logits = self.model.classifier(Tensor(h))
        elapsed = time.perf_counter() - start
        return logits.data, elapsed, memory

    def embed_batch_frozen(self, batch: IncrementalBatch,
                           batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Frozen-path embeddings: the K-hop hidden state pre-classifier.

        For SGC the embedding *is* the propagated feature block, so the
        frozen hidden state (:meth:`_frozen_hidden`) — computed with the
        identical fused kernels and fold order as
        :meth:`serve_batch_frozen` — is returned as-is, just without the
        classifier applied.
        """
        start = time.perf_counter()
        h, memory = self._frozen_hidden(batch, batch_mode)
        return h, time.perf_counter() - start, memory

    def _frozen_hidden(self, batch: IncrementalBatch,
                       batch_mode: str) -> tuple[np.ndarray, int]:
        """The frozen path up to (excluding) the classifier: ``(h, memory)``.

        Factored out so :meth:`serve_batch_frozen` and
        :meth:`embed_batch_frozen` share one implementation — every
        operation and its order is unchanged from the original frozen
        serve, so frozen logits remain bitwise stable.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        # validates the model and pays any first-touch calibration up front
        if self.precision == "int8":
            self._quantized_hops()
        else:
            self.propagated_base_features()
        self.model.eval()
        dtype = self._dtype
        with stage_span("operator"):
            new_feats = np.asarray(batch.features, dtype=dtype)
            n = new_feats.shape[0]
            inc = self._converted_incremental(batch.incremental, n)
            inc_nnz_raw = int(inc.nnz)  # before elimination, like attach_normalize
            inc.eliminate_zeros()
            intra = batch.intra if batch_mode == "graph" else None
            ea_raw = _canonical_csr(intra, (n, n), "intra adjacency")
            ea_loops = add_self_loops(ea_raw) if n else ea_raw

            # degrees of the *new* rows only (always float64 — masking
            # happens before the cast); base rows keep standalone scaling
            deg_new = (np.asarray(inc.sum(axis=1)).reshape(-1)
                       + np.asarray(ea_loops.sum(axis=1)).reshape(-1))
            inv_new = _inv_sqrt(deg_new).astype(dtype, copy=False)
            inv_base = self._standalone_inv_sqrt_degrees()

            nb_data = _fused_scale(inc, inv_new, inv_base, dtype)
            nn_data = _fused_scale(ea_loops, inv_new, inv_new, dtype)
            cols: np.ndarray | None = None
            if self._fused:
                # zero-copy views share the blocks' index structure
                op_nn = sp.csr_matrix(
                    (nn_data, ea_loops.indices, ea_loops.indptr),
                    shape=(n, n))
                gathered = np.unique(inc.indices)
                if gathered.size < self.num_base:
                    # compress the column space onto the touched base rows
                    cols = gathered
                    local = np.searchsorted(cols, inc.indices)
                    op_nb = sp.csr_matrix((nb_data, local, inc.indptr),
                                          shape=(n, int(cols.size)))
                else:
                    op_nb = sp.csr_matrix((nb_data, inc.indices, inc.indptr),
                                          shape=inc.shape)
            else:
                # unfused baseline: materialized scaled operator copies,
                # full-width hop SpMVs — the bitwise reference
                op_nb = inc.copy()
                op_nb.data = nb_data
                op_nn = ea_loops.copy()
                op_nn.data = nn_data

        with stage_span("propagate"):
            h = new_feats
            for k in range(self.model.k_hops):
                h = op_nb @ self._hop_block(k, cols) + op_nn @ h
        memory = self._memory_bytes(n, inc_nnz_raw, int(ea_raw.nnz),
                                    self.num_base + n)
        return h, memory

    # ------------------------------------------------------------------
    # Streaming evolution (incremental cache refresh)
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta, *,
                    staleness_threshold: float = 0.25) -> DeltaRefreshReport:
        """Evolve the deployed base graph by one :class:`GraphDelta`.

        The base block (``base_loops``, row counts, features) is always
        updated by row splicing.  Materialized warm caches — the degree
        vector, the standalone normalized operator, the frozen-path
        scaling and the K-hop propagated features — are refreshed
        *incrementally*: only rows whose (per-hop) neighborhood touches
        the delta are recomputed.  When the affected row fraction exceeds
        ``staleness_threshold`` the materialized caches are rebuilt from
        scratch instead.  Either way the resulting state is bit-for-bit
        what a from-scratch ``PreparedDeployment`` on the post-delta
        graph would hold (the parity suite asserts this), so served
        logits are bitwise unchanged by the refresh strategy.

        Synthetic deployments serve through the mapping matrix and never
        hold the original graph; for them only node appends are
        streamable (the mapping gains zero rows, so requests may cite
        the new original-node ids) — edge or feature changes require
        recondensation and raise :class:`~repro.errors.ServingError`.
        """
        if not isinstance(delta, GraphDelta):
            raise ServingError(
                f"apply_delta needs a GraphDelta, got {type(delta).__name__}")
        if self.precision != "float64":
            raise ServingError(
                "streaming deltas require the float64 (bit-parity) "
                f"precision mode; this deployment was prepared with "
                f"precision={self.precision!r} — re-prepare with "
                "precision='float64' to ingest deltas")
        if not 0.0 <= staleness_threshold <= 1.0:
            raise ServingError(
                f"staleness_threshold must be in [0, 1], "
                f"got {staleness_threshold}")
        start = time.perf_counter()
        if delta.is_noop():
            return DeltaRefreshReport(
                mode="noop", seconds=time.perf_counter() - start,
                num_base=self.num_base, appended=0, touched_rows=0,
                affected_rows=0)
        if self.deployment == "synthetic":
            return self._apply_delta_synthetic(delta, start)

        if self._stream is None:
            self._stream = StreamingGraph(self.base)
        effect = self._stream.apply(delta)
        old_base = self.num_base
        self.base = effect.graph
        raw = effect.graph.adjacency
        new_n = effect.num_nodes
        touched = effect.touched_rows
        touched_existing = touched[touched < old_base]

        # --- base block: row splice (always incremental) --------------
        replaced = self._loops_block(effect.replaced_block, touched_existing,
                                     new_n)
        appended_block = (self._loops_block(
            effect.appended_block,
            np.arange(old_base, new_n, dtype=np.int64), new_n)
            if effect.appended else None)
        self.base_loops = splice_csr_rows(
            self.base_loops, touched_existing, replaced,
            num_cols=new_n, append=appended_block)
        self.num_base = new_n
        self._base_counts = np.diff(self.base_loops.indptr)
        self._raw_nnz = int(raw.nnz)
        self.base_features = np.ascontiguousarray(effect.graph.features)

        # --- derived caches -------------------------------------------
        materialized = (self._loop_degrees is not None
                        or self._base_operator is not None
                        or self._frozen_inv_base is not None
                        or self._propagated is not None)
        invalidated: list[str] = []
        if self._base_logits is not None:
            self._base_logits = None
            invalidated.append("warm_logits")
        if (self._base_embeddings is not None
                or self._embedding_index is not None):
            # the top-k matrix must never outlive the graph it indexed;
            # like the warm logits, embeddings are recomputed lazily
            # (never patched row-wise — BLAS row-subset products are not
            # bitwise reproducible)
            self.invalidate_embeddings()
            invalidated.append("embeddings")
        if not materialized:
            return DeltaRefreshReport(
                mode="incremental", seconds=time.perf_counter() - start,
                num_base=new_n, appended=effect.appended,
                touched_rows=int(touched.size), affected_rows=0,
                invalidated=tuple(invalidated))

        affected = self._affected_operator_rows(touched)
        if affected.size > staleness_threshold * new_n:
            refreshed = self._rebuild_caches()
            return DeltaRefreshReport(
                mode="rebuild", seconds=time.perf_counter() - start,
                num_base=new_n, appended=effect.appended,
                touched_rows=int(touched.size),
                affected_rows=int(affected.size),
                refreshed=refreshed, invalidated=tuple(invalidated))
        refreshed = self._refresh_caches(effect, touched, affected, old_base,
                                         touched_existing, replaced,
                                         appended_block)
        return DeltaRefreshReport(
            mode="incremental", seconds=time.perf_counter() - start,
            num_base=new_n, appended=effect.appended,
            touched_rows=int(touched.size), affected_rows=int(affected.size),
            refreshed=refreshed, invalidated=tuple(invalidated))

    def _apply_delta_synthetic(self, delta: GraphDelta,
                               start: float) -> DeltaRefreshReport:
        if (delta.add_edges.size or delta.remove_edges.size
                or delta.update_index is not None):
            raise ServingError(
                "a synthetic deployment serves through its mapping; "
                "streaming deltas may only append original-graph nodes "
                "(edge or feature changes to the original graph require "
                "recondensation)")
        m = delta.num_new_nodes
        if delta.add_features.shape[1] != self.feature_dim:
            raise GraphError(
                f"appended feature dim {delta.add_features.shape[1]} != "
                f"deployment feature dim {self.feature_dim}")
        self.mapping = sp.vstack(
            [self.mapping,
             sp.csr_matrix((m, self.mapping.shape[1]), dtype=np.float64)],
            format="csr")
        self._mapping_bytes = sparse_memory_bytes(self.mapping)
        return DeltaRefreshReport(
            mode="append-mapping", seconds=time.perf_counter() - start,
            num_base=self.num_base, appended=m, touched_rows=0,
            affected_rows=0, refreshed=("mapping",))

    def _loops_block(self, block: sp.csr_matrix | None, rows: np.ndarray,
                     width: int) -> sp.csr_matrix:
        """The ``add_self_loops(raw)`` content of ``rows``, built from the
        delta's rebuilt raw rows (``block``, same order): drop diagonal
        and explicit-zero entries, insert a 1.0 diagonal, column-sort —
        bit-identical to the rows of the full rebuild."""
        if rows.size == 0 or block is None:
            return sp.csr_matrix((0, width), dtype=np.float64)
        rep = np.repeat(np.arange(rows.size, dtype=np.int64),
                        np.diff(block.indptr))
        keep = (block.indices != rows[rep]) & (block.data != 0.0)
        cols = np.concatenate([block.indices[keep].astype(np.int64), rows])
        vals = np.concatenate([block.data[keep],
                               np.ones(rows.size, dtype=np.float64)])
        rowid = np.concatenate([rep[keep],
                                np.arange(rows.size, dtype=np.int64)])
        order = np.lexsort((cols, rowid))
        counts = np.bincount(rowid, minlength=rows.size)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        out = sp.csr_matrix((vals[order], cols[order], indptr),
                            shape=(rows.size, width))
        out.has_sorted_indices = True
        return out

    def _affected_operator_rows(self, touched: np.ndarray) -> np.ndarray:
        """Rows whose normalized-operator content the delta changes:
        the touched rows plus every row holding an entry in a touched
        column (their scale factor changed)."""
        mask = np.zeros(self.num_base, dtype=bool)
        mask[touched] = True
        return np.unique(np.concatenate(
            [touched, self._rows_with_columns_in(self.base_loops, mask)]))

    @staticmethod
    def _rows_with_columns_in(matrix: sp.csr_matrix,
                              mask: np.ndarray) -> np.ndarray:
        hit = mask[matrix.indices]
        rows = np.repeat(np.arange(matrix.shape[0], dtype=np.int64),
                         np.diff(matrix.indptr))
        return np.unique(rows[hit])

    def _respliced_operator(self, affected: np.ndarray,
                            old_base: int) -> sp.csr_matrix:
        """Row-wise operator refresh: unaffected rows copy their old data
        bytes (their entries and both scale factors are unchanged, so the
        bits are the fresh bits); affected rows are rescaled elementwise.
        O(affected nnz) flops plus one O(nnz) memcpy — no full rescale."""
        loops = self.base_loops
        old = self._base_operator
        inv_sqrt = _inv_sqrt(self._degrees())
        indptr = loops.indptr
        data = np.empty(int(indptr[-1]), dtype=np.float64)
        # Unaffected rows keep identical content; only their offsets
        # shifted (at touched rows).  Consecutive kept rows are therefore
        # contiguous in both data arrays — copy them as whole runs
        # between affected rows (a handful of bulk memcpys) instead of
        # entry-wise gathers.
        existing = affected[affected < old_base]
        run_starts = np.concatenate([[0], existing + 1])
        run_ends = np.concatenate([existing, [old_base]])
        for start_row, end_row in zip(run_starts, run_ends):
            if start_row < end_row:
                data[indptr[start_row]:indptr[end_row]] = (
                    old.data[old.indptr[start_row]:old.indptr[end_row]])
        if affected.size:
            pos = csr_row_positions(indptr, affected)
            counts = (indptr[affected + 1] - indptr[affected]).astype(np.int64)
            rows = np.repeat(affected, counts)
            data[pos] = ((inv_sqrt[rows] * loops.data[pos])
                         * inv_sqrt[loops.indices[pos]])
        operator = sp.csr_matrix((data, loops.indices, indptr),
                                 shape=loops.shape)
        operator.has_sorted_indices = True
        return operator

    def _rebuild_caches(self) -> tuple[str, ...]:
        """Full from-scratch rematerialization of whatever was built."""
        had_operator = self._base_operator is not None
        had_frozen = self._frozen_inv_base is not None
        had_propagated = self._propagated is not None
        had_degrees = self._loop_degrees is not None
        self._loop_degrees = None
        self._base_operator = None
        self._frozen_inv_base = None
        self._propagated = None
        self._hop_buffers = None
        refreshed = []
        if had_degrees:
            self._degrees()
            refreshed.append("degrees")
        if had_operator:
            self.base_operator()
            refreshed.append("operator")
        if had_frozen:
            self._standalone_inv_sqrt_degrees()
            refreshed.append("frozen_scale")
        if had_propagated:
            self.propagated_base_features()
            refreshed.append("propagated")
        return tuple(refreshed)

    def _refresh_caches(self, effect, touched: np.ndarray,
                        affected: np.ndarray, old_base: int,
                        touched_existing: np.ndarray,
                        replaced: sp.csr_matrix,
                        appended_block: sp.csr_matrix | None) -> tuple[str, ...]:
        """Row-wise refresh of the materialized caches (bit-exact)."""
        refreshed = []
        appended = self.num_base - old_base
        if self._loop_degrees is not None:
            degrees = self._loop_degrees
            if appended:
                degrees = np.concatenate(
                    [degrees, np.zeros(appended, dtype=np.float64)])
            else:
                degrees = degrees.copy()
            # the spliced blocks hold exactly the touched rows' content —
            # row sums come from them, no re-slice of base_loops needed
            degrees[touched_existing] = _reduceat_row_sums(
                replaced.data, replaced.indptr[:-1], np.diff(replaced.indptr))
            if appended_block is not None:
                degrees[old_base:] = _reduceat_row_sums(
                    appended_block.data, appended_block.indptr[:-1],
                    np.diff(appended_block.indptr))
            self._loop_degrees = degrees
            refreshed.append("degrees")
        if self._base_operator is not None:
            self._base_operator = self._respliced_operator(affected, old_base)
            refreshed.append("operator")
        if self._frozen_inv_base is not None:
            self._frozen_inv_base = _inv_sqrt(self._degrees())
            refreshed.append("frozen_scale")
        if self._propagated is not None:
            self._refresh_propagated(effect, affected, old_base)
            refreshed.append("propagated")
        return tuple(refreshed)

    def _refresh_propagated(self, effect, affected: np.ndarray,
                            old_base: int) -> None:
        """Per-hop refresh: a hop-``k`` row is recomputed when its
        operator row changed or a neighbor's hop-``k-1`` row changed —
        the delta's k-hop neighborhood, exactly.  Hop arrays are updated
        in place (or grown once per hop on node appends); untouched rows
        keep their bytes."""
        operator = self.base_operator()  # already refreshed
        old_hops = self._propagated
        grew = self.num_base > old_base
        if self._hop_buffers is None or len(self._hop_buffers) != len(old_hops):
            # the current hop arrays double as capacity-N buffers
            self._hop_buffers = list(old_hops)
        # Per-hop changed sets grow monotonically (the operator's
        # self-loops make every row its own neighbor), so the last hop's
        # set covers them all; recomputing a not-yet-changed row at an
        # earlier hop reproduces its value bit for bit (same inputs, same
        # per-row fold).  One row gather then serves every hop.
        prev_changed = effect.feature_rows
        changed = affected
        for _ in range(1, len(old_hops)):
            if prev_changed.size:
                mask = np.zeros(self.num_base, dtype=bool)
                mask[prev_changed] = True
                neighbor = self._rows_with_columns_in(operator, mask)
                changed = np.unique(np.concatenate([affected, neighbor]))
            prev_changed = changed
        gathered = operator[changed] if changed.size else None
        new_hops = [self.base_features]
        for k in range(1, len(old_hops)):
            if grew:
                buffer = self._hop_buffers[k]
                if buffer.shape[0] < self.num_base:
                    buffer = grow_buffer(buffer, self.num_base, 0)
                    buffer[:old_base] = old_hops[k]
                    self._hop_buffers[k] = buffer
                hop = buffer[:self.num_base]
            else:
                hop = old_hops[k]
            if gathered is not None:
                hop[changed] = gathered @ new_hops[k - 1]
            new_hops.append(hop)
        self._propagated = new_hops

    def __repr__(self) -> str:
        return (f"PreparedDeployment(deployment={self.deployment!r}, "
                f"base_nodes={self.num_base}, "
                f"model={type(self.model).__name__}, "
                f"precision={self.precision!r})")
