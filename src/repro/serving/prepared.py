"""Prepared-deployment cache: everything invariant across serving requests.

:class:`PreparedDeployment` is built once per deployed graph (typically
from a :class:`repro.api.DeploymentBundle`) and precomputes what the naive
serving path re-derives on every batch:

- the deployed base block with self-loops already applied, in canonical
  CSR form, plus its per-row entry counts and scatter positions — so the
  augmented operator of Eq. (3)/Eq. (11) is assembled by linear-time
  numpy scatters instead of a COO round-trip (``sp.bmat`` sorts);
- the base features cast to contiguous float64;
- the sparse mapping ``M`` (synthetic deployment) and its storage bytes;
- lazily, the standalone normalized operator of the deployed graph, its
  K-hop propagated features and base logits (``warm_base``) — the cache
  behind answering queries about *known* nodes with zero graph work and
  behind the frozen-base fast path.

Exactness contract
------------------
``attach_normalize`` reproduces, bit for bit, what the naive path

    symmetric_normalize(bmat([[base, inc.T], [inc, ea]]))

produces.  Two scipy details make this non-trivial and are deliberately
mirrored here:

1. ``csr.sum(axis=1)`` is ``np.add.reduceat`` over each row's stored data
   (pairwise summation), *not* a sequential fold — so degrees must be
   computed by ``reduceat`` over the merged row data, which requires
   assembling the merged structure first;
2. the normalization ``scale @ A @ scale`` multiplies every stored entry
   as ``(d_i^{-1/2} * a_ij) * d_j^{-1/2}``, which an elementwise scale of
   the merged data array reproduces exactly.

Because the assembled operator matches the naive one in stored order and
bit pattern, and model forwards fold in stored order, the served logits
are bitwise identical — verified by the parity tests.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError, InferenceError, ServingError
from repro.condense.base import CondensedGraph
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.graph.incremental import convert_connections
from repro.graph.ops import add_self_loops, symmetric_normalize
from repro.inference.engine import validate_deployment
from repro.nn.models import GNNModel, SGC
from repro.tensor.sparse import sparse_memory_bytes
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["PreparedDeployment"]


def _canonical_csr(matrix, shape: tuple[int, int], name: str) -> sp.csr_matrix:
    """Coerce to canonical float64 CSR (duplicates summed, sorted indices)."""
    if matrix is None:
        return sp.csr_matrix(shape, dtype=np.float64)
    if sp.issparse(matrix):
        csr = matrix.tocsr().astype(np.float64)
    else:
        csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
    if csr.shape != shape:
        raise GraphError(f"{name} has shape {csr.shape}, expected {shape}")
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


def _reduceat_row_sums(data: np.ndarray, indptr: np.ndarray,
                       counts: np.ndarray) -> np.ndarray:
    """Row sums exactly as ``scipy.sparse.csr_matrix.sum(axis=1)``.

    scipy's ``_minor_reduce`` runs ``np.add.reduceat`` at the start offset
    of every non-empty row; empty rows stay zero.  Pairwise summation makes
    this differ (in the last ulp) from a sequential fold, so the benchmark
    and the naive path must share this exact implementation.
    """
    out = np.zeros(counts.shape[0], dtype=np.float64)
    nonempty = np.flatnonzero(counts)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(data, indptr[nonempty])
    return out


def _inv_sqrt(degree: np.ndarray) -> np.ndarray:
    """``D^{-1/2}`` with zero-degree rows left at zero — the exact masking
    the naive ``symmetric_normalize`` applies (parity depends on it)."""
    inv = np.zeros_like(degree)
    positive = degree > 0
    inv[positive] = degree[positive] ** -0.5
    return inv


def _csr_storage_bytes(nnz: int, rows: int, cols: int) -> int:
    """Storage of a CSR matrix as scipy would build it (int32 indices when
    they fit, which mirrors ``sp.bmat``'s index-dtype choice)."""
    index_bytes = 4 if max(nnz, rows, cols) < np.iinfo(np.int32).max else 8
    return nnz * (8 + index_bytes) + (rows + 1) * index_bytes


class PreparedDeployment:
    """Request-invariant serving state for one deployed graph.

    Parameters mirror :class:`repro.inference.engine.InductiveServer`:
    a trained model, a ``deployment`` kind, and the graph it serves on.
    """

    def __init__(self, model: GNNModel, deployment: str, base: Graph | None,
                 condensed: CondensedGraph | None = None) -> None:
        validate_deployment(deployment, base, condensed)
        self.model = model
        self.deployment = deployment
        self.base = base
        self.condensed = condensed
        if deployment == "synthetic":
            raw = condensed.sparse_adjacency()
            raw_features = condensed.features
            self.mapping: sp.csr_matrix | None = condensed.mapping
        else:
            raw = base.adjacency.tocsr().astype(np.float64)
            raw_features = base.features
            self.mapping = None

        # --- request-invariant precomputation -------------------------
        raw.sum_duplicates()
        self._raw_nnz = int(raw.nnz)  # the naive attach keeps explicit zeros
        self.base_loops = add_self_loops(raw)
        self.base_loops.sort_indices()
        self.num_base = int(self.base_loops.shape[0])
        self._base_counts = np.diff(self.base_loops.indptr)
        self.base_features = np.ascontiguousarray(raw_features, dtype=np.float64)
        if self.base_features.shape[0] != self.num_base:
            raise GraphError(
                f"base features rows ({self.base_features.shape[0]}) != "
                f"base nodes ({self.num_base})")
        self._mapping_bytes = (sparse_memory_bytes(self.mapping)
                               if self.mapping is not None else 0)
        self.feature_dim = int(self.base_features.shape[1])
        # warm-base caches, built on first use (they cost one standalone
        # forward and are only needed by warm lookups / the frozen path)
        self._base_operator: sp.csr_matrix | None = None
        self._propagated: list[np.ndarray] | None = None
        self._base_logits: np.ndarray | None = None
        self._frozen_inv_base: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_bundle(cls, bundle) -> "PreparedDeployment":
        """Prepare a persisted :class:`repro.api.DeploymentBundle`."""
        return cls(bundle.model(), bundle.deployment, bundle.base,
                   bundle.condensed)

    # ------------------------------------------------------------------
    # Exact cached attach + normalize
    # ------------------------------------------------------------------
    def attach_normalize(self, incremental, new_features: np.ndarray,
                         intra=None) -> tuple[sp.csr_matrix, np.ndarray, int]:
        """``(operator, features, memory_bytes)`` for one batch.

        ``incremental`` is the raw ``(n, N)`` adjacency into the *original*
        graph; for synthetic deployments it is converted through the
        mapping (Eq. 11) first.  The operator and stacked features are
        bit-for-bit equal to normalizing the naive ``bmat`` assembly;
        ``memory_bytes`` mirrors the naive serving-footprint accounting.
        """
        new_feats = np.asarray(new_features, dtype=np.float64)
        if new_feats.ndim != 2 or new_feats.shape[1] != self.feature_dim:
            raise GraphError(
                f"feature dims differ: base {self.feature_dim} vs new "
                f"{new_feats.shape[1] if new_feats.ndim == 2 else new_feats.shape}")
        n = new_feats.shape[0]
        inc = self._converted_incremental(incremental, n)
        inc_nnz_raw = int(inc.nnz)
        inc.eliminate_zeros()  # the naive path eliminates after assembly
        ea_raw = _canonical_csr(intra, (n, n), "intra adjacency")
        ea_nnz_raw = int(ea_raw.nnz)
        if n:
            ea_loops = add_self_loops(ea_raw)
            ea_loops.sort_indices()
        else:
            ea_loops = ea_raw
        operator = self._assemble_normalized(inc, ea_loops)
        features = np.vstack([self.base_features, new_feats])
        memory = self._memory_bytes(n, inc_nnz_raw, ea_nnz_raw,
                                    features.shape[0])
        return operator, features, memory

    def _converted_incremental(self, incremental, n: int) -> sp.csr_matrix:
        if self.mapping is not None:
            expected = (n, int(self.mapping.shape[0]))
            if incremental is None:
                incremental = sp.csr_matrix(expected, dtype=np.float64)
            elif tuple(incremental.shape) != expected:
                raise GraphError(
                    f"incremental adjacency has shape {incremental.shape}, "
                    f"expected {expected}")
            # Convert the *raw* matrix: pre-canonicalizing would reorder the
            # ``a @ M`` accumulation and break bitwise parity with Eq. 11.
            converted = convert_connections(incremental, self.mapping)
            converted.sort_indices()
            return converted
        return _canonical_csr(incremental, (n, self.num_base),
                              "incremental adjacency")

    def _assemble_normalized(self, inc: sp.csr_matrix,
                             ea_loops: sp.csr_matrix) -> sp.csr_matrix:
        """Merge the four blocks row-wise and scale — no COO sort.

        Per-row layout matches the canonical (column-sorted) order of the
        naive assembly: base-block columns all precede incremental ones.
        """
        B, n = self.num_base, inc.shape[0]
        total = B + n
        incT = inc.T.tocsr()
        incT.sort_indices()
        counts_bn = np.diff(incT.indptr)
        counts_nb = np.diff(inc.indptr)
        counts_nn = np.diff(ea_loops.indptr)
        row_counts = np.concatenate([self._base_counts + counts_bn,
                                     counts_nb + counts_nn])
        indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)

        def scatter(block: sp.csr_matrix, row_start: int, col_offset: int,
                    lead: np.ndarray) -> None:
            if block.nnz == 0:
                return
            cnt = np.diff(block.indptr)
            starts = indptr[row_start:row_start + block.shape[0]] + lead
            within = (np.arange(block.nnz, dtype=np.int64)
                      - np.repeat(block.indptr[:-1].astype(np.int64), cnt))
            dest = within + np.repeat(starts, cnt)
            indices[dest] = block.indices + col_offset
            data[dest] = block.data

        scatter(self.base_loops, 0, 0, np.zeros(B, dtype=np.int64))
        scatter(incT, 0, B, self._base_counts.astype(np.int64))
        scatter(inc, B, 0, np.zeros(n, dtype=np.int64))
        scatter(ea_loops, B, B, counts_nb.astype(np.int64))

        degree = _reduceat_row_sums(data, indptr[:-1], row_counts)
        inv_sqrt = _inv_sqrt(degree)
        rows = np.repeat(np.arange(total, dtype=np.int64), row_counts)
        data = (inv_sqrt[rows] * data) * inv_sqrt[indices]
        operator = sp.csr_matrix((data, indices, indptr), shape=(total, total))
        operator.has_sorted_indices = True
        return operator

    def _memory_bytes(self, n: int, inc_nnz: int, ea_nnz: int,
                      feature_rows: int) -> int:
        """Serving footprint, matching the naive accounting bit for bit:
        raw augmented adjacency + features (+ mapping)."""
        attached_nnz = self._raw_nnz + 2 * inc_nnz + ea_nnz
        total = self.num_base + n
        memory = _csr_storage_bytes(attached_nnz, total, total)
        memory += feature_rows * self.feature_dim * 8
        return memory + self._mapping_bytes

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_batch(self, batch: IncrementalBatch,
                    batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Serve one batch; returns ``(logits, seconds, memory_bytes)``.

        Same contract — and bitwise the same logits — as
        :meth:`repro.inference.engine.InductiveServer.serve_batch`.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        self.model.eval()
        start = time.perf_counter()
        intra = batch.intra if batch_mode == "graph" else None
        operator, features, memory = self.attach_normalize(
            batch.incremental, batch.features, intra)
        with no_grad():
            logits = self.model(operator, Tensor(features))
        inductive = logits.data[self.num_base:]
        elapsed = time.perf_counter() - start
        return inductive, elapsed, memory

    # ------------------------------------------------------------------
    # Warm base cache (standalone graph, no inductive nodes)
    # ------------------------------------------------------------------
    def base_operator(self) -> sp.csr_matrix:
        """Standalone normalized operator of the deployed graph."""
        if self._base_operator is None:
            self._base_operator = symmetric_normalize(self.base_loops,
                                                      self_loops=False)
        return self._base_operator

    def warm_base(self) -> np.ndarray:
        """Logits of the deployed (known) nodes, computed once and cached.

        This is the zero-graph-work answer for requests about nodes the
        deployment already contains.
        """
        if self._base_logits is None:
            self.model.eval()
            with no_grad():
                out = self.model(self.base_operator(),
                                 Tensor(self.base_features))
            self._base_logits = out.data
        return self._base_logits

    def propagated_base_features(self) -> list[np.ndarray]:
        """``[X, ÂX, Â²X, ...]`` under the *standalone* normalization.

        Only defined for SGC-style linear propagation; this feeds the
        frozen-base fast path where per-request work touches nothing but
        the incremental rows.
        """
        if not isinstance(self.model, SGC):
            raise ServingError(
                "propagated-feature caching needs linear propagation (SGC); "
                f"got {type(self.model).__name__}")
        if self._propagated is None:
            operator = self.base_operator()
            hops = [self.base_features]
            for _ in range(self.model.k_hops):
                hops.append(np.asarray(operator @ hops[-1]))
            self._propagated = hops
        return self._propagated

    def _standalone_inv_sqrt_degrees(self) -> np.ndarray:
        """``D^{-1/2}`` of the standalone base graph — request-invariant,
        computed once for the frozen path."""
        if self._frozen_inv_base is None:
            degree = np.asarray(self.base_loops.sum(axis=1)).reshape(-1)
            self._frozen_inv_base = _inv_sqrt(degree)
        return self._frozen_inv_base

    def serve_batch_frozen(self, batch: IncrementalBatch,
                           batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Fast approximate serve: per-request work on incremental rows only.

        Freezes the base-block normalization at its standalone value (the
        classic serving approximation: arriving nodes read from the base
        graph but do not perturb it), so the cached propagated features
        substitute for the base-row forward.  Logits are close to — but
        not bitwise equal to — :meth:`serve_batch`; the exact path stays
        the default.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        hops = self.propagated_base_features()  # validates the model too
        self.model.eval()
        start = time.perf_counter()
        new_feats = np.asarray(batch.features, dtype=np.float64)
        n = new_feats.shape[0]
        inc = self._converted_incremental(batch.incremental, n)
        inc_nnz_raw = int(inc.nnz)  # before elimination, like attach_normalize
        inc.eliminate_zeros()
        intra = batch.intra if batch_mode == "graph" else None
        ea_raw = _canonical_csr(intra, (n, n), "intra adjacency")
        ea_loops = add_self_loops(ea_raw) if n else ea_raw

        # degrees of the *new* rows only; base rows keep standalone scaling
        deg_new = (np.asarray(inc.sum(axis=1)).reshape(-1)
                   + np.asarray(ea_loops.sum(axis=1)).reshape(-1))
        inv_new = _inv_sqrt(deg_new)
        inv_base = self._standalone_inv_sqrt_degrees()

        rows_nb = np.repeat(np.arange(n), np.diff(inc.indptr))
        op_nb = inc.copy()
        op_nb.data = (inv_new[rows_nb] * inc.data) * inv_base[inc.indices]
        rows_nn = np.repeat(np.arange(n), np.diff(ea_loops.indptr))
        op_nn = ea_loops.copy()
        op_nn.data = (inv_new[rows_nn] * ea_loops.data) * inv_new[ea_loops.indices]

        h = new_feats
        for k in range(self.model.k_hops):
            h = op_nb @ hops[k] + op_nn @ h
        with no_grad():
            logits = self.model.classifier(Tensor(h))
        elapsed = time.perf_counter() - start
        memory = self._memory_bytes(n, inc_nnz_raw, int(ea_raw.nnz),
                                    self.num_base + n)
        return logits.data, elapsed, memory

    def __repr__(self) -> str:
        return (f"PreparedDeployment(deployment={self.deployment!r}, "
                f"base_nodes={self.num_base}, "
                f"model={type(self.model).__name__})")
