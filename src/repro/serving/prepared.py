"""Prepared-deployment cache: everything invariant across serving requests.

:class:`PreparedDeployment` is built once per deployed graph (typically
from a :class:`repro.api.DeploymentBundle`) and precomputes what the naive
serving path re-derives on every batch:

- the deployed base block with self-loops already applied, in canonical
  CSR form, plus its per-row entry counts and scatter positions — so the
  augmented operator of Eq. (3)/Eq. (11) is assembled by linear-time
  numpy scatters instead of a COO round-trip (``sp.bmat`` sorts);
- the base features cast to contiguous float64;
- the sparse mapping ``M`` (synthetic deployment) and its storage bytes;
- lazily, the standalone normalized operator of the deployed graph, its
  K-hop propagated features and base logits (``warm_base``) — the cache
  behind answering queries about *known* nodes with zero graph work and
  behind the frozen-base fast path.

Exactness contract
------------------
``attach_normalize`` reproduces, bit for bit, what the naive path

    symmetric_normalize(bmat([[base, inc.T], [inc, ea]]))

produces.  Two scipy details make this non-trivial and are deliberately
mirrored here:

1. ``csr.sum(axis=1)`` is ``np.add.reduceat`` over each row's stored data
   (pairwise summation), *not* a sequential fold — so degrees must be
   computed by ``reduceat`` over the merged row data, which requires
   assembling the merged structure first;
2. the normalization ``scale @ A @ scale`` multiplies every stored entry
   as ``(d_i^{-1/2} * a_ij) * d_j^{-1/2}``, which an elementwise scale of
   the merged data array reproduces exactly.

Because the assembled operator matches the naive one in stored order and
bit pattern, and model forwards fold in stored order, the served logits
are bitwise identical — verified by the parity tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError, InferenceError, ServingError
from repro.condense.base import CondensedGraph
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.graph.incremental import convert_connections
from repro.graph.ops import add_self_loops
from repro.graph.stream import (
    GraphDelta,
    StreamingGraph,
    csr_row_positions,
    grow_buffer,
    splice_csr_rows,
)
from repro.inference.engine import validate_deployment
from repro.nn.models import GNNModel, SGC
from repro.telemetry import stage_span
from repro.tensor.sparse import sparse_memory_bytes
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["PreparedDeployment", "DeltaRefreshReport"]


@dataclass(frozen=True)
class DeltaRefreshReport:
    """What one :meth:`PreparedDeployment.apply_delta` call did.

    ``mode`` is ``"incremental"`` (touched rows respliced, materialized
    caches refreshed row-wise), ``"rebuild"`` (past the staleness
    threshold — materialized caches recomputed from scratch),
    ``"append-mapping"`` (synthetic deployment: mapping grew zero rows),
    or ``"noop"``.  ``refreshed`` names the caches brought up to date,
    ``invalidated`` the ones dropped for lazy recomputation (the warm
    base logits — a full model forward — are never patched in place
    because BLAS row-subset products are not bitwise reproducible).
    """

    mode: str
    seconds: float
    num_base: int
    appended: int
    touched_rows: int
    affected_rows: int
    refreshed: tuple[str, ...] = ()
    invalidated: tuple[str, ...] = ()


def _canonical_csr(matrix, shape: tuple[int, int], name: str) -> sp.csr_matrix:
    """Coerce to canonical float64 CSR (duplicates summed, sorted indices)."""
    if matrix is None:
        return sp.csr_matrix(shape, dtype=np.float64)
    if sp.issparse(matrix):
        csr = matrix.tocsr().astype(np.float64)
    else:
        csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
    if csr.shape != shape:
        raise GraphError(f"{name} has shape {csr.shape}, expected {shape}")
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


def _reduceat_row_sums(data: np.ndarray, indptr: np.ndarray,
                       counts: np.ndarray) -> np.ndarray:
    """Row sums exactly as ``scipy.sparse.csr_matrix.sum(axis=1)``.

    scipy's ``_minor_reduce`` runs ``np.add.reduceat`` at the start offset
    of every non-empty row; empty rows stay zero.  Pairwise summation makes
    this differ (in the last ulp) from a sequential fold, so the benchmark
    and the naive path must share this exact implementation.
    """
    out = np.zeros(counts.shape[0], dtype=np.float64)
    nonempty = np.flatnonzero(counts)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(data, indptr[nonempty])
    return out


def _inv_sqrt(degree: np.ndarray) -> np.ndarray:
    """``D^{-1/2}`` with zero-degree rows left at zero — the exact masking
    the naive ``symmetric_normalize`` applies (parity depends on it)."""
    inv = np.zeros_like(degree)
    positive = degree > 0
    inv[positive] = degree[positive] ** -0.5
    return inv


def _csr_storage_bytes(nnz: int, rows: int, cols: int) -> int:
    """Storage of a CSR matrix as scipy would build it (int32 indices when
    they fit, which mirrors ``sp.bmat``'s index-dtype choice)."""
    index_bytes = 4 if max(nnz, rows, cols) < np.iinfo(np.int32).max else 8
    return nnz * (8 + index_bytes) + (rows + 1) * index_bytes


class PreparedDeployment:
    """Request-invariant serving state for one deployed graph.

    Parameters mirror :class:`repro.inference.engine.InductiveServer`:
    a trained model, a ``deployment`` kind, and the graph it serves on.
    """

    def __init__(self, model: GNNModel, deployment: str, base: Graph | None,
                 condensed: CondensedGraph | None = None) -> None:
        validate_deployment(deployment, base, condensed)
        self.model = model
        self.deployment = deployment
        self.base = base
        self.condensed = condensed
        if deployment == "synthetic":
            raw = condensed.sparse_adjacency()
            raw_features = condensed.features
            self.mapping: sp.csr_matrix | None = condensed.mapping
        else:
            raw = base.adjacency.tocsr().astype(np.float64)
            raw_features = base.features
            self.mapping = None

        # --- request-invariant precomputation -------------------------
        raw.sum_duplicates()
        self._raw_nnz = int(raw.nnz)  # the naive attach keeps explicit zeros
        self.base_loops = add_self_loops(raw)
        self.base_loops.sort_indices()
        self.num_base = int(self.base_loops.shape[0])
        self._base_counts = np.diff(self.base_loops.indptr)
        self.base_features = np.ascontiguousarray(raw_features, dtype=np.float64)
        if self.base_features.shape[0] != self.num_base:
            raise GraphError(
                f"base features rows ({self.base_features.shape[0]}) != "
                f"base nodes ({self.num_base})")
        self._mapping_bytes = (sparse_memory_bytes(self.mapping)
                               if self.mapping is not None else 0)
        self.feature_dim = int(self.base_features.shape[1])
        # warm-base caches, built on first use (they cost one standalone
        # forward and are only needed by warm lookups / the frozen path)
        self._loop_degrees: np.ndarray | None = None
        self._base_operator: sp.csr_matrix | None = None
        self._propagated: list[np.ndarray] | None = None
        self._hop_buffers: list[np.ndarray] | None = None
        self._base_logits: np.ndarray | None = None
        self._frozen_inv_base: np.ndarray | None = None
        # the evolving view of the deployed graph, created on first delta
        self._stream: StreamingGraph | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_bundle(cls, bundle) -> "PreparedDeployment":
        """Prepare a persisted :class:`repro.api.DeploymentBundle`."""
        return cls(bundle.model(), bundle.deployment, bundle.base,
                   bundle.condensed)

    # ------------------------------------------------------------------
    # Exact cached attach + normalize
    # ------------------------------------------------------------------
    def attach_normalize(self, incremental, new_features: np.ndarray,
                         intra=None) -> tuple[sp.csr_matrix, np.ndarray, int]:
        """``(operator, features, memory_bytes)`` for one batch.

        ``incremental`` is the raw ``(n, N)`` adjacency into the *original*
        graph; for synthetic deployments it is converted through the
        mapping (Eq. 11) first.  The operator and stacked features are
        bit-for-bit equal to normalizing the naive ``bmat`` assembly;
        ``memory_bytes`` mirrors the naive serving-footprint accounting.
        """
        new_feats = np.asarray(new_features, dtype=np.float64)
        if new_feats.ndim != 2 or new_feats.shape[1] != self.feature_dim:
            raise GraphError(
                f"feature dims differ: base {self.feature_dim} vs new "
                f"{new_feats.shape[1] if new_feats.ndim == 2 else new_feats.shape}")
        n = new_feats.shape[0]
        inc = self._converted_incremental(incremental, n)
        inc_nnz_raw = int(inc.nnz)
        inc.eliminate_zeros()  # the naive path eliminates after assembly
        ea_raw = _canonical_csr(intra, (n, n), "intra adjacency")
        ea_nnz_raw = int(ea_raw.nnz)
        if n:
            ea_loops = add_self_loops(ea_raw)
            ea_loops.sort_indices()
        else:
            ea_loops = ea_raw
        operator = self._assemble_normalized(inc, ea_loops)
        features = np.vstack([self.base_features, new_feats])
        memory = self._memory_bytes(n, inc_nnz_raw, ea_nnz_raw,
                                    features.shape[0])
        return operator, features, memory

    def _converted_incremental(self, incremental, n: int) -> sp.csr_matrix:
        if self.mapping is not None:
            expected = (n, int(self.mapping.shape[0]))
            if incremental is None:
                incremental = sp.csr_matrix(expected, dtype=np.float64)
            elif tuple(incremental.shape) != expected:
                raise GraphError(
                    f"incremental adjacency has shape {incremental.shape}, "
                    f"expected {expected}")
            # Convert the *raw* matrix: pre-canonicalizing would reorder the
            # ``a @ M`` accumulation and break bitwise parity with Eq. 11.
            converted = convert_connections(incremental, self.mapping)
            converted.sort_indices()
            return converted
        return _canonical_csr(incremental, (n, self.num_base),
                              "incremental adjacency")

    def _assemble_normalized(self, inc: sp.csr_matrix,
                             ea_loops: sp.csr_matrix) -> sp.csr_matrix:
        """Merge the four blocks row-wise and scale — no COO sort.

        Per-row layout matches the canonical (column-sorted) order of the
        naive assembly: base-block columns all precede incremental ones.
        """
        B, n = self.num_base, inc.shape[0]
        total = B + n
        incT = inc.T.tocsr()
        incT.sort_indices()
        counts_bn = np.diff(incT.indptr)
        counts_nb = np.diff(inc.indptr)
        counts_nn = np.diff(ea_loops.indptr)
        row_counts = np.concatenate([self._base_counts + counts_bn,
                                     counts_nb + counts_nn])
        indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(row_counts, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)

        def scatter(block: sp.csr_matrix, row_start: int, col_offset: int,
                    lead: np.ndarray) -> None:
            if block.nnz == 0:
                return
            cnt = np.diff(block.indptr)
            starts = indptr[row_start:row_start + block.shape[0]] + lead
            within = (np.arange(block.nnz, dtype=np.int64)
                      - np.repeat(block.indptr[:-1].astype(np.int64), cnt))
            dest = within + np.repeat(starts, cnt)
            indices[dest] = block.indices + col_offset
            data[dest] = block.data

        scatter(self.base_loops, 0, 0, np.zeros(B, dtype=np.int64))
        scatter(incT, 0, B, self._base_counts.astype(np.int64))
        scatter(inc, B, 0, np.zeros(n, dtype=np.int64))
        scatter(ea_loops, B, B, counts_nb.astype(np.int64))

        degree = _reduceat_row_sums(data, indptr[:-1], row_counts)
        inv_sqrt = _inv_sqrt(degree)
        rows = np.repeat(np.arange(total, dtype=np.int64), row_counts)
        data = (inv_sqrt[rows] * data) * inv_sqrt[indices]
        operator = sp.csr_matrix((data, indices, indptr), shape=(total, total))
        operator.has_sorted_indices = True
        return operator

    def _memory_bytes(self, n: int, inc_nnz: int, ea_nnz: int,
                      feature_rows: int) -> int:
        """Serving footprint, matching the naive accounting bit for bit:
        raw augmented adjacency + features (+ mapping)."""
        attached_nnz = self._raw_nnz + 2 * inc_nnz + ea_nnz
        total = self.num_base + n
        memory = _csr_storage_bytes(attached_nnz, total, total)
        memory += feature_rows * self.feature_dim * 8
        return memory + self._mapping_bytes

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_batch(self, batch: IncrementalBatch,
                    batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Serve one batch; returns ``(logits, seconds, memory_bytes)``.

        Same contract — and bitwise the same logits — as
        :meth:`repro.inference.engine.InductiveServer.serve_batch`.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        self.model.eval()
        start = time.perf_counter()
        intra = batch.intra if batch_mode == "graph" else None
        # the sub-spans only reach a trace when the caller installed one
        # (use_trace); otherwise stage_span is a contextvar-read no-op
        with stage_span("operator"):
            operator, features, memory = self.attach_normalize(
                batch.incremental, batch.features, intra)
        with stage_span("forward"), no_grad():
            logits = self.model(operator, Tensor(features))
        inductive = logits.data[self.num_base:]
        elapsed = time.perf_counter() - start
        return inductive, elapsed, memory

    # ------------------------------------------------------------------
    # Warm base cache (standalone graph, no inductive nodes)
    # ------------------------------------------------------------------
    def _degrees(self) -> np.ndarray:
        """Row sums of ``base_loops`` — scipy's ``sum(axis=1)`` bit for bit
        (``reduceat`` pairwise summation), cached for incremental refresh."""
        if self._loop_degrees is None:
            self._loop_degrees = _reduceat_row_sums(
                self.base_loops.data, self.base_loops.indptr[:-1],
                self._base_counts)
        return self._loop_degrees

    def _scaled_operator(self, inv_sqrt: np.ndarray) -> sp.csr_matrix:
        """``D^{-1/2} (A+I) D^{-1/2}`` by elementwise scaling.

        Shares ``base_loops``' index structure (no sparse matmuls) and is
        bitwise identical to ``symmetric_normalize(base_loops,
        self_loops=False)``: the diagonal products multiply in the same
        ``(d_i^{-1/2} * a_ij) * d_j^{-1/2}`` order and preserve the
        canonical stored layout (asserted by the parity tests).
        """
        loops = self.base_loops
        rows = np.repeat(np.arange(self.num_base, dtype=np.int64),
                         self._base_counts)
        data = (inv_sqrt[rows] * loops.data) * inv_sqrt[loops.indices]
        operator = sp.csr_matrix((data, loops.indices, loops.indptr),
                                 shape=loops.shape)
        operator.has_sorted_indices = True
        return operator

    def base_operator(self) -> sp.csr_matrix:
        """Standalone normalized operator of the deployed graph."""
        if self._base_operator is None:
            self._base_operator = self._scaled_operator(
                _inv_sqrt(self._degrees()))
        return self._base_operator

    def warm_base(self) -> np.ndarray:
        """Logits of the deployed (known) nodes, computed once and cached.

        This is the zero-graph-work answer for requests about nodes the
        deployment already contains.
        """
        if self._base_logits is None:
            self.model.eval()
            with no_grad():
                out = self.model(self.base_operator(),
                                 Tensor(self.base_features))
            self._base_logits = out.data
        return self._base_logits

    def propagated_base_features(self) -> list[np.ndarray]:
        """``[X, ÂX, Â²X, ...]`` under the *standalone* normalization.

        Only defined for SGC-style linear propagation; this feeds the
        frozen-base fast path where per-request work touches nothing but
        the incremental rows.
        """
        if not isinstance(self.model, SGC):
            raise ServingError(
                "propagated-feature caching needs linear propagation (SGC); "
                f"got {type(self.model).__name__}")
        if self._propagated is None:
            operator = self.base_operator()
            hops = [self.base_features]
            for _ in range(self.model.k_hops):
                hops.append(np.asarray(operator @ hops[-1]))
            self._propagated = hops
            self._hop_buffers = None  # fresh arrays, no grown capacity yet
        return self._propagated

    def _standalone_inv_sqrt_degrees(self) -> np.ndarray:
        """``D^{-1/2}`` of the standalone base graph — request-invariant,
        computed once for the frozen path."""
        if self._frozen_inv_base is None:
            self._frozen_inv_base = _inv_sqrt(self._degrees())
        return self._frozen_inv_base

    def serve_batch_frozen(self, batch: IncrementalBatch,
                           batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Fast approximate serve: per-request work on incremental rows only.

        Freezes the base-block normalization at its standalone value (the
        classic serving approximation: arriving nodes read from the base
        graph but do not perturb it), so the cached propagated features
        substitute for the base-row forward.  Logits are close to — but
        not bitwise equal to — :meth:`serve_batch`; the exact path stays
        the default.
        """
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        hops = self.propagated_base_features()  # validates the model too
        self.model.eval()
        start = time.perf_counter()
        with stage_span("operator"):
            new_feats = np.asarray(batch.features, dtype=np.float64)
            n = new_feats.shape[0]
            inc = self._converted_incremental(batch.incremental, n)
            inc_nnz_raw = int(inc.nnz)  # before elimination, like attach_normalize
            inc.eliminate_zeros()
            intra = batch.intra if batch_mode == "graph" else None
            ea_raw = _canonical_csr(intra, (n, n), "intra adjacency")
            ea_loops = add_self_loops(ea_raw) if n else ea_raw

            # degrees of the *new* rows only; base rows keep standalone
            # scaling
            deg_new = (np.asarray(inc.sum(axis=1)).reshape(-1)
                       + np.asarray(ea_loops.sum(axis=1)).reshape(-1))
            inv_new = _inv_sqrt(deg_new)
            inv_base = self._standalone_inv_sqrt_degrees()

            rows_nb = np.repeat(np.arange(n), np.diff(inc.indptr))
            op_nb = inc.copy()
            op_nb.data = (inv_new[rows_nb] * inc.data) * inv_base[inc.indices]
            rows_nn = np.repeat(np.arange(n), np.diff(ea_loops.indptr))
            op_nn = ea_loops.copy()
            op_nn.data = ((inv_new[rows_nn] * ea_loops.data)
                          * inv_new[ea_loops.indices])

        with stage_span("forward"):
            h = new_feats
            for k in range(self.model.k_hops):
                h = op_nb @ hops[k] + op_nn @ h
            with no_grad():
                logits = self.model.classifier(Tensor(h))
        elapsed = time.perf_counter() - start
        memory = self._memory_bytes(n, inc_nnz_raw, int(ea_raw.nnz),
                                    self.num_base + n)
        return logits.data, elapsed, memory

    # ------------------------------------------------------------------
    # Streaming evolution (incremental cache refresh)
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta, *,
                    staleness_threshold: float = 0.25) -> DeltaRefreshReport:
        """Evolve the deployed base graph by one :class:`GraphDelta`.

        The base block (``base_loops``, row counts, features) is always
        updated by row splicing.  Materialized warm caches — the degree
        vector, the standalone normalized operator, the frozen-path
        scaling and the K-hop propagated features — are refreshed
        *incrementally*: only rows whose (per-hop) neighborhood touches
        the delta are recomputed.  When the affected row fraction exceeds
        ``staleness_threshold`` the materialized caches are rebuilt from
        scratch instead.  Either way the resulting state is bit-for-bit
        what a from-scratch ``PreparedDeployment`` on the post-delta
        graph would hold (the parity suite asserts this), so served
        logits are bitwise unchanged by the refresh strategy.

        Synthetic deployments serve through the mapping matrix and never
        hold the original graph; for them only node appends are
        streamable (the mapping gains zero rows, so requests may cite
        the new original-node ids) — edge or feature changes require
        recondensation and raise :class:`~repro.errors.ServingError`.
        """
        if not isinstance(delta, GraphDelta):
            raise ServingError(
                f"apply_delta needs a GraphDelta, got {type(delta).__name__}")
        if not 0.0 <= staleness_threshold <= 1.0:
            raise ServingError(
                f"staleness_threshold must be in [0, 1], "
                f"got {staleness_threshold}")
        start = time.perf_counter()
        if delta.is_noop():
            return DeltaRefreshReport(
                mode="noop", seconds=time.perf_counter() - start,
                num_base=self.num_base, appended=0, touched_rows=0,
                affected_rows=0)
        if self.deployment == "synthetic":
            return self._apply_delta_synthetic(delta, start)

        if self._stream is None:
            self._stream = StreamingGraph(self.base)
        effect = self._stream.apply(delta)
        old_base = self.num_base
        self.base = effect.graph
        raw = effect.graph.adjacency
        new_n = effect.num_nodes
        touched = effect.touched_rows
        touched_existing = touched[touched < old_base]

        # --- base block: row splice (always incremental) --------------
        replaced = self._loops_block(effect.replaced_block, touched_existing,
                                     new_n)
        appended_block = (self._loops_block(
            effect.appended_block,
            np.arange(old_base, new_n, dtype=np.int64), new_n)
            if effect.appended else None)
        self.base_loops = splice_csr_rows(
            self.base_loops, touched_existing, replaced,
            num_cols=new_n, append=appended_block)
        self.num_base = new_n
        self._base_counts = np.diff(self.base_loops.indptr)
        self._raw_nnz = int(raw.nnz)
        self.base_features = np.ascontiguousarray(effect.graph.features)

        # --- derived caches -------------------------------------------
        materialized = (self._loop_degrees is not None
                        or self._base_operator is not None
                        or self._frozen_inv_base is not None
                        or self._propagated is not None)
        invalidated: list[str] = []
        if self._base_logits is not None:
            self._base_logits = None
            invalidated.append("warm_logits")
        if not materialized:
            return DeltaRefreshReport(
                mode="incremental", seconds=time.perf_counter() - start,
                num_base=new_n, appended=effect.appended,
                touched_rows=int(touched.size), affected_rows=0,
                invalidated=tuple(invalidated))

        affected = self._affected_operator_rows(touched)
        if affected.size > staleness_threshold * new_n:
            refreshed = self._rebuild_caches()
            return DeltaRefreshReport(
                mode="rebuild", seconds=time.perf_counter() - start,
                num_base=new_n, appended=effect.appended,
                touched_rows=int(touched.size),
                affected_rows=int(affected.size),
                refreshed=refreshed, invalidated=tuple(invalidated))
        refreshed = self._refresh_caches(effect, touched, affected, old_base,
                                         touched_existing, replaced,
                                         appended_block)
        return DeltaRefreshReport(
            mode="incremental", seconds=time.perf_counter() - start,
            num_base=new_n, appended=effect.appended,
            touched_rows=int(touched.size), affected_rows=int(affected.size),
            refreshed=refreshed, invalidated=tuple(invalidated))

    def _apply_delta_synthetic(self, delta: GraphDelta,
                               start: float) -> DeltaRefreshReport:
        if (delta.add_edges.size or delta.remove_edges.size
                or delta.update_index is not None):
            raise ServingError(
                "a synthetic deployment serves through its mapping; "
                "streaming deltas may only append original-graph nodes "
                "(edge or feature changes to the original graph require "
                "recondensation)")
        m = delta.num_new_nodes
        if delta.add_features.shape[1] != self.feature_dim:
            raise GraphError(
                f"appended feature dim {delta.add_features.shape[1]} != "
                f"deployment feature dim {self.feature_dim}")
        self.mapping = sp.vstack(
            [self.mapping,
             sp.csr_matrix((m, self.mapping.shape[1]), dtype=np.float64)],
            format="csr")
        self._mapping_bytes = sparse_memory_bytes(self.mapping)
        return DeltaRefreshReport(
            mode="append-mapping", seconds=time.perf_counter() - start,
            num_base=self.num_base, appended=m, touched_rows=0,
            affected_rows=0, refreshed=("mapping",))

    def _loops_block(self, block: sp.csr_matrix | None, rows: np.ndarray,
                     width: int) -> sp.csr_matrix:
        """The ``add_self_loops(raw)`` content of ``rows``, built from the
        delta's rebuilt raw rows (``block``, same order): drop diagonal
        and explicit-zero entries, insert a 1.0 diagonal, column-sort —
        bit-identical to the rows of the full rebuild."""
        if rows.size == 0 or block is None:
            return sp.csr_matrix((0, width), dtype=np.float64)
        rep = np.repeat(np.arange(rows.size, dtype=np.int64),
                        np.diff(block.indptr))
        keep = (block.indices != rows[rep]) & (block.data != 0.0)
        cols = np.concatenate([block.indices[keep].astype(np.int64), rows])
        vals = np.concatenate([block.data[keep],
                               np.ones(rows.size, dtype=np.float64)])
        rowid = np.concatenate([rep[keep],
                                np.arange(rows.size, dtype=np.int64)])
        order = np.lexsort((cols, rowid))
        counts = np.bincount(rowid, minlength=rows.size)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        out = sp.csr_matrix((vals[order], cols[order], indptr),
                            shape=(rows.size, width))
        out.has_sorted_indices = True
        return out

    def _affected_operator_rows(self, touched: np.ndarray) -> np.ndarray:
        """Rows whose normalized-operator content the delta changes:
        the touched rows plus every row holding an entry in a touched
        column (their scale factor changed)."""
        mask = np.zeros(self.num_base, dtype=bool)
        mask[touched] = True
        return np.unique(np.concatenate(
            [touched, self._rows_with_columns_in(self.base_loops, mask)]))

    @staticmethod
    def _rows_with_columns_in(matrix: sp.csr_matrix,
                              mask: np.ndarray) -> np.ndarray:
        hit = mask[matrix.indices]
        rows = np.repeat(np.arange(matrix.shape[0], dtype=np.int64),
                         np.diff(matrix.indptr))
        return np.unique(rows[hit])

    def _respliced_operator(self, affected: np.ndarray,
                            old_base: int) -> sp.csr_matrix:
        """Row-wise operator refresh: unaffected rows copy their old data
        bytes (their entries and both scale factors are unchanged, so the
        bits are the fresh bits); affected rows are rescaled elementwise.
        O(affected nnz) flops plus one O(nnz) memcpy — no full rescale."""
        loops = self.base_loops
        old = self._base_operator
        inv_sqrt = _inv_sqrt(self._degrees())
        indptr = loops.indptr
        data = np.empty(int(indptr[-1]), dtype=np.float64)
        # Unaffected rows keep identical content; only their offsets
        # shifted (at touched rows).  Consecutive kept rows are therefore
        # contiguous in both data arrays — copy them as whole runs
        # between affected rows (a handful of bulk memcpys) instead of
        # entry-wise gathers.
        existing = affected[affected < old_base]
        run_starts = np.concatenate([[0], existing + 1])
        run_ends = np.concatenate([existing, [old_base]])
        for start_row, end_row in zip(run_starts, run_ends):
            if start_row < end_row:
                data[indptr[start_row]:indptr[end_row]] = (
                    old.data[old.indptr[start_row]:old.indptr[end_row]])
        if affected.size:
            pos = csr_row_positions(indptr, affected)
            counts = (indptr[affected + 1] - indptr[affected]).astype(np.int64)
            rows = np.repeat(affected, counts)
            data[pos] = ((inv_sqrt[rows] * loops.data[pos])
                         * inv_sqrt[loops.indices[pos]])
        operator = sp.csr_matrix((data, loops.indices, indptr),
                                 shape=loops.shape)
        operator.has_sorted_indices = True
        return operator

    def _rebuild_caches(self) -> tuple[str, ...]:
        """Full from-scratch rematerialization of whatever was built."""
        had_operator = self._base_operator is not None
        had_frozen = self._frozen_inv_base is not None
        had_propagated = self._propagated is not None
        had_degrees = self._loop_degrees is not None
        self._loop_degrees = None
        self._base_operator = None
        self._frozen_inv_base = None
        self._propagated = None
        self._hop_buffers = None
        refreshed = []
        if had_degrees:
            self._degrees()
            refreshed.append("degrees")
        if had_operator:
            self.base_operator()
            refreshed.append("operator")
        if had_frozen:
            self._standalone_inv_sqrt_degrees()
            refreshed.append("frozen_scale")
        if had_propagated:
            self.propagated_base_features()
            refreshed.append("propagated")
        return tuple(refreshed)

    def _refresh_caches(self, effect, touched: np.ndarray,
                        affected: np.ndarray, old_base: int,
                        touched_existing: np.ndarray,
                        replaced: sp.csr_matrix,
                        appended_block: sp.csr_matrix | None) -> tuple[str, ...]:
        """Row-wise refresh of the materialized caches (bit-exact)."""
        refreshed = []
        appended = self.num_base - old_base
        if self._loop_degrees is not None:
            degrees = self._loop_degrees
            if appended:
                degrees = np.concatenate(
                    [degrees, np.zeros(appended, dtype=np.float64)])
            else:
                degrees = degrees.copy()
            # the spliced blocks hold exactly the touched rows' content —
            # row sums come from them, no re-slice of base_loops needed
            degrees[touched_existing] = _reduceat_row_sums(
                replaced.data, replaced.indptr[:-1], np.diff(replaced.indptr))
            if appended_block is not None:
                degrees[old_base:] = _reduceat_row_sums(
                    appended_block.data, appended_block.indptr[:-1],
                    np.diff(appended_block.indptr))
            self._loop_degrees = degrees
            refreshed.append("degrees")
        if self._base_operator is not None:
            self._base_operator = self._respliced_operator(affected, old_base)
            refreshed.append("operator")
        if self._frozen_inv_base is not None:
            self._frozen_inv_base = _inv_sqrt(self._degrees())
            refreshed.append("frozen_scale")
        if self._propagated is not None:
            self._refresh_propagated(effect, affected, old_base)
            refreshed.append("propagated")
        return tuple(refreshed)

    def _refresh_propagated(self, effect, affected: np.ndarray,
                            old_base: int) -> None:
        """Per-hop refresh: a hop-``k`` row is recomputed when its
        operator row changed or a neighbor's hop-``k-1`` row changed —
        the delta's k-hop neighborhood, exactly.  Hop arrays are updated
        in place (or grown once per hop on node appends); untouched rows
        keep their bytes."""
        operator = self.base_operator()  # already refreshed
        old_hops = self._propagated
        grew = self.num_base > old_base
        if self._hop_buffers is None or len(self._hop_buffers) != len(old_hops):
            # the current hop arrays double as capacity-N buffers
            self._hop_buffers = list(old_hops)
        # Per-hop changed sets grow monotonically (the operator's
        # self-loops make every row its own neighbor), so the last hop's
        # set covers them all; recomputing a not-yet-changed row at an
        # earlier hop reproduces its value bit for bit (same inputs, same
        # per-row fold).  One row gather then serves every hop.
        prev_changed = effect.feature_rows
        changed = affected
        for _ in range(1, len(old_hops)):
            if prev_changed.size:
                mask = np.zeros(self.num_base, dtype=bool)
                mask[prev_changed] = True
                neighbor = self._rows_with_columns_in(operator, mask)
                changed = np.unique(np.concatenate([affected, neighbor]))
            prev_changed = changed
        gathered = operator[changed] if changed.size else None
        new_hops = [self.base_features]
        for k in range(1, len(old_hops)):
            if grew:
                buffer = self._hop_buffers[k]
                if buffer.shape[0] < self.num_base:
                    buffer = grow_buffer(buffer, self.num_base, 0)
                    buffer[:old_base] = old_hops[k]
                    self._hop_buffers[k] = buffer
                hop = buffer[:self.num_base]
            else:
                hop = old_hops[k]
            if gathered is not None:
                hop[changed] = gathered @ new_hops[k - 1]
            new_hops.append(hop)
        self._propagated = new_hops

    def __repr__(self) -> str:
        return (f"PreparedDeployment(deployment={self.deployment!r}, "
                f"base_nodes={self.num_base}, "
                f"model={type(self.model).__name__})")
