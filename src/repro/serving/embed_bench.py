"""The embedding/task-serving benchmark behind ``repro bench-embed``.

Measures, on a simulated dataset deployed on its original graph, what
the task-typed serving surface exists for:

- **per-task throughput** — the same closed-loop request replay served
  as ``predict``, ``embed``, and ``topk`` tasks through
  :meth:`~repro.serving.prepared.PreparedDeployment.serve_task`;
  requests/s per task, plus the embed/topk ratios against predict.
- **index speedup** — top-k queries answered from the precomputed
  (memory-mapped sidecar) :class:`~repro.serving.embeddings.EmbeddingIndex`
  versus a baseline that recomputes the base embedding matrix for every
  query; the wall-clock ratio is the headline number and the CI gate
  (``>= 2x``).
- **link-prediction holdout** — an inductive edge-holdout AUC via
  :func:`~repro.serving.embeddings.evaluate_link_holdout`: held-out
  incremental edges must score above sampled non-edges by a recorded
  margin over the 0.5 coin-flip floor.
- **delta invalidation** — a delta trace applied to a deployment whose
  (stale, mmap-attached) index predates the deltas; after every delta
  the served top-k rows and embeddings are compared against a
  from-scratch prepare on the evolved graph.  The gate requires zero
  stale rows.

The result is a machine-readable dict written to ``BENCH_embed.json`` —
the repo's task-serving trajectory across commits.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.errors import ServingError
from repro.graph.stream import make_delta_trace
from repro.serving.embeddings import (
    EmbeddingIndex,
    ServeTask,
    evaluate_link_holdout,
    sidecar_index_path,
)
from repro.serving.prepared import PreparedDeployment
from repro.serving.stream_bench import _pad_incremental
from repro.serving.workload import split_requests
from repro.utils.reports import require_keys, write_benchmark_json

__all__ = ["EMBED_BENCH_SCHEMA_VERSION", "run_embed_benchmark",
           "check_embed_benchmark_schema", "gate_embed_benchmark",
           "write_benchmark_json"]

EMBED_BENCH_SCHEMA_VERSION = 1


def _replay_tasks(prepared: PreparedDeployment, requests, task: str, *,
                  k: int, batch_mode: str) -> tuple[float, int]:
    """Serve every request as ``task`` closed-loop; (seconds, count)."""
    started = perf_counter()
    for batch in requests:
        prepared.serve_task(ServeTask(batch=batch, task=task, k=k),
                            batch_mode=batch_mode)
    return perf_counter() - started, len(requests)


def _throughput_section(prepared: PreparedDeployment, requests, *,
                        k: int, batch_mode: str) -> dict:
    prepared.base_embeddings()  # warm once; steady-state rates below
    rates = {}
    for task in ("predict", "embed", "topk"):
        seconds, count = _replay_tasks(prepared, requests, task,
                                       k=k, batch_mode=batch_mode)
        rates[f"{task}_rps"] = count / max(seconds, 1e-12)
    rates["embed_vs_predict"] = rates["embed_rps"] / rates["predict_rps"]
    rates["topk_vs_predict"] = rates["topk_rps"] / rates["predict_rps"]
    return rates


def _index_section(bundle, requests, *, k: int, batch_mode: str) -> dict:
    """Precomputed-mmap-index top-k vs recomputing embeddings per query.

    Both paths answer the same queries from the same (pre-embedded)
    request vectors — the timed region isolates what the index is for:
    answering a top-k query from the ready matrix versus paying a full
    base ``embed()`` forward plus index construction per query.
    """
    prepared = bundle.prepare()
    queries = [prepared.embed_batch(batch, batch_mode)[0]
               for batch in requests]
    with tempfile.TemporaryDirectory(prefix="repro-embed-") as temp_dir:
        # the PR 5 artifact layout: the index rides next to the .npz
        artifact = Path(temp_dir) / "deployment.npz"
        sidecar = sidecar_index_path(artifact)
        EmbeddingIndex(prepared.base_embeddings()).save(sidecar)
        index = EmbeddingIndex.load(sidecar, mmap=True)
        started = perf_counter()
        for query in queries:
            index.packed_topk(query, k)
        indexed_seconds = perf_counter() - started
        baseline = bundle.prepare()
        started = perf_counter()
        for query in queries:
            baseline.invalidate_embeddings()
            baseline.embedding_index().packed_topk(query, k)
        recompute_seconds = perf_counter() - started
    return {
        "indexed_ms_total": indexed_seconds * 1e3,
        "recompute_ms_total": recompute_seconds * 1e3,
        "speedup": recompute_seconds / max(indexed_seconds, 1e-12),
        "mmap": True,
    }


def _invalidation_section(bundle, request_pool, delta_pool, *, k: int,
                          batch_mode: str, num_deltas: int,
                          nodes_per_delta: int, edges_per_delta: int,
                          removals_per_delta: int, updates_per_delta: int,
                          seed: int) -> dict:
    """Apply a delta trace; count top-k rows that cite the stale index."""
    prepared = bundle.prepare()
    with tempfile.TemporaryDirectory(prefix="repro-embed-") as temp_dir:
        sidecar = sidecar_index_path(Path(temp_dir) / "deployment.npz")
        EmbeddingIndex(prepared.base_embeddings()).save(sidecar)
        # attach the mmap sidecar so the trace exercises the hardest
        # invalidation case: a shared, precomputed, pre-delta matrix
        prepared.attach_embedding_index(
            EmbeddingIndex.load(sidecar, mmap=True))
        trace = make_delta_trace(
            bundle.base, delta_pool, num_deltas=num_deltas,
            nodes_per_delta=nodes_per_delta,
            edges_per_delta=edges_per_delta,
            removals_per_delta=removals_per_delta,
            updates_per_delta=updates_per_delta, seed=seed)
        probe = request_pool.subset(
            np.arange(min(4, request_pool.num_nodes)))
        stale_rows = 0
        embed_parity = True
        deltas = 0
        for delta in trace:
            prepared.apply_delta(delta)
            deltas += 1
            fresh = PreparedDeployment(bundle.model(), "original",
                                       prepared.base)
            padded = _pad_incremental(probe, prepared.num_base)
            task = ServeTask(batch=padded, task="topk",
                             k=min(k, prepared.num_base))
            served, _, _ = prepared.serve_task(task, batch_mode=batch_mode)
            expected, _, _ = fresh.serve_task(task, batch_mode=batch_mode)
            stale_rows += int(sum(
                not np.array_equal(served[row], expected[row])
                for row in range(served.shape[0])))
            got, _, _ = prepared.embed_batch(padded, batch_mode)
            want, _, _ = fresh.embed_batch(padded, batch_mode)
            embed_parity &= np.array_equal(got, want)
    return {"deltas": deltas, "stale_topk_rows": stale_rows,
            "embed_parity": embed_parity}


def run_embed_benchmark(dataset: str = "pubmed-sim", *,
                        method: str = "mcond", budget: int | None = None,
                        seed: int = 0, scale: float = 1.0,
                        profile: str | None = "quick",
                        num_requests: int = 32, nodes_per_request: int = 2,
                        k: int = 5, holdout_pairs: int = 64,
                        scorer: str = "dot",
                        num_deltas: int = 4, nodes_per_delta: int = 2,
                        edges_per_delta: int = 3,
                        removals_per_delta: int = 1,
                        updates_per_delta: int = 1,
                        batch_mode: str = "node") -> dict:
    """Run the embed benchmark end to end; returns the JSON-ready dict."""
    from repro import api  # local import: serving stays facade-independent
    from repro.experiments import dataset_budgets

    if budget is None:
        budget = dataset_budgets(dataset)[-1]
    bundle = api.deploy(dataset, method, budget, deployment="original",
                        seed=seed, scale=scale, profile=profile)
    batch = api.evaluation_batch(bundle)
    reserved = num_deltas * nodes_per_delta
    if reserved >= batch.num_nodes:
        raise ServingError(
            f"delta trace wants {reserved} nodes but the evaluation batch "
            f"holds {batch.num_nodes}; lower num_deltas/nodes_per_delta")
    delta_pool = batch.subset(np.arange(reserved))
    request_pool = batch.subset(np.arange(reserved, batch.num_nodes))
    requests = split_requests(request_pool, num_requests, nodes_per_request)

    prepared = bundle.prepare()
    k = min(k, prepared.num_base)
    throughput = _throughput_section(prepared, requests, k=k,
                                     batch_mode=batch_mode)
    index = _index_section(bundle, requests, k=k, batch_mode=batch_mode)
    link = evaluate_link_holdout(bundle.prepare(), request_pool,
                                 num_pairs=holdout_pairs, scorer=scorer,
                                 batch_mode=batch_mode, seed=seed)
    invalidation = _invalidation_section(
        bundle, request_pool, delta_pool, k=k, batch_mode=batch_mode,
        num_deltas=num_deltas, nodes_per_delta=nodes_per_delta,
        edges_per_delta=edges_per_delta,
        removals_per_delta=removals_per_delta,
        updates_per_delta=updates_per_delta, seed=seed)

    return {
        "schema_version": EMBED_BENCH_SCHEMA_VERSION,
        "kind": "embed-benchmark",
        "dataset": dataset,
        "method": method,
        "budget": budget,
        "seed": seed,
        "scale": scale,
        "batch_mode": batch_mode,
        "k": k,
        "num_requests": num_requests,
        "nodes_per_request": nodes_per_request,
        "holdout_pairs": holdout_pairs,
        "num_deltas": num_deltas,
        "throughput": throughput,
        "index": index,
        "link_prediction": link,
        "invalidation": invalidation,
    }


def check_embed_benchmark_schema(result: dict) -> None:
    """Validate the benchmark dict's shape; raises ServingError on drift."""
    top = ("schema_version", "kind", "dataset", "method", "budget", "seed",
           "scale", "batch_mode", "k", "num_requests", "nodes_per_request",
           "holdout_pairs", "num_deltas", "throughput", "index",
           "link_prediction", "invalidation")
    require_keys(result, top, "embed benchmark result", ServingError)
    if result["kind"] != "embed-benchmark":
        raise ServingError(f"unexpected benchmark kind {result['kind']!r}")
    require_keys(result["throughput"],
                 ("predict_rps", "embed_rps", "topk_rps",
                  "embed_vs_predict", "topk_vs_predict"),
                 "throughput section", ServingError)
    require_keys(result["index"],
                 ("indexed_ms_total", "recompute_ms_total", "speedup",
                  "mmap"),
                 "index section", ServingError)
    require_keys(result["link_prediction"],
                 ("auc", "num_positive", "num_negative", "scorer",
                  "seconds"),
                 "link_prediction section", ServingError)
    require_keys(result["invalidation"],
                 ("deltas", "stale_topk_rows", "embed_parity"),
                 "invalidation section", ServingError)


def gate_embed_benchmark(result: dict, min_index_speedup: float = 2.0,
                         auc_margin: float = 0.05) -> list[str]:
    """Perf-gate checks; returns human-readable failure strings (empty =
    green).  The gate is the tentpole's contract: the precomputed index
    must beat per-query recomputation, link scores must carry signal,
    and a delta must never leave a stale top-k row behind."""
    check_embed_benchmark_schema(result)
    failures = []
    speedup = result["index"]["speedup"]
    if speedup < min_index_speedup:
        failures.append(
            f"top-k from the precomputed index is not faster than "
            f"recomputing embeddings per query "
            f"({speedup:.2f}x < {min_index_speedup:.2f}x)")
    floor = 0.5 + auc_margin
    auc = result["link_prediction"]["auc"]
    if auc < floor:
        failures.append(
            f"link-prediction holdout AUC {auc:.3f} is below the "
            f"{floor:.3f} floor (0.5 + {auc_margin:.3f} margin)")
    stale = result["invalidation"]["stale_topk_rows"]
    if stale != 0:
        failures.append(
            f"{stale} top-k rows still cited the pre-delta index after "
            f"apply_delta (expected zero stale rows)")
    if not result["invalidation"]["embed_parity"]:
        failures.append(
            "post-delta embeddings drifted from a from-scratch prepare "
            "(bitwise parity broken)")
    return failures
