"""Horizontally-scaled serving: a fleet of replica processes, one router.

One :class:`~repro.serving.runtime.ServingRuntime` owns one
:class:`~repro.serving.prepared.PreparedDeployment` in one process — the
single-host deployment shape.  This module is the fleet shape behind the
ROADMAP's "heavy traffic" north star: ``N`` replica *processes*, each
holding a prepared deployment built over the same memory-mapped artifact
(so the big arrays live once in the host's page cache, not ``N`` times),
behind a router with pluggable balancing policies.

The moving parts:

- :class:`ReplicaPool` — spawns/respawns the worker processes, watches
  their health, and drains them one at a time for hot swaps;
- :class:`Router` policies (:data:`repro.registry.ROUTERS`):
  ``round-robin``, ``least-loaded``, and ``consistent-hash`` on an
  optional per-request key;
- :class:`ServingFleet` — the public facade: ``submit`` returns a
  :class:`FleetFuture`; a killed replica's in-flight requests are
  re-routed to survivors and the pool respawns the dead slot;
  ``swap(artifact)`` rolls a new artifact across the fleet with zero
  dropped traffic.

Every request is served as its own batch by exactly one replica, so the
returned results are bitwise identical to
``PreparedDeployment.serve_task`` on the same request — which replica
answers (and every failover re-route) is invisible in the outputs.
Requests are task-typed :class:`~repro.serving.embeddings.ServeTask`
objects (``predict`` | ``embed`` | ``link_score`` | ``topk``); replicas
attach the artifact's memory-mapped embedding-index sidecar when one
sits next to the ``.npz``, so ``topk`` never recomputes the base matrix.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue as _queue
import threading
import time
import warnings
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
from repro.inference.benchmark import latency_percentiles
from repro.registry import make_router, register_router
from repro.serving.embeddings import ServeTask, _legacy_batch
from repro.serving.runtime import ServingFuture
from repro.serving.stats import RequestRecord
from repro.telemetry import (
    MetricsRegistry,
    TraceContext,
    TraceLog,
    use_trace,
)

__all__ = ["ServingFleet", "ReplicaPool", "FleetFuture", "Router",
           "RoundRobinRouter", "LeastLoadedRouter", "ConsistentHashRouter",
           "replay_fleet"]


# ----------------------------------------------------------------------
# Routing policies
# ----------------------------------------------------------------------
class Router:
    """Pick the replica that serves a request.

    ``select`` receives the request's optional ``key``, the ready replica
    ids (sorted, never empty), and the in-flight load per replica.  It
    must return one of the candidates.
    """

    name = "base"

    def select(self, key: str | None, candidates: list[int],
               loads: dict[int, int]) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinRouter(Router):
    """Cycle through the ready replicas in id order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, key: str | None, candidates: list[int],
               loads: dict[int, int]) -> int:
        choice = candidates[self._next % len(candidates)]
        self._next += 1
        return choice


class LeastLoadedRouter(Router):
    """Send each request to the replica with the fewest in-flight ones."""

    name = "least-loaded"

    def select(self, key: str | None, candidates: list[int],
               loads: dict[int, int]) -> int:
        return min(candidates, key=lambda rid: (loads.get(rid, 0), rid))


def _stable_hash(value: str) -> int:
    """Process-independent 64-bit hash (``hash()`` is salted per run)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRouter(Router):
    """Hash the request key onto a ring of replica virtual nodes.

    The same key lands on the same replica for as long as that replica is
    alive (session affinity for its warm caches); when the candidate set
    changes, only the keys that hashed to the lost/gained arcs move.
    Keyless requests fall back to round-robin.
    """

    name = "consistent-hash"

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes <= 0:
            raise ServingError(
                f"virtual_nodes must be positive, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._fallback = RoundRobinRouter()
        self._rings: dict[tuple[int, ...], tuple[list[int], list[int]]] = {}

    def _ring(self, candidates: list[int]) -> tuple[list[int], list[int]]:
        signature = tuple(candidates)
        if signature not in self._rings:
            points = []
            for rid in candidates:
                for v in range(self.virtual_nodes):
                    points.append((_stable_hash(f"replica-{rid}#{v}"), rid))
            points.sort()
            self._rings[signature] = ([p[0] for p in points],
                                      [p[1] for p in points])
        return self._rings[signature]

    def select(self, key: str | None, candidates: list[int],
               loads: dict[int, int]) -> int:
        if key is None:
            return self._fallback.select(key, candidates, loads)
        hashes, owners = self._ring(candidates)
        position = bisect_right(hashes, _stable_hash(str(key)))
        return owners[position % len(owners)]


@register_router("round-robin",
                 description="cycle through the ready replicas in id order")
def _round_robin(**_ignored) -> RoundRobinRouter:
    return RoundRobinRouter()


@register_router("least-loaded",
                 description="pick the replica with the fewest in-flight "
                             "requests")
def _least_loaded(**_ignored) -> LeastLoadedRouter:
    return LeastLoadedRouter()


@register_router("consistent-hash",
                 description="hash the request key onto a replica ring "
                             "(session affinity)")
def _consistent_hash(virtual_nodes: int = 64,
                     **_ignored) -> ConsistentHashRouter:
    return ConsistentHashRouter(virtual_nodes=virtual_nodes)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _replica_worker(replica_id: int, generation: int, artifact: str,
                    mmap_load: bool, batch_mode: str, precision: str | None,
                    inbox, outbox) -> None:
    """Load the artifact, announce readiness, then serve until ``stop``.

    Runs in a child process.  The bundle is loaded *here* — with
    ``mmap_load`` every replica maps the same file, sharing one page-cache
    copy of the stored arrays across the fleet.  ``precision`` overrides
    the numeric serving mode recorded in the artifact (``None`` keeps it).
    """
    started = time.perf_counter()
    try:
        from repro.api import DeploymentBundle
        from repro.serving.embeddings import (
            EmbeddingIndex,
            sidecar_index_path,
        )
        bundle = DeploymentBundle.load(artifact, mmap=mmap_load)
        prepared = bundle.prepare(precision=precision)
        sidecar = sidecar_index_path(artifact)
        if sidecar.exists():
            # one precomputed top-k matrix, memory-mapped by every
            # replica — the page cache holds the arrays once per host
            prepared.attach_embedding_index(
                EmbeddingIndex.load(sidecar, mmap=mmap_load))
        cold_start = time.perf_counter() - started
        outbox.put(("ready", replica_id, generation, cold_start))
    except BaseException as error:  # noqa: BLE001 — reported to the pool
        outbox.put(("fatal", replica_id, generation,
                    f"{type(error).__name__}: {error}"))
        return
    while True:
        message = inbox.get()
        if message[0] == "stop":
            return
        _, request_id, task, traced = message
        # dequeue timestamp: perf_counter is CLOCK_MONOTONIC on Linux, so
        # the parent can subtract its own submit stamp to get the true
        # dispatch (IPC + inbox wait) span for this request
        t_start = time.perf_counter()
        try:
            if traced:
                trace = TraceContext(trace_id=f"replica-{request_id}")
                with use_trace(trace):
                    result, seconds, _ = prepared.serve_task(
                        task, batch_mode=task.mode or batch_mode,
                        frozen=task.frozen)
                spans = tuple((span.stage, span.seconds)
                              for span in trace.spans)
            else:
                result, seconds, _ = prepared.serve_task(
                    task, batch_mode=task.mode or batch_mode,
                    frozen=task.frozen)
                spans = ()
            outbox.put(("done", replica_id, generation, request_id,
                        result, seconds, t_start, spans))
        except Exception as error:  # noqa: BLE001 — forwarded to the future
            outbox.put(("error", replica_id, generation, request_id,
                        f"{type(error).__name__}: {error}"))


# ----------------------------------------------------------------------
# Futures and bookkeeping
# ----------------------------------------------------------------------
class FleetFuture(ServingFuture):
    """Completion handle for one fleet request.

    Extends :class:`~repro.serving.runtime.ServingFuture` with the
    replica that answered and the number of dispatch attempts (1 unless
    failover re-routed the request).
    """

    def __init__(self) -> None:
        super().__init__()
        self.replica_id: int | None = None
        self.attempts: int = 0
        #: The request's :class:`~repro.telemetry.TraceContext` (``None``
        #: with telemetry off) — complete once the future resolves.
        self.trace: TraceContext | None = None


@dataclass
class _Pending:
    """Parent-side copy of an in-flight request (the failover source)."""

    request_id: int
    task: ServeTask
    key: str | None
    future: FleetFuture
    submitted_at: float
    replica_id: int | None = None
    attempts: int = 0
    trace: TraceContext | None = None
    owns_trace: bool = False  # fleet (not a gateway) finishes + logs it


@dataclass
class _Replica:
    """One replica slot: a worker process plus its dispatch state."""

    replica_id: int
    generation: int
    process: object
    inbox: object
    state: str = "starting"  # starting|ready|draining|stopping|dead
    inflight: set = field(default_factory=set)
    served: int = 0
    cold_start_seconds: float | None = None
    last_error: str | None = None
    spawn_failures: int = 0


class ReplicaPool:
    """Owns the replica processes: spawn, health, respawn, drain, stop.

    The pool knows nothing about requests — :class:`ServingFleet` layers
    dispatch and failover on top through the callbacks it registers.
    """

    def __init__(self, artifact: str | Path, size: int, *,
                 mmap: bool = True, batch_mode: str = "node",
                 start_method: str | None = None,
                 max_spawn_retries: int = 2,
                 precision: str | None = None) -> None:
        if size <= 0:
            raise ServingError(f"fleet size must be positive, got {size}")
        self.artifact = Path(artifact)
        self.size = size
        self.mmap = mmap
        self.batch_mode = batch_mode
        self.precision = precision
        self.max_spawn_retries = max_spawn_retries
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self.results = self._context.Queue()
        self.replicas: dict[int, _Replica] = {}
        self.respawns = 0
        for replica_id in range(size):
            self.replicas[replica_id] = self._spawn(replica_id, generation=0)

    # ------------------------------------------------------------------
    def _spawn(self, replica_id: int, generation: int) -> _Replica:
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_replica_worker,
            args=(replica_id, generation, str(self.artifact), self.mmap,
                  self.batch_mode, self.precision, inbox, self.results),
            name=f"repro-replica-{replica_id}", daemon=True)
        process.start()
        return _Replica(replica_id=replica_id, generation=generation,
                        process=process, inbox=inbox)

    @staticmethod
    def _discard_inbox(replica: _Replica) -> None:
        """Release an inbox whose reader is gone.

        Without ``cancel_join_thread`` the queue's feeder thread blocks
        interpreter exit trying to flush buffered requests into a pipe no
        process will ever read (the stranded requests were already
        re-dispatched from the parent-side copies).
        """
        try:
            replica.inbox.cancel_join_thread()
            replica.inbox.close()
        except (OSError, ValueError):
            pass

    def add_slot(self) -> _Replica:
        """Grow the pool by one fresh replica slot (autoscaling up).

        The new slot reuses the same spawn machinery as respawn/startup;
        the caller is responsible for waiting until it reports ready.
        """
        replica_id = max(self.replicas, default=-1) + 1
        replica = self._spawn(replica_id, generation=0)
        self.replicas[replica_id] = replica
        self.size += 1
        return replica

    def remove_slot(self, replica_id: int) -> None:
        """Forget a slot whose process was already stopped (scaling down)."""
        replica = self.replicas.pop(replica_id)
        if replica.state != "dead":
            raise ServingError(
                f"cannot remove replica {replica_id} in state "
                f"{replica.state!r}; stop it first")
        self.size -= 1

    def respawn(self, replica_id: int,
                artifact: str | Path | None = None) -> _Replica:
        """Replace a slot's process (after a crash or for a swap)."""
        old = self.replicas[replica_id]
        self._discard_inbox(old)
        if artifact is not None:
            self.artifact = Path(artifact)
        replica = self._spawn(replica_id, generation=old.generation + 1)
        replica.spawn_failures = old.spawn_failures
        self.replicas[replica_id] = replica
        self.respawns += 1
        return replica

    def ready_ids(self) -> list[int]:
        return sorted(rid for rid, r in self.replicas.items()
                      if r.state == "ready")

    def stop_replica(self, replica: _Replica, join_timeout: float = 5.0) -> None:
        """Graceful stop: the worker exits after its current request."""
        replica.state = "stopping"
        try:
            replica.inbox.put(("stop",))
        except (OSError, ValueError):
            pass  # queue already torn down with a dead process
        replica.process.join(timeout=join_timeout)
        if replica.process.is_alive():
            replica.process.terminate()
            replica.process.join(timeout=join_timeout)
        replica.state = "dead"
        self._discard_inbox(replica)

    def kill_replica(self, replica_id: int) -> None:
        """Fault injection: kill the worker process outright (SIGKILL).

        Used by the failover tests, the benchmark's failover phase, and
        operational drills — the monitor then re-routes the slot's
        in-flight requests and respawns it.
        """
        self.replicas[replica_id].process.kill()

    def stop_all(self, join_timeout: float = 5.0) -> None:
        for replica in self.replicas.values():
            if replica.state != "dead":
                self.stop_replica(replica, join_timeout)

    def __repr__(self) -> str:
        states = {rid: r.state for rid, r in sorted(self.replicas.items())}
        return (f"ReplicaPool(size={self.size}, mmap={self.mmap}, "
                f"states={states})")


# ----------------------------------------------------------------------
# The fleet facade
# ----------------------------------------------------------------------
class ServingFleet:
    """Serve requests across a pool of replica processes.

    Parameters
    ----------
    artifact:
        Path to a :class:`repro.api.DeploymentBundle` ``.npz``.  Save it
        with ``layout="mmap"`` so the replicas share the arrays through
        the page cache (``mmap=True`` is still safe — compressed members
        just load eagerly per replica).
    replicas:
        Number of worker processes.
    router:
        A :class:`Router` instance or a :data:`repro.registry.ROUTERS`
        key (``round-robin``, ``least-loaded``, ``consistent-hash``).
    batch_mode:
        ``"graph"`` or ``"node"`` — fixed per fleet, like a runtime.
    mmap:
        Memory-map the artifact in every replica (zero-copy load).
    max_retries:
        Dispatch attempts per request before its future fails (failover
        re-routes count against this).
    telemetry:
        Stamp a :class:`~repro.telemetry.TraceContext` on every request
        (per-stage spans, slow-request ring) and feed the per-stage
        latency histograms.  Off, only the exact volume counters and the
        wall-latency window remain — the uninstrumented baseline the
        telemetry-overhead gate compares against.
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` to report into
        (default: a private one, exposed as ``fleet.metrics``).
    slow_trace_ms:
        Threshold for the structured slow-request log line (``None``
        disables logging; the ring still retains traces for
        ``slowest``).
    """

    _POLL_SECONDS = 0.02

    def __init__(self, artifact: str | Path, replicas: int = 2, *,
                 router: Router | str = "round-robin",
                 batch_mode: str = "node", mmap: bool = True,
                 start_method: str | None = None, max_retries: int = 3,
                 start_timeout: float = 120.0,
                 latency_window: int = 4096, telemetry: bool = True,
                 metrics: MetricsRegistry | None = None,
                 trace_capacity: int = 256,
                 slow_trace_ms: float | None = None,
                 precision: str | None = None) -> None:
        if batch_mode not in ("graph", "node"):
            raise ServingError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        if isinstance(router, str):
            router = make_router(router)
        self.router = router
        self.batch_mode = batch_mode
        self.max_retries = max_retries
        self._lock = threading.RLock()
        self._pending: dict[int, _Pending] = {}
        self._orphans: deque[_Pending] = deque()
        self._request_ids = iter(range(1, 2**63))
        self._closing = threading.Event()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        #: Set by ``api.open_fleet`` when it persisted a temp artifact for
        #: an in-memory bundle; ``close`` then removes the file.
        self.owns_artifact = False
        self.telemetry = bool(telemetry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_log = TraceLog(capacity=trace_capacity,
                                  slow_ms=slow_trace_ms)
        # the volume counters are registry-backed (and exact regardless
        # of the telemetry flag); completed/failed/rerouted read them back
        self._requests_total = self.metrics.counter(
            "repro_fleet_requests_total",
            "Requests resolved by the fleet, by terminal outcome.",
            ("outcome",))
        self._replica_served = self.metrics.counter(
            "repro_fleet_replica_served_total",
            "Requests served, per replica slot.", ("replica",))
        self._replica_died = self.metrics.counter(
            "repro_fleet_replica_died_total",
            "Unannounced replica process deaths, per slot.", ("replica",))
        self._replica_respawned = self.metrics.counter(
            "repro_fleet_replica_respawned_total",
            "Replica process respawns (failover or swap), per slot.",
            ("replica",))
        self.metrics.gauge(
            "repro_fleet_queue_depth",
            "Requests admitted by the fleet but not yet resolved.",
            callback=self.queue_depth)
        self.metrics.gauge(
            "repro_fleet_replicas", "Replica slots in the pool.",
            callback=lambda: self.pool.size)
        self._stage_latency = self.metrics.histogram(
            "repro_stage_latency_seconds",
            "Per-stage request latency across the serving layers.",
            ("component", "stage"))
        self.pool = ReplicaPool(artifact, replicas, mmap=mmap,
                                batch_mode=batch_mode,
                                start_method=start_method,
                                precision=precision)
        self._collector = threading.Thread(target=self._collect_forever,
                                           name="repro-fleet-collector",
                                           daemon=True)
        self._monitor = threading.Thread(target=self._monitor_forever,
                                         name="repro-fleet-monitor",
                                         daemon=True)
        self._collector.start()
        self._monitor.start()
        self.wait_ready(timeout=start_timeout)

    # ------------------------------------------------------------------
    # Registry-backed accounting (the ints these replaced read back the
    # counter families, so stats()'s dict shape is unchanged)
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return int(self._requests_total.value(outcome="completed"))

    @property
    def failed(self) -> int:
        return int(self._requests_total.value(outcome="failed"))

    @property
    def rerouted(self) -> int:
        return int(self._requests_total.value(outcome="rerouted"))

    def slowest(self, n: int = 10) -> list[TraceContext]:
        """The ``n`` slowest fleet-owned traces, slowest first."""
        return self.trace_log.slowest(n)

    # ------------------------------------------------------------------
    # Admission and dispatch
    # ------------------------------------------------------------------
    def submit(self, request=None, incremental=None, intra=None, *,
               key: str | None = None, mode: str | None = None,
               frozen: bool = False, features=None) -> FleetFuture:
        """Admit one request; returns its :class:`FleetFuture`.

        The canonical call is ``submit(ServeTask(...))`` — the task
        carries the batch plus the task type, routing ``key``, ``mode``
        override, and ``frozen`` flag (keyword arguments given here still
        override the task's fields).  The old raw-array form
        ``submit(features, incremental, intra)`` remains as a deprecated
        shim that serves a ``predict`` task.
        """
        if isinstance(request, ServeTask):
            if (incremental is not None or intra is not None
                    or features is not None):
                raise ServingError(
                    "submit(ServeTask) takes no array arguments; put the "
                    "request batch inside the task")
            task = request
            if key is not None or mode is not None or frozen:
                task = replace(
                    task, key=task.key if key is None else key,
                    mode=task.mode if mode is None else mode,
                    frozen=task.frozen or bool(frozen))
            return self.submit_task(task)
        warnings.warn(
            "ServingFleet.submit(features, incremental, intra) is "
            "deprecated; pass a ServeTask", DeprecationWarning,
            stacklevel=2)
        if features is None:
            features = request
        batch = _legacy_batch(features, incremental, intra)
        return self.submit_task(ServeTask(batch=batch, mode=mode,
                                          frozen=bool(frozen), key=key))

    def submit_batch(self, batch: IncrementalBatch | ServeTask, *,
                     key: str | None = None, mode: str | None = None,
                     frozen: bool = False,
                     trace: TraceContext | None = None) -> FleetFuture:
        """Admit a pre-assembled batch (or :class:`ServeTask`) as one request.

        A bare :class:`IncrementalBatch` serves as a ``predict`` task —
        the warning-free convenience spelling.  A caller that already
        opened a trace (the gateway) passes it via ``trace`` and stays
        responsible for finishing it; otherwise the fleet stamps its own
        (when ``telemetry`` is on) and completes it into its
        slow-request ring.
        """
        if isinstance(batch, ServeTask):
            task = batch
            if key is not None or mode is not None or frozen:
                task = replace(
                    task, key=task.key if key is None else key,
                    mode=task.mode if mode is None else mode,
                    frozen=task.frozen or bool(frozen))
        else:
            task = ServeTask(batch=batch, mode=mode, frozen=bool(frozen),
                             key=key)
        return self.submit_task(task, trace=trace)

    def submit_task(self, task: ServeTask, *,
                    trace: TraceContext | None = None) -> FleetFuture:
        """Admit one task-typed request (the canonical fleet entrypoint).

        Every submit spelling funnels through here; the
        :class:`~repro.serving.embeddings.ServeTask` carries the batch
        and every per-request knob (task type, routing key, mode
        override, frozen flag, top-k depth, link pairs).
        """
        if not isinstance(task, ServeTask):
            raise ServingError(
                f"submit_task expects a ServeTask, got "
                f"{type(task).__name__}")
        owns_trace = False
        if trace is None and self.telemetry:
            trace = TraceContext(labels={"mode": task.mode or self.batch_mode,
                                         "task": task.task})
            owns_trace = True
        entry = _Pending(request_id=next(self._request_ids), task=task,
                         key=task.key, future=FleetFuture(),
                         submitted_at=time.perf_counter(),
                         trace=trace, owns_trace=owns_trace)
        entry.future.trace = trace
        with self._lock:
            # checked under the lock: close() sweeps _pending under it,
            # so a request can never slip in after the sweep and hang
            if self._closing.is_set():
                raise ServingError("fleet is closed; cannot submit requests")
            self._pending[entry.request_id] = entry
            self._dispatch(entry)
        return entry.future

    def _dispatch(self, entry: _Pending) -> None:
        """Route one request (caller holds the lock; never raises).

        With no ready replica — mid-failover or mid-swap on a small fleet
        — the request parks and is re-dispatched the moment a replica
        reports ready, so traffic queues instead of dropping.  A
        misbehaving router fails the *request*, not the dispatching
        thread: this runs inside the collector/monitor loops too, where
        an escaped exception would silently kill health checking.
        """
        if entry.attempts >= self.max_retries:
            self._fail_entry(entry, ServingError(
                f"request failed after {entry.attempts} dispatch attempts "
                "(replicas kept dying mid-serve)"))
            return
        candidates = self.pool.ready_ids()
        if not candidates:
            self._orphans.append(entry)
            return
        loads = {rid: len(self.pool.replicas[rid].inflight)
                 for rid in candidates}
        try:
            replica_id = self.router.select(entry.key, candidates, loads)
        except Exception as error:  # noqa: BLE001 — routed to the future
            self._fail_entry(entry, ServingError(
                f"router {self.router!r} failed to pick a replica: "
                f"{type(error).__name__}: {error}"))
            return
        if replica_id not in candidates:
            self._fail_entry(entry, ServingError(
                f"router {self.router!r} picked replica {replica_id}, "
                f"not one of the ready candidates {candidates}"))
            return
        replica = self.pool.replicas[replica_id]
        entry.replica_id = replica_id
        entry.attempts += 1
        replica.inflight.add(entry.request_id)
        replica.inbox.put(("serve", entry.request_id, entry.task,
                           self.telemetry and entry.trace is not None))

    def _fail_entry(self, entry: _Pending, error: ServingError) -> None:
        """Terminal failure of one request (caller holds the lock)."""
        self._pending.pop(entry.request_id, None)
        self._requests_total.inc(outcome="failed")
        entry.future._fail(error)

    def _redispatch_orphans(self) -> None:
        """Drain the orphan queue onto ready replicas (caller holds the lock)."""
        while self._orphans and self.pool.ready_ids():
            self._dispatch(self._orphans.popleft())

    # ------------------------------------------------------------------
    # Collector: worker results → futures
    # ------------------------------------------------------------------
    def _collect_forever(self) -> None:
        while not (self._closing.is_set() and not self._pending
                   and not self._orphans):
            try:
                message = self.pool.results.get(timeout=self._POLL_SECONDS)
            except _queue.Empty:
                continue
            except (OSError, ValueError):
                return  # results queue torn down during close
            self._handle_message(message)

    def _handle_message(self, message: tuple) -> None:
        kind, replica_id, generation = message[0], message[1], message[2]
        with self._lock:
            replica = self.pool.replicas.get(replica_id)
            current = replica is not None and replica.generation == generation
            if kind == "ready" and current:
                replica.cold_start_seconds = message[3]
                replica.spawn_failures = 0
                if replica.state == "starting":
                    replica.state = "ready"
                self._redispatch_orphans()
            elif kind == "fatal" and current:
                replica.last_error = message[3]
                # the monitor reaps the exited process and decides whether
                # another spawn attempt is worth it
            elif kind in ("done", "error"):
                request_id = message[3]
                entry = self._pending.pop(request_id, None)
                if current:
                    replica.inflight.discard(request_id)
                if entry is None:
                    return  # already failed, or resolved by a re-route
                if kind == "done":
                    logits, compute_seconds = message[4], message[5]
                    t_start, worker_spans = message[6], message[7]
                    wall = time.perf_counter() - entry.submitted_at
                    self._latencies.append(wall)
                    self._requests_total.inc(outcome="completed")
                    if current:
                        replica.served += 1
                        self._replica_served.inc(replica=str(replica_id))
                    # the worker's dequeue stamp splits the wall time into
                    # the canonical fleet stages (clamped: perf_counter is
                    # shared-monotonic, but paranoia is free)
                    dispatch = max(t_start - entry.submitted_at, 0.0)
                    collect = max(wall - dispatch - compute_seconds, 0.0)
                    if self.telemetry:
                        self._stage_latency.observe(
                            dispatch, component="fleet", stage="dispatch")
                        self._stage_latency.observe(
                            compute_seconds, component="fleet", stage="serve")
                        self._stage_latency.observe(
                            collect, component="fleet", stage="collect")
                    if entry.trace is not None:
                        trace = entry.trace
                        trace.labels.setdefault("replica", str(replica_id))
                        trace.add_stage("dispatch", dispatch)
                        trace.add_stage("serve", compute_seconds)
                        for stage, seconds in worker_spans:
                            trace.add_stage(f"serve.{stage}", seconds)
                        trace.add_stage("collect", collect)
                        if entry.owns_trace:
                            self.trace_log.observe(trace)
                    entry.future.replica_id = replica_id
                    entry.future.attempts = entry.attempts
                    entry.future._resolve(logits, RequestRecord(
                        num_nodes=entry.task.num_nodes,
                        queue_seconds=max(wall - compute_seconds, 0.0),
                        compute_seconds=compute_seconds, batch_size=1))
                else:
                    self._requests_total.inc(outcome="failed")
                    entry.future.replica_id = replica_id
                    entry.future.attempts = entry.attempts
                    entry.future._fail(ServingError(
                        f"replica {replica_id} failed the request: "
                        f"{message[4]}"))

    # ------------------------------------------------------------------
    # Monitor: health checks, failover, respawn
    # ------------------------------------------------------------------
    def _monitor_forever(self) -> None:
        while not self._closing.is_set():
            self._check_health()
            time.sleep(self._POLL_SECONDS)

    def _check_health(self) -> None:
        with self._lock:
            for replica in list(self.pool.replicas.values()):
                if replica.state in ("stopping", "dead"):
                    continue
                if replica.process.is_alive():
                    continue
                self._handle_death(replica)

    def _handle_death(self, replica: _Replica) -> None:
        """A replica died unannounced: re-route its work, refill the slot."""
        failed_start = replica.state == "starting"
        replica.state = "dead"
        self._replica_died.inc(replica=str(replica.replica_id))
        self.pool._discard_inbox(replica)
        stranded = [self._pending[rid] for rid in sorted(replica.inflight)
                    if rid in self._pending]
        replica.inflight.clear()
        if failed_start:
            replica.spawn_failures += 1
        if replica.spawn_failures <= self.pool.max_spawn_retries:
            self.pool.respawn(replica.replica_id)
            self._replica_respawned.inc(replica=str(replica.replica_id))
        for entry in stranded:
            self._requests_total.inc(outcome="rerouted")
            self._dispatch(entry)

    def wait_ready(self, timeout: float = 120.0) -> None:
        """Block until every replica slot is ready (or raise)."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                states = [r.state for r in self.pool.replicas.values()]
                errors = [r.last_error for r in self.pool.replicas.values()
                          if r.last_error]
                exhausted = [r for r in self.pool.replicas.values()
                             if r.state == "dead"
                             and r.spawn_failures > self.pool.max_spawn_retries]
            if exhausted:
                self.close(drain=False)
                detail = errors[-1] if errors else "worker exited at startup"
                raise ServingError(
                    f"replica {exhausted[0].replica_id} failed to start "
                    f"after {self.pool.max_spawn_retries + 1} attempts: "
                    f"{detail}")
            if all(state == "ready" for state in states):
                return
            if time.monotonic() > deadline:
                self.close(drain=False)
                raise ServingError(
                    f"fleet not ready within {timeout}s (states: {states})")
            time.sleep(self._POLL_SECONDS)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap(self, artifact: str | Path, *,
             drain_timeout: float = 60.0) -> None:
        """Roll ``artifact`` across the fleet with zero dropped traffic.

        Replicas are drained one at a time: the slot stops receiving new
        requests, finishes its in-flight ones, restarts on the new
        artifact, and rejoins before the next slot starts draining — the
        rest of the fleet keeps serving throughout.
        """
        artifact = Path(artifact)
        for replica_id in sorted(self.pool.replicas):
            with self._lock:
                replica = self.pool.replicas[replica_id]
                if replica.state == "ready":
                    replica.state = "draining"
            self._wait_drained(replica_id, drain_timeout)
            with self._lock:
                # re-read the slot: if the draining worker died, the
                # monitor already respawned it — stop whatever process
                # holds the slot *now*, not a stale handle, or the
                # replacement would leak unsupervised
                replica = self.pool.replicas[replica_id]
                self.pool.stop_replica(replica)
                self.pool.respawn(replica_id, artifact=artifact)
                self._replica_respawned.inc(replica=str(replica_id))
            self._wait_slot_ready(replica_id, drain_timeout)
        self.pool.artifact = artifact

    def _wait_drained(self, replica_id: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                # look the slot up fresh each poll — a mid-drain death
                # swaps in a respawned replica whose inflight starts empty
                replica = self.pool.replicas[replica_id]
                if not replica.inflight:
                    return
            if time.monotonic() > deadline:
                raise ServingError(
                    f"replica {replica_id} did not drain within "
                    f"{timeout}s ({len(replica.inflight)} in flight)")
            time.sleep(self._POLL_SECONDS)

    def _wait_slot_ready(self, replica_id: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                replica = self.pool.replicas[replica_id]
                if replica.state == "ready":
                    return
                if (replica.state == "dead"
                        and replica.spawn_failures > self.pool.max_spawn_retries):
                    raise ServingError(
                        f"swap failed: replica {replica_id} could not start "
                        f"on the new artifact: {replica.last_error}")
            if time.monotonic() > deadline:
                raise ServingError(
                    f"swap failed: replica {replica_id} not ready within "
                    f"{timeout}s")
            time.sleep(self._POLL_SECONDS)

    # ------------------------------------------------------------------
    # Elastic scaling (the gateway autoscaler's levers)
    # ------------------------------------------------------------------
    def scale_to(self, replicas: int, *, wait: bool = True,
                 timeout: float = 120.0, drain_timeout: float = 60.0) -> int:
        """Grow or shrink the fleet to ``replicas`` slots; returns the size.

        Growing spawns fresh slots through the pool's respawn machinery
        (and, with ``wait``, blocks until each reports ready so the
        caller knows added capacity is real).  Shrinking retires the
        highest-numbered slots one at a time with the same drain dance a
        hot swap uses — the slot stops receiving traffic, finishes its
        in-flight requests, then exits — so scaling down never drops an
        admitted request.
        """
        if replicas <= 0:
            raise ServingError(
                f"fleet size must stay positive, got {replicas}")
        while self.pool.size < replicas:
            with self._lock:
                if self._closing.is_set():
                    raise ServingError("fleet is closed; cannot scale")
                replica = self.pool.add_slot()
            if wait:
                self._wait_slot_ready(replica.replica_id, timeout)
        while self.pool.size > replicas:
            self._retire_one(drain_timeout)
        return self.pool.size

    def _retire_one(self, drain_timeout: float) -> None:
        """Drain and remove the highest-numbered slot (zero dropped work)."""
        with self._lock:
            replica_id = max(self.pool.replicas)
            replica = self.pool.replicas[replica_id]
            if replica.state == "ready":
                replica.state = "draining"
        self._wait_drained(replica_id, drain_timeout)
        with self._lock:
            # re-read the slot: a mid-drain death already respawned it
            replica = self.pool.replicas[replica_id]
            self.pool.stop_replica(replica)
            self.pool.remove_slot(replica_id)

    def queue_depth(self) -> int:
        """Requests admitted but not yet resolved (dispatched + parked).

        The congestion signal the gateway's admission control and
        autoscaler read: it counts work the fleet has accepted
        responsibility for, wherever it currently sits.
        """
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Fault injection and introspection
    # ------------------------------------------------------------------
    def kill_replica(self, replica_id: int) -> None:
        """Kill one replica process outright (failover drill)."""
        self.pool.kill_replica(replica_id)

    @property
    def num_replicas(self) -> int:
        return self.pool.size

    def drain(self, timeout: float = 120.0) -> None:
        """Block until every admitted request has resolved."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if not self._pending and not self._orphans:
                    return
            if time.monotonic() > deadline:
                raise ServingError(f"fleet did not drain within {timeout}s")
            time.sleep(self._POLL_SECONDS)

    def reset_latencies(self, *, counters: bool = False) -> None:
        """Drop the recorded wall latencies (e.g. after cache warm-up),
        so :meth:`stats` percentiles reflect steady-state serving only.

        Everything latency-shaped resets together: the wall-latency
        window, the per-stage histograms, and the slow-request trace
        ring — they are three views of the same measurement epoch.
        In-flight requests keep their (already-stamped) traces and simply
        complete into the fresh window.

        The volume counters reset independently: by default the
        completed/failed/rerouted totals (and per-replica served counts)
        survive, so excluding warm-up traffic from the percentiles does
        not erase the request accounting the shed/scale gates audit.
        Pass ``counters=True`` to zero those too (a full
        measurement-epoch reset, e.g. between benchmark phases).
        """
        with self._lock:
            self._latencies.clear()
            self.trace_log.clear()
            self._stage_latency.clear()
            if counters:
                self._requests_total.clear()
                self._replica_served.clear()
                for replica in self.pool.replicas.values():
                    replica.served = 0

    def stats(self) -> dict:
        """JSON-ready fleet accounting: volume, failover, tail latency."""
        with self._lock:
            latencies = list(self._latencies)
            per_replica = {
                str(rid): {"served": r.served, "state": r.state,
                           "generation": r.generation,
                           "cold_start_ms":
                               None if r.cold_start_seconds is None
                               else r.cold_start_seconds * 1e3}
                for rid, r in sorted(self.pool.replicas.items())}
            summary = {
                "replicas": self.pool.size,
                "router": getattr(self.router, "name", type(self.router).__name__),
                "precision": self.pool.precision,
                "completed": self.completed,
                "failed": self.failed,
                "rerouted": self.rerouted,
                "respawns": self.pool.respawns,
                # orphans stay tracked in _pending while parked
                "pending": len(self._pending),
                "per_replica": per_replica,
            }
        tail = latency_percentiles(latencies, empty=float("nan"))
        for name in ("p50", "p95", "p99"):
            value = tail[name]
            summary[f"latency_{name}_ms"] = (
                value * 1e3 if np.isfinite(value) else None)
        return summary

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 120.0) -> None:
        """Stop the fleet; by default finishes the admitted requests first."""
        if drain and not self._closing.is_set():
            try:
                self.drain(timeout)
            except ServingError:
                pass  # fail the stragglers below rather than hang
        self._closing.set()
        with self._lock:
            # parked orphans are still tracked in _pending, so _pending
            # alone is the full set — no entry may be failed twice
            stranded = list(self._pending.values())
            self._pending.clear()
            self._orphans.clear()
            for entry in stranded:
                self._requests_total.inc(outcome="failed")
                entry.future._fail(ServingError(
                    "fleet closed before the request completed"))
            self.pool.stop_all()
        for thread in (self._collector, self._monitor):
            if thread.is_alive() and thread is not threading.current_thread():
                thread.join(timeout=5.0)
        if self.owns_artifact:
            self.pool.artifact.unlink(missing_ok=True)
            self.owns_artifact = False

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ServingFleet(replicas={self.pool.size}, "
                f"router={getattr(self.router, 'name', '?')!r}, "
                f"batch_mode={self.batch_mode!r}, "
                f"pending={len(self._pending)})")


# ----------------------------------------------------------------------
# Replay helper (CLI + benchmark)
# ----------------------------------------------------------------------
def replay_fleet(fleet: ServingFleet,
                 requests: list[IncrementalBatch | ServeTask], *,
                 keys: list[str] | None = None,
                 timeout: float = 120.0) -> list[np.ndarray | None]:
    """Submit ``requests`` closed-loop and wait for every result.

    Accepts plain batches (served as ``predict``) or task-typed
    :class:`~repro.serving.embeddings.ServeTask` requests.  Returns
    per-request results (``None`` for requests the fleet failed), in
    submission order — the fleet analogue of
    :func:`repro.serving.workload.replay`.
    """
    if keys is not None and len(keys) != len(requests):
        raise ServingError(
            f"{len(keys)} routing keys for {len(requests)} requests")
    futures = [fleet.submit_batch(request,
                                  key=None if keys is None else keys[i])
               for i, request in enumerate(requests)]
    results: list[np.ndarray | None] = []
    for future in futures:
        try:
            results.append(future.result(timeout=timeout))
        except ServingError:
            if not future.done():
                raise  # a genuine timeout, not a per-request failure
            results.append(None)
    return results
