"""Synthetic request workloads: arrival processes over an inductive stream.

The paper evaluates exactly two serving regimes (one big graph batch, one
big node batch).  Real deployments see *traffic*: requests arriving over
time, unevenly.  A workload generator produces arrival offsets for a
request stream; :func:`split_requests` slices a dataset's inductive batch
into the per-request payloads; :func:`replay` drives a
:class:`~repro.serving.runtime.ServingRuntime` with them, either open-loop
(honour arrival times with real sleeps) or closed-loop (submit eagerly,
let the scheduler drain — the reproducible mode used by tests and CI).

Generators are pluggable through :data:`repro.registry.WORKLOADS` and are
deterministic given a seed (or an explicit ``numpy`` Generator), which is
what keeps benchmark runs comparable across commits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
from repro.registry import register_workload

__all__ = ["WorkloadGenerator", "PoissonWorkload", "BurstyWorkload",
           "RampWorkload", "split_requests", "replay", "replay_stream"]


class WorkloadGenerator:
    """Base class: produce non-decreasing arrival offsets (seconds)."""

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def arrivals(self, num_requests: int,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """``num_requests`` arrival offsets from a (possibly varying) rate.

        Uses sequential exponential gaps at the instantaneous rate — exact
        for constant-rate processes, a standard fine-grained approximation
        for the time-varying ones.
        """
        if num_requests < 0:
            raise ServingError(
                f"num_requests must be non-negative, got {num_requests}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        offsets = np.empty(num_requests, dtype=np.float64)
        t = 0.0
        for i in range(num_requests):
            rate = self.rate_at(t)
            if rate <= 0:
                raise ServingError(f"arrival rate must stay positive, got {rate}")
            t += rng.exponential(1.0 / rate)
            offsets[i] = t
        return offsets


@dataclass
class PoissonWorkload(WorkloadGenerator):
    """Memoryless arrivals at a constant ``rate`` (requests/second)."""

    rate: float = 200.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ServingError(f"rate must be positive, got {self.rate}")

    def rate_at(self, t: float) -> float:
        return self.rate


@dataclass
class BurstyWorkload(WorkloadGenerator):
    """Alternating calm/burst phases (square-wave rate).

    Each ``period_s`` window spends ``duty`` of its length at
    ``burst_rate`` and the rest at ``base_rate`` — the shape that stresses
    queue bounds and the scheduler's wait cap.
    """

    base_rate: float = 50.0
    burst_rate: float = 500.0
    period_s: float = 1.0
    duty: float = 0.2

    def __post_init__(self) -> None:
        if min(self.base_rate, self.burst_rate) <= 0:
            raise ServingError("bursty rates must be positive")
        if self.period_s <= 0:
            raise ServingError(f"period_s must be positive, got {self.period_s}")
        if not 0.0 < self.duty < 1.0:
            raise ServingError(f"duty must be in (0, 1), got {self.duty}")

    def rate_at(self, t: float) -> float:
        phase = (t % self.period_s) / self.period_s
        return self.burst_rate if phase < self.duty else self.base_rate


@dataclass
class RampWorkload(WorkloadGenerator):
    """Linearly increasing rate — find where the runtime saturates.

    The rate climbs from ``start_rate`` to ``end_rate`` over ``duration_s``
    and stays at ``end_rate`` afterwards.
    """

    start_rate: float = 20.0
    end_rate: float = 400.0
    duration_s: float = 2.0

    def __post_init__(self) -> None:
        if min(self.start_rate, self.end_rate) <= 0:
            raise ServingError("ramp rates must be positive")
        if self.duration_s <= 0:
            raise ServingError(
                f"duration_s must be positive, got {self.duration_s}")

    def rate_at(self, t: float) -> float:
        if t >= self.duration_s:
            return self.end_rate
        frac = t / self.duration_s
        return self.start_rate + frac * (self.end_rate - self.start_rate)


@register_workload("poisson",
                   description="memoryless arrivals at a constant rate")
def _poisson(rate: float = 200.0, **_ignored) -> PoissonWorkload:
    return PoissonWorkload(rate=rate)


@register_workload("bursty",
                   description="square-wave calm/burst arrival rate")
def _bursty(rate: float | None = None, base_rate: float = 50.0,
            burst_rate: float = 500.0, period_s: float = 1.0,
            duty: float = 0.2, **_ignored) -> BurstyWorkload:
    """``rate``, when given, sets the *duty-weighted mean* rate while
    keeping the burst/calm shape (burst stays 4x the calm rate)."""
    if rate is not None:
        base_rate = rate / (1.0 + 3.0 * duty)
        burst_rate = 4.0 * base_rate
    return BurstyWorkload(base_rate=base_rate, burst_rate=burst_rate,
                          period_s=period_s, duty=duty)


@register_workload("ramp",
                   description="linearly increasing rate up to saturation")
def _ramp(rate: float | None = None, start_rate: float = 20.0,
          end_rate: float = 400.0, duration_s: float = 2.0,
          **_ignored) -> RampWorkload:
    """``rate``, when given, centres the ramp on it (rate/2 → 3·rate/2)."""
    if rate is not None:
        start_rate = rate * 0.5
        end_rate = rate * 1.5
    return RampWorkload(start_rate=start_rate, end_rate=end_rate,
                        duration_s=duration_s)


# ----------------------------------------------------------------------
# Turning a dataset's inductive batch into a request stream
# ----------------------------------------------------------------------
def split_requests(batch: IncrementalBatch, num_requests: int,
                   nodes_per_request: int = 1) -> list[IncrementalBatch]:
    """Slice an inductive batch into per-request payloads, cycling when
    ``num_requests * nodes_per_request`` exceeds the batch."""
    if batch.num_nodes == 0:
        raise ServingError("cannot build requests from an empty batch")
    if num_requests <= 0 or nodes_per_request <= 0:
        raise ServingError("num_requests and nodes_per_request must be positive")
    requests = []
    total = batch.num_nodes
    cursor = 0
    for _ in range(num_requests):
        idx = (np.arange(cursor, cursor + nodes_per_request)) % total
        requests.append(batch.subset(idx))
        cursor = (cursor + nodes_per_request) % total
    return requests


def replay(runtime, requests: list[IncrementalBatch],
           arrivals: np.ndarray | None = None, *,
           speed: float = 1.0, timeout: float = 60.0) -> list[np.ndarray | None]:
    """Drive a runtime with a request stream; returns per-request logits.

    With ``arrivals`` (open loop) the caller sleeps until each arrival
    offset (divided by ``speed``) before submitting — queue waits then
    reflect the traffic shape.  Without (closed loop) every request is
    submitted immediately and the scheduler drains at full tilt; if the
    runtime's loop is not running, pending work is served inline, which
    keeps the mode usable (and deterministic) without threads.

    Requests the runtime sheds (``reject``/``drop_oldest`` overflow) or
    fails while serving yield ``None`` in the result list instead of
    aborting the replay — ``runtime.stats()`` carries the rejected/failed
    counts.  A request that never completes within ``timeout`` still
    raises.
    """
    if arrivals is not None and len(arrivals) != len(requests):
        raise ServingError(
            f"{len(arrivals)} arrival offsets for {len(requests)} requests")
    if speed <= 0:
        raise ServingError(f"speed must be positive, got {speed}")
    futures = []
    started = time.perf_counter()
    inline = runtime._thread is None
    # With no consumer thread a 'block' put would deadlock on a full
    # queue, so drain first; 'reject'/'drop_oldest' shed as configured.
    drain_before_block = inline and runtime.queue.overflow == "block"
    for i, request in enumerate(requests):
        if arrivals is not None:
            wait = arrivals[i] / speed - (time.perf_counter() - started)
            if wait > 0:
                time.sleep(wait)
        if drain_before_block and len(runtime.queue) >= runtime.queue.capacity:
            runtime.run_pending()
        futures.append(runtime.submit_batch(request))
    if inline:
        runtime.run_pending()
    results: list[np.ndarray | None] = []
    for future in futures:
        try:
            results.append(future.result(timeout=timeout))
        except Exception:  # noqa: BLE001 — shed/failed requests become None
            if not future.done():
                raise  # a genuine timeout, not a per-request failure
            results.append(None)
    return results


def replay_stream(runtime, requests: list[IncrementalBatch], deltas,
                  ingest_every: int = 4) -> None:
    """Closed-loop replay of serve traffic with deltas interleaved.

    Submits ``requests`` in groups of ``ingest_every``, ingests one delta
    after each group, and drains synchronously (``run_pending``) so every
    micro-batch and every refresh happens in a deterministic order.
    Deltas left over when the request stream ends are ingested and
    applied at the tail.  Shared by ``repro serve-stream`` and the
    streaming benchmark so the interleaving semantics cannot diverge.
    """
    if ingest_every <= 0:
        raise ServingError(
            f"ingest_every must be positive, got {ingest_every}")
    pending = iter(deltas)
    for start in range(0, len(requests), ingest_every):
        for request in requests[start:start + ingest_every]:
            runtime.submit_batch(request)
        delta = next(pending, None)
        if delta is not None:
            runtime.ingest(delta)
        runtime.run_pending()
    for delta in pending:
        runtime.ingest(delta)
    runtime.run_pending()
