"""Micro-batch schedulers: when to stop collecting and fire a batch.

A scheduler decides, given the request at the head of the queue, how many
more requests to coalesce into the same attach+normalize+forward pass.
Coalescing amortizes the per-pass fixed costs (operator assembly, python
dispatch, BLAS call overhead) across requests at the price of queueing
delay — the classic throughput/latency dial, here exposed as
``max_batch_size`` × ``max_wait_ms``.

Schedulers are pluggable through :data:`repro.registry.SCHEDULERS`; the
runtime resolves them by name, so a deployment can swap policies without
touching serving code.
"""

from __future__ import annotations

from repro.errors import ServingError
from repro.registry import register_scheduler

__all__ = ["MicroBatchScheduler", "ImmediateScheduler", "SizeCapScheduler"]


class MicroBatchScheduler:
    """Coalesce up to ``max_batch_size`` requests or until ``max_wait_ms``.

    ``deadline(first_enqueue)`` tells the runtime how long it may keep
    waiting for companions of the batch's first request; ``full(count)``
    caps the batch size.  ``max_wait_ms=0`` disables waiting (each batch
    takes only what is already queued).
    """

    def __init__(self, max_batch_size: int = 32,
                 max_wait_ms: float = 2.0) -> None:
        if max_batch_size <= 0:
            raise ServingError(
                f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ServingError(
                f"max_wait_ms must be non-negative, got {max_wait_ms}")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms

    def full(self, count: int) -> bool:
        return count >= self.max_batch_size

    def deadline(self, first_enqueue: float) -> float:
        """Latest time (perf_counter seconds) the batch may keep filling."""
        return first_enqueue + self.max_wait_ms / 1e3

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(max_batch_size={self.max_batch_size}, "
                f"max_wait_ms={self.max_wait_ms})")


class ImmediateScheduler(MicroBatchScheduler):
    """No coalescing: every request is its own batch (latency-first)."""

    def __init__(self) -> None:
        super().__init__(max_batch_size=1, max_wait_ms=0.0)


class SizeCapScheduler(MicroBatchScheduler):
    """Coalesce whatever is queued, up to a size cap, without waiting.

    The throughput-first policy for closed-loop replays: it never trades
    extra queueing delay for batch fill, but drains bursts in one pass.
    """

    def __init__(self, max_batch_size: int = 128) -> None:
        super().__init__(max_batch_size=max_batch_size, max_wait_ms=0.0)


@register_scheduler("microbatch",
                    description="coalesce up to max-batch-size requests or "
                                "max-wait-ms, whichever first (default)")
def _microbatch(max_batch_size: int = 32, max_wait_ms: float = 2.0,
                **_ignored) -> MicroBatchScheduler:
    return MicroBatchScheduler(max_batch_size, max_wait_ms)


@register_scheduler("immediate",
                    description="serve each request alone (latency-first)")
def _immediate(**_ignored) -> ImmediateScheduler:
    return ImmediateScheduler()


@register_scheduler("sizecap",
                    description="drain whatever is queued up to a size cap, "
                                "never wait (throughput-first)")
def _sizecap(max_batch_size: int = 128, **_ignored) -> SizeCapScheduler:
    return SizeCapScheduler(max_batch_size)
