"""The long-lived online serving runtime.

``ServingRuntime`` turns the one-shot inference engine into a service:
requests (single inductive nodes or small node groups) are admitted
through a :class:`~repro.serving.queue.BoundedRequestQueue`, coalesced by
a pluggable micro-batch scheduler into one attach+normalize+forward pass
over the :class:`~repro.serving.prepared.PreparedDeployment` cache, and
answered through futures carrying per-request latency accounting.

Two execution modes share the same batching/serving code path:

- **threaded** (``start()``/``stop()`` or the context manager) — a
  background serving loop drains the queue while producers submit
  concurrently; this is the open-loop deployment shape.
- **stepped** (``step()``) — the caller drives the loop synchronously,
  one micro-batch per call; this is the deterministic shape used by the
  parity tests and the closed-loop benchmark.

Requests coalesced into one micro-batch are merged with
:func:`merge_requests`; the served logits are bitwise identical to
serving the merged batch through ``InductiveServer`` directly (parity
tests assert this for both deployments and both batch modes).  Note the
guarantee is *per merged batch*: as with any serving batch size in this
engine, which requests share a batch affects the augmented graph's
degrees and therefore the logits slightly — under the threaded loop,
batch composition depends on arrival timing.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import InferenceError, ServingError
from repro.graph.datasets import IncrementalBatch
from repro.graph.stream import GraphDelta
from repro.registry import make_scheduler
from repro.serving.embeddings import ServeTask
from repro.serving.prepared import DeltaRefreshReport, PreparedDeployment
from repro.serving.queue import BoundedRequestQueue, QueueFullError
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.stats import LatencyAccounting, RequestRecord, RuntimeStats
from repro.telemetry import MetricsRegistry, TraceContext, TraceLog

__all__ = ["ServingRuntime", "ServingFuture", "IngestFuture", "Request",
           "merge_requests"]


class IngestFuture:
    """Completion handle for one ingested :class:`GraphDelta`."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._report: DeltaRefreshReport | None = None
        self._error: BaseException | None = None

    def _resolve(self, report: DeltaRefreshReport) -> None:
        self._report = report
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> DeltaRefreshReport:
        """The delta's :class:`DeltaRefreshReport`; raises its error if any."""
        if not self._done.wait(timeout=timeout):
            raise ServingError(f"delta not applied within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._report


class ServingFuture:
    """Completion handle for one submitted request."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._logits: np.ndarray | None = None
        self._record: RequestRecord | None = None
        self._error: BaseException | None = None
        self._callback_lock = threading.Lock()
        self._callbacks: list = []

    # -- runtime side ---------------------------------------------------
    def _resolve(self, logits: np.ndarray, record: RequestRecord) -> None:
        self._logits = logits
        self._record = record
        self._done.set()
        self._run_callbacks()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()
        self._run_callbacks()

    def _run_callbacks(self) -> None:
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done_callback(self, callback) -> None:
        """Run ``callback(self)`` once the future completes.

        Invoked from whichever thread resolves the future (immediately,
        from the caller, if it already completed), so callbacks must be
        quick and non-blocking — the async gateway uses this to hop a
        completion back onto its event loop without burning a waiter
        thread per in-flight request.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # -- caller side ----------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Logits of this request's nodes; raises the serving error if any."""
        if not self._done.wait(timeout=timeout):
            raise ServingError(f"request not completed within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._logits

    @property
    def record(self) -> RequestRecord | None:
        """Latency accounting, available once the request completed."""
        return self._record


@dataclass
class Request:
    """One admitted request: ``n >= 1`` inductive nodes with connectivity.

    The task fields mirror :class:`~repro.serving.embeddings.ServeTask`;
    the defaults reproduce the classic predict request, so the deprecated
    keyword API admits unchanged.
    """

    features: np.ndarray
    incremental: sp.csr_matrix
    intra: sp.csr_matrix
    future: ServingFuture = field(default_factory=ServingFuture)
    enqueued_at: float = 0.0
    trace: TraceContext | None = None
    task: str = "predict"
    frozen: bool = False
    k: int = 10
    pairs: np.ndarray | None = None
    scorer: str = "dot"

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def result_rows(self) -> int:
        """Reply rows this request owns in its group's merged result."""
        if self.task == "link_score":
            return int(self.pairs.shape[0])
        return self.num_nodes


def merge_requests(requests: list[Request]) -> IncrementalBatch:
    """Coalesce requests into one batch (cross-request intra edges are
    zero — independently arriving requests share no known edges)."""
    features = np.vstack([r.features for r in requests])
    incremental = sp.vstack([r.incremental for r in requests]).tocsr()
    intra = sp.block_diag([r.intra for r in requests]).tocsr()
    labels = np.full(features.shape[0], -1, dtype=np.int64)
    return IncrementalBatch(features=features, incremental=incremental,
                            intra=intra, labels=labels)


class ServingRuntime:
    """Serve a stream of inductive requests against one prepared deployment.

    Parameters
    ----------
    prepared:
        The request-invariant cache (build via
        ``PreparedDeployment.from_bundle`` or :func:`repro.api.open_runtime`).
    scheduler:
        A :class:`~repro.serving.scheduler.MicroBatchScheduler`, or a
        registry key of :data:`repro.registry.SCHEDULERS`.
    batch_mode:
        ``"graph"`` (requests may carry intra edges) or ``"node"``.
    queue_capacity / overflow:
        Bounded admission queue configuration; see
        :class:`~repro.serving.queue.BoundedRequestQueue`.
    precision:
        ``"exact"`` (default — bitwise-parity path) or ``"frozen"`` (the
        cached-propagation approximation; SGC only).
    telemetry:
        Feed the per-stage latency histograms
        (``repro_stage_latency_seconds{component="runtime"}``); the
        exact ``repro_runtime_requests_total`` counters report either
        way.  Traces are never auto-created here — a caller that wants
        one passes it to :meth:`submit`.
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` to report into
        (default: a private one, exposed as ``runtime.metrics``).
    """

    def __init__(self, prepared: PreparedDeployment,
                 scheduler: MicroBatchScheduler | str = "microbatch",
                 *, batch_mode: str = "graph", queue_capacity: int = 1024,
                 overflow: str = "block", precision: str = "exact",
                 scheduler_options: dict | None = None,
                 telemetry: bool = True,
                 metrics: MetricsRegistry | None = None,
                 trace_capacity: int = 256,
                 slow_trace_ms: float | None = None) -> None:
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        if precision not in ("exact", "frozen"):
            raise ServingError(
                f"precision must be 'exact' or 'frozen', got {precision!r}")
        self.prepared = prepared
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, **(scheduler_options or {}))
        self.scheduler = scheduler
        self.batch_mode = batch_mode
        self.precision = precision
        if precision == "frozen":
            prepared.propagated_base_features()  # validate model support early
        self.queue = BoundedRequestQueue(queue_capacity, overflow)
        self.accounting = LatencyAccounting()
        self.telemetry = bool(telemetry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_log = TraceLog(capacity=trace_capacity,
                                  slow_ms=slow_trace_ms)
        self._requests_total = self.metrics.counter(
            "repro_runtime_requests_total",
            "Requests resolved by the runtime, by terminal outcome.",
            ("outcome",))
        self.metrics.gauge(
            "repro_runtime_queue_depth",
            "Requests waiting in the runtime's admission queue.",
            callback=lambda: len(self.queue))
        self._stage_latency = self.metrics.histogram(
            "repro_stage_latency_seconds",
            "Per-stage request latency across the serving layers.",
            ("component", "stage"))
        self._serve_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        #: Default staleness threshold for :meth:`ingest`ed deltas.
        self.staleness_threshold = 0.25
        self._delta_lock = threading.Lock()
        self._pending_deltas: list[tuple[GraphDelta, IngestFuture]] = []
        self._delta_reports: list[DeltaRefreshReport] = []
        # The base width when this runtime opened: the narrowest id space
        # any client could legitimately have built a request against.
        # Narrower inputs are malformed, not stale, and stay rejected.
        self._floor_columns = self._original_columns

    @property
    def _original_columns(self) -> int:
        """Expected incremental width — tracks the evolving base graph."""
        if self.prepared.mapping is not None:
            return int(self.prepared.mapping.shape[0])
        return self.prepared.num_base

    def _pending_appended(self) -> int:
        """Base-graph rows promised by ingested-but-unapplied deltas."""
        with self._delta_lock:
            return sum(delta.num_new_nodes
                       for delta, _ in self._pending_deltas)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request=None, incremental=None, intra=None,
               timeout: float | None = None,
               trace: TraceContext | None = None, *,
               features=None) -> ServingFuture:
        """Admit one request; returns its :class:`ServingFuture`.

        The canonical argument is a
        :class:`~repro.serving.embeddings.ServeTask` — one object
        carrying the batch plus the task type and its options.  Pass a
        ``trace`` to collect the request's
        ``queue_wait``/``assembly``/``serve`` stage spans.

        .. deprecated::
            The keyword form ``submit(features, incremental, intra)``
            (raw arrays, implies ``task="predict"``) still works but
            emits a :class:`DeprecationWarning`; wrap the arrays in an
            :class:`~repro.graph.datasets.IncrementalBatch` and a
            ``ServeTask`` instead.
        """
        if isinstance(request, ServeTask):
            if incremental is not None or intra is not None \
                    or features is not None:
                raise ServingError(
                    "submit(ServeTask) takes no array arguments — the "
                    "task object already carries its batch")
            return self._submit_task(request, timeout=timeout, trace=trace)
        warnings.warn(
            "ServingRuntime.submit(features, incremental, intra) is "
            "deprecated; pass a ServeTask",
            DeprecationWarning, stacklevel=2)
        if features is None:
            features = request
        built = self._build_request(features, incremental, intra)
        return self._enqueue(built, timeout, trace)

    def submit_batch(self, batch: IncrementalBatch | ServeTask,
                     timeout: float | None = None,
                     trace: TraceContext | None = None) -> ServingFuture:
        """Admit a pre-assembled :class:`IncrementalBatch` (served as
        ``task="predict"``) or a :class:`ServeTask` as one request."""
        if not isinstance(batch, ServeTask):
            batch = ServeTask(batch=batch)
        return self._submit_task(batch, timeout=timeout, trace=trace)

    def _submit_task(self, task: ServeTask, *, timeout: float | None,
                     trace: TraceContext | None) -> ServingFuture:
        if task.mode is not None and task.mode != self.batch_mode:
            raise ServingError(
                f"this runtime serves batch_mode={self.batch_mode!r}; "
                f"the request asked for mode={task.mode!r}")
        built = self._build_request(task.batch.features,
                                    task.batch.incremental, task.batch.intra)
        built.task = task.task
        built.frozen = task.frozen
        built.k = task.k
        built.pairs = task.pairs
        built.scorer = task.scorer
        return self._enqueue(built, timeout, trace)

    def _enqueue(self, request: Request, timeout: float | None,
                 trace: TraceContext | None) -> ServingFuture:
        request.enqueued_at = time.perf_counter()
        request.trace = trace
        try:
            evicted = self.queue.put(request, timeout=timeout)
        except QueueFullError:
            self.accounting.observe_rejection()
            self._requests_total.inc(outcome="rejected")
            request.future._fail(ServingError(
                "request rejected: serving queue is full"))
            return request.future
        if evicted is not None:
            self.accounting.observe_rejection()
            self._requests_total.inc(outcome="rejected")
            evicted.future._fail(ServingError(
                "request dropped: evicted by a newer arrival (drop_oldest)"))
        return request.future

    def _build_request(self, features, incremental, intra) -> Request:
        feats = np.asarray(features, dtype=np.float64)
        if feats.ndim == 1:
            feats = feats[None, :]
        if feats.ndim != 2 or feats.shape[0] == 0:
            raise ServingError(
                f"request features must be (n >= 1, d), got {feats.shape}")
        if feats.shape[1] != self.prepared.feature_dim:
            # reject at admission: inside a coalesced batch this would fail
            # every co-batched request instead of just the malformed one
            raise ServingError(
                f"request feature dim {feats.shape[1]} != deployment "
                f"feature dim {self.prepared.feature_dim}")
        n = feats.shape[0]
        if sp.issparse(incremental):
            inc = incremental.tocsr().astype(np.float64)
        else:
            inc = sp.csr_matrix(
                np.atleast_2d(np.asarray(incremental, dtype=np.float64)))
        # Valid widths span every base size this runtime has exposed: a
        # client that has not yet observed streamed appends may cite a
        # historical (narrower) id space down to the opening width, and
        # one that just ingested a delta may already cite its promised
        # nodes before the loop applies it.  The pending count is read
        # *before* the current width: a delta applying between the two
        # reads then raises the width instead of shrinking the bound.
        pending = self._pending_appended()
        width = self._original_columns
        if self._floor_columns <= inc.shape[1] < width and inc.shape[0] == n:
            # widen with zero columns for the base nodes it predates
            inc = sp.csr_matrix((inc.data, inc.indices, inc.indptr),
                                shape=(n, width))
        if inc.shape[0] != n or not (
                width <= inc.shape[1] <= width + pending):
            raise ServingError(
                f"incremental adjacency has shape {inc.shape}, expected "
                f"({n}, {width})")
        if intra is None:
            ea = sp.csr_matrix((n, n), dtype=np.float64)
        elif sp.issparse(intra):
            ea = intra.tocsr().astype(np.float64)
        else:
            ea = sp.csr_matrix(np.asarray(intra, dtype=np.float64))
        if ea.shape != (n, n):
            raise ServingError(
                f"intra adjacency has shape {ea.shape}, expected ({n}, {n})")
        return Request(features=feats, incremental=inc, intra=ea)

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def ingest(self, delta: GraphDelta) -> IngestFuture:
        """Admit a :class:`~repro.graph.stream.GraphDelta` for application.

        Deltas are applied between micro-batches (never mid-forward) by
        the same loop that serves requests, in admission order; the
        returned :class:`IngestFuture` resolves with the
        :class:`~repro.serving.prepared.DeltaRefreshReport` once the
        deployment caches are refreshed.  In stepped mode call
        :meth:`step` (or :meth:`run_pending`) to drain pending deltas.
        """
        if not isinstance(delta, GraphDelta):
            raise ServingError(
                f"ingest needs a GraphDelta, got {type(delta).__name__}")
        if self.queue.closed:
            raise ServingError("runtime was stopped; cannot ingest deltas")
        future = IngestFuture()
        with self._delta_lock:
            self._pending_deltas.append((delta, future))
        return future

    def _apply_pending_deltas(self) -> int:
        """Apply every admitted delta (caller holds ``_serve_lock``)."""
        with self._delta_lock:
            pending, self._pending_deltas = self._pending_deltas, []
        for delta, future in pending:
            try:
                report = self.prepared.apply_delta(
                    delta, staleness_threshold=self.staleness_threshold)
            except Exception as error:  # noqa: BLE001 — forwarded to future
                future._fail(error)
                continue
            with self._delta_lock:
                self._delta_reports.append(report)
            future._resolve(report)
        return len(pending)

    def stream_stats(self) -> dict:
        """Aggregate ingest accounting (JSON-ready)."""
        with self._delta_lock:
            reports = list(self._delta_reports)
        refresh = [r for r in reports if r.mode != "noop"]
        seconds = [r.seconds for r in refresh]
        return {
            "deltas": len(reports),
            "incremental": sum(r.mode == "incremental" for r in reports),
            "rebuilds": sum(r.mode == "rebuild" for r in reports),
            "appended_nodes": sum(r.appended for r in reports),
            "refresh_mean_ms": (float(np.mean(seconds)) * 1e3
                                if seconds else None),
            "refresh_max_ms": (float(np.max(seconds)) * 1e3
                               if seconds else None),
        }

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def step(self, timeout: float | None = 0.0) -> int:
        """Form and serve one micro-batch synchronously.

        Pending deltas are applied first (ingest interleaves with serve
        traffic at micro-batch granularity).  Returns the number of
        requests served (0 when the queue stayed empty for ``timeout``
        seconds).  This is the deterministic entrypoint used by tests
        and the closed-loop benchmark.
        """
        with self._serve_lock:
            self._apply_pending_deltas()
            batch, assembly_seconds = self._collect(timeout)
            if not batch:
                return 0
            self._execute(batch, assembly_seconds)
            return len(batch)

    def run_pending(self) -> int:
        """Serve until the queue is empty; returns requests served."""
        total = 0
        while True:
            served = self.step(timeout=0.0)
            if served == 0:
                return total
            total += served

    def _collect(self, timeout: float | None) -> tuple[list[Request], float]:
        """Form one micro-batch; returns ``(batch, assembly_seconds)``.

        Assembly time runs from the first dequeue to the batch closing —
        the micro-batch coalescing wait the scheduler trades against
        batching efficiency (the runtime's ``assembly`` stage).
        """
        first = self.queue.get(timeout=timeout)
        if first is None:
            return [], 0.0
        assembly_started = time.perf_counter()
        batch = [first]
        deadline = self.scheduler.deadline(first.enqueued_at)
        while not self.scheduler.full(len(batch)):
            remaining = deadline - time.perf_counter()
            if remaining > 0:
                nxt = self.queue.get(timeout=remaining)
            else:
                nxt = self.queue.get_nowait()
            if nxt is None:
                break
            batch.append(nxt)
        return batch, time.perf_counter() - assembly_started

    def _align_request_widths(self, requests: list[Request]) -> list[Request]:
        """Bring every request in the batch to the current base width.

        Caller holds ``_serve_lock``.  Requests admitted before an append
        landed are widened with zero columns; a request admitted *ahead*
        of a still-pending ingested delta forces that delta to apply
        first (its ids only exist in the promised width).  A request
        whose promised width never materialized — its delta failed to
        apply — is failed *individually* here, so it cannot poison the
        co-batched requests with a merge-shape error; the survivors are
        returned.
        """
        width = self._original_columns
        if any(r.incremental.shape[1] > width for r in requests):
            self._apply_pending_deltas()
            width = self._original_columns
        kept = []
        for request in requests:
            inc = request.incremental
            if inc.shape[1] > width:
                request.future._fail(ServingError(
                    f"request cites base width {inc.shape[1]}, promised by "
                    f"an ingested delta that failed to apply (current "
                    f"width {width})"))
                self.accounting.observe_failure(1)
                self._requests_total.inc(outcome="failed")
                continue
            if inc.shape[1] < width:
                request.incremental = sp.csr_matrix(
                    (inc.data, inc.indices, inc.indptr),
                    shape=(inc.shape[0], width))
            kept.append(request)
        return kept

    def _execute(self, requests: list[Request],
                 assembly_seconds: float = 0.0) -> None:
        try:
            requests = self._align_request_widths(requests)
        except Exception as error:  # noqa: BLE001 — forwarded to futures
            for request in requests:
                request.future._fail(error)
            self.accounting.observe_failure(len(requests))
            self._requests_total.inc(len(requests), outcome="failed")
            return
        if not requests:
            return
        if self.telemetry:
            self._stage_latency.observe(
                assembly_seconds, component="runtime", stage="assembly")
        # one forward per execution signature: requests of the same task
        # (and task options) coalesce exactly as before — a micro-batch
        # of only predict requests takes the identical merged path the
        # pre-task runtime took, so its logits are bitwise unchanged
        groups: dict[tuple, list[Request]] = {}
        for request in requests:
            key = (request.task, request.frozen, request.k, request.scorer)
            groups.setdefault(key, []).append(request)
        for group in groups.values():
            self._execute_group(group, assembly_seconds)

    def _merged_task(self, requests: list[Request]) -> ServeTask:
        """The group's merged :class:`ServeTask` (shared task options).

        ``link_score`` pairs cite batch-local rows, so each request's
        pair block is shifted by its row offset in the merged batch.
        """
        proto = requests[0]
        merged = merge_requests(requests)
        pairs = None
        if proto.task == "link_score":
            blocks = []
            offset = 0
            for request in requests:
                shifted = request.pairs.copy()
                shifted[:, 0] += offset
                blocks.append(shifted)
                offset += request.num_nodes
            pairs = np.concatenate(blocks, axis=0)
        return ServeTask(batch=merged, task=proto.task, k=proto.k,
                         pairs=pairs, scorer=proto.scorer)

    def _execute_group(self, requests: list[Request],
                       assembly_seconds: float) -> None:
        started = time.perf_counter()
        try:
            task = self._merged_task(requests)
            frozen = requests[0].frozen or self.precision == "frozen"
            result, compute_seconds, _ = self.prepared.serve_task(
                task, batch_mode=self.batch_mode, frozen=frozen)
        except Exception as error:  # noqa: BLE001 — forwarded to futures
            for request in requests:
                request.future._fail(error)
            self.accounting.observe_failure(len(requests))
            self._requests_total.inc(len(requests), outcome="failed")
            return
        finished = time.perf_counter()
        if self.telemetry:
            self._stage_latency.observe(
                compute_seconds, component="runtime", stage="serve")
        records = []
        offset = 0
        for request in requests:
            rows = result[offset:offset + request.result_rows]
            offset += request.result_rows
            queue_wait = max(started - request.enqueued_at, 0.0)
            if self.telemetry:
                self._stage_latency.observe(
                    queue_wait, component="runtime", stage="queue_wait")
            if request.trace is not None:
                request.trace.add_stage("queue_wait", queue_wait)
                request.trace.add_stage("assembly", assembly_seconds)
                request.trace.add_stage("serve", compute_seconds)
                self.trace_log.observe(request.trace)
            record = RequestRecord(
                num_nodes=request.num_nodes,
                queue_seconds=queue_wait,
                compute_seconds=compute_seconds,
                batch_size=len(requests))
            records.append(record)
            request.future._resolve(rows, record)
        self.accounting.observe_batch(records, started, finished)
        self._requests_total.inc(len(requests), outcome="served")

    # ------------------------------------------------------------------
    # Lifecycle (threaded mode)
    # ------------------------------------------------------------------
    def start(self) -> "ServingRuntime":
        """Start the background serving loop (idempotent)."""
        if self.queue.closed:
            raise ServingError(
                "runtime was stopped and its queue closed; "
                "open a fresh runtime instead of restarting this one")
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stopping.clear()
        self._thread = threading.Thread(target=self._serve_forever,
                                        name="repro-serving", daemon=True)
        self._thread.start()
        return self

    def _serve_forever(self) -> None:
        while not self._stopping.is_set():
            self.step(timeout=0.05)
        self.run_pending()  # drain what was admitted before shutdown

    def stop(self, drain: bool = True) -> None:
        """Close admissions and stop the loop; drains the queue by default.

        Draining also applies admitted deltas; without draining their
        :class:`IngestFuture`\\ s are failed so no waiter blocks forever.
        """
        self.queue.close()
        self._stopping.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if drain:
            self.run_pending()
        else:
            with self._delta_lock:
                abandoned, self._pending_deltas = self._pending_deltas, []
            for _, future in abandoned:
                future._fail(ServingError(
                    "runtime stopped before the delta was applied"))

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def stats(self) -> RuntimeStats:
        """Aggregated latency/throughput accounting so far."""
        return self.accounting.summary()

    def warm_base(self) -> np.ndarray:
        """Cached logits for the deployed (known) nodes."""
        return self.prepared.warm_base()

    def __repr__(self) -> str:
        return (f"ServingRuntime({self.prepared!r}, "
                f"scheduler={self.scheduler!r}, batch_mode={self.batch_mode!r}, "
                f"precision={self.precision!r}, pending={len(self.queue)})")
