"""Online serving runtime: condense offline once, serve traffic forever.

This package turns the one-shot :mod:`repro.inference` engine into a
long-lived service — the deployment shape the paper's Eq. (11) exists
for.  The pieces:

- :mod:`~repro.serving.prepared` — request-invariant cache with an exact
  (bitwise-parity) fast attach+normalize and a cached-propagation path;
- :mod:`~repro.serving.runtime` — micro-batching runtime with futures;
- :mod:`~repro.serving.scheduler` — pluggable batch-formation policies;
- :mod:`~repro.serving.queue` — bounded admission with backpressure;
- :mod:`~repro.serving.workload` — Poisson/bursty/ramp traffic shapes;
- :mod:`~repro.serving.stats` — p50/p95/p99 latency accounting;
- :mod:`~repro.serving.bench` — the ``repro bench`` latency benchmark.

Entry point: ``repro.api.open_runtime(bundle)``.
"""

from repro.serving.prepared import PreparedDeployment
from repro.serving.queue import BoundedRequestQueue, QueueFullError
from repro.serving.runtime import (
    Request,
    ServingFuture,
    ServingRuntime,
    merge_requests,
)
from repro.serving.scheduler import (
    ImmediateScheduler,
    MicroBatchScheduler,
    SizeCapScheduler,
)
from repro.serving.stats import LatencyAccounting, RequestRecord, RuntimeStats
from repro.serving.workload import (
    BurstyWorkload,
    PoissonWorkload,
    RampWorkload,
    WorkloadGenerator,
    replay,
    split_requests,
)
from repro.serving.bench import (
    BENCH_SCHEMA_VERSION,
    check_benchmark_schema,
    run_serving_benchmark,
    write_benchmark_json,
)

__all__ = [
    "PreparedDeployment",
    "BoundedRequestQueue", "QueueFullError",
    "ServingRuntime", "ServingFuture", "Request", "merge_requests",
    "MicroBatchScheduler", "ImmediateScheduler", "SizeCapScheduler",
    "LatencyAccounting", "RequestRecord", "RuntimeStats",
    "WorkloadGenerator", "PoissonWorkload", "BurstyWorkload", "RampWorkload",
    "split_requests", "replay",
    "BENCH_SCHEMA_VERSION", "run_serving_benchmark", "write_benchmark_json",
    "check_benchmark_schema",
]
