"""Online serving runtime: condense offline once, serve traffic forever.

This package turns the one-shot :mod:`repro.inference` engine into a
long-lived service — the deployment shape the paper's Eq. (11) exists
for.  The pieces:

- :mod:`~repro.serving.prepared` — request-invariant cache with an exact
  (bitwise-parity) fast attach+normalize and a cached-propagation path;
- :mod:`~repro.serving.embeddings` — the task-typed request surface:
  :class:`~repro.serving.embeddings.ServeTask` (``predict`` | ``embed``
  | ``link_score`` | ``topk``), the :data:`repro.registry.TASKS`
  executors, the link-prediction scorer/holdout, and the mmap-shareable
  :class:`~repro.serving.embeddings.EmbeddingIndex` sidecar;
- :mod:`~repro.serving.runtime` — micro-batching runtime with futures;
- :mod:`~repro.serving.scheduler` — pluggable batch-formation policies;
- :mod:`~repro.serving.queue` — bounded admission with backpressure;
- :mod:`~repro.serving.workload` — Poisson/bursty/ramp traffic shapes;
- :mod:`~repro.serving.stats` — p50/p95/p99 latency accounting;
- :mod:`~repro.serving.fleet` — the multi-replica process fleet: replica
  pool over a shared memory-mapped artifact, pluggable routers,
  health-checked failover, zero-downtime hot swaps;
- :mod:`~repro.serving.bench` — the ``repro bench`` latency benchmark;
- :mod:`~repro.serving.stream_bench` — the ``repro bench-stream``
  streaming-evolution benchmark (delta refresh vs full rebuild);
- :mod:`~repro.serving.fleet_bench` — the ``repro bench-fleet``
  throughput-scaling / failover / cold-start benchmark;
- :mod:`~repro.serving.protocol` — the gateway's length-prefixed wire
  protocol (JSON or binary payloads) and the stdlib-socket client;
- :mod:`~repro.serving.gateway` — the asyncio TCP/HTTP front door:
  admission control with load shedding, queue-driven replica
  autoscaling, and the Prometheus-scrapeable ``GET /metrics`` page;
- :mod:`~repro.serving.gateway_bench` — the ``repro bench-gateway``
  socket-throughput / shed-accounting / autoscale-reaction /
  telemetry-overhead benchmark;
- :mod:`~repro.serving.embed_bench` — the ``repro bench-embed``
  per-task throughput / index-speedup / link-holdout /
  delta-invalidation benchmark.

Every layer reports into :mod:`repro.telemetry`: registry-backed
counters/gauges, the shared ``repro_stage_latency_seconds`` histogram,
and per-request :class:`~repro.telemetry.TraceContext` stage spans
(see README "Observability").

Entry points: ``repro.api.open_runtime(bundle)`` for a frozen deployment,
``repro.api.open_stream(bundle)`` for one that ingests
:class:`~repro.graph.stream.GraphDelta` traffic while serving,
``repro.api.open_fleet(artifact)`` for a horizontally-scaled replica
fleet, and ``repro.api.open_gateway(artifact)`` for that fleet behind
the network gateway.
"""

from repro.serving.prepared import DeltaRefreshReport, PreparedDeployment
from repro.serving.embeddings import (
    SCORERS,
    EmbeddingIndex,
    ServeTask,
    auc_score,
    evaluate_link_holdout,
    holdout_split,
    sample_link_pairs,
    score_pairs,
    sidecar_index_path,
    tasked_requests,
)
from repro.serving.queue import BoundedRequestQueue, QueueFullError
from repro.serving.runtime import (
    IngestFuture,
    Request,
    ServingFuture,
    ServingRuntime,
    merge_requests,
)
from repro.serving.scheduler import (
    ImmediateScheduler,
    MicroBatchScheduler,
    SizeCapScheduler,
)
from repro.serving.stats import LatencyAccounting, RequestRecord, RuntimeStats
from repro.serving.workload import (
    BurstyWorkload,
    PoissonWorkload,
    RampWorkload,
    WorkloadGenerator,
    replay,
    replay_stream,
    split_requests,
)
from repro.serving.bench import (
    BENCH_SCHEMA_VERSION,
    check_benchmark_schema,
    gate_serving_benchmark,
    run_serving_benchmark,
    write_benchmark_json,
)
from repro.serving.stream_bench import (
    STREAM_BENCH_SCHEMA_VERSION,
    check_streaming_benchmark_schema,
    gate_streaming_benchmark,
    run_streaming_benchmark,
)
from repro.serving.fleet import (
    ConsistentHashRouter,
    FleetFuture,
    LeastLoadedRouter,
    ReplicaPool,
    Router,
    RoundRobinRouter,
    ServingFleet,
    replay_fleet,
)
from repro.serving.fleet_bench import (
    FLEET_BENCH_SCHEMA_VERSION,
    check_fleet_benchmark_schema,
    gate_fleet_benchmark,
    run_fleet_benchmark,
)
from repro.serving.protocol import GatewayClient, GatewayReply, ProtocolError
from repro.serving.gateway import (
    AdmitAllShed,
    PinnedScale,
    QueueDepthScale,
    ScalePolicy,
    ServingGateway,
    ShedPolicy,
    WatermarkShed,
)
from repro.serving.gateway_bench import (
    GATEWAY_BENCH_SCHEMA_VERSION,
    check_gateway_benchmark_schema,
    gate_gateway_benchmark,
    run_gateway_benchmark,
)
from repro.serving.embed_bench import (
    EMBED_BENCH_SCHEMA_VERSION,
    check_embed_benchmark_schema,
    gate_embed_benchmark,
    run_embed_benchmark,
)

__all__ = [
    "PreparedDeployment", "DeltaRefreshReport",
    "ServeTask", "EmbeddingIndex", "SCORERS", "sidecar_index_path",
    "score_pairs", "auc_score", "holdout_split", "sample_link_pairs",
    "evaluate_link_holdout", "tasked_requests",
    "BoundedRequestQueue", "QueueFullError",
    "ServingRuntime", "ServingFuture", "IngestFuture", "Request",
    "merge_requests",
    "MicroBatchScheduler", "ImmediateScheduler", "SizeCapScheduler",
    "LatencyAccounting", "RequestRecord", "RuntimeStats",
    "WorkloadGenerator", "PoissonWorkload", "BurstyWorkload", "RampWorkload",
    "split_requests", "replay", "replay_stream",
    "BENCH_SCHEMA_VERSION", "run_serving_benchmark", "write_benchmark_json",
    "check_benchmark_schema", "gate_serving_benchmark",
    "STREAM_BENCH_SCHEMA_VERSION", "check_streaming_benchmark_schema",
    "gate_streaming_benchmark", "run_streaming_benchmark",
    "ServingFleet", "ReplicaPool", "FleetFuture", "Router",
    "RoundRobinRouter", "LeastLoadedRouter", "ConsistentHashRouter",
    "replay_fleet",
    "FLEET_BENCH_SCHEMA_VERSION", "check_fleet_benchmark_schema",
    "gate_fleet_benchmark", "run_fleet_benchmark",
    "GatewayClient", "GatewayReply", "ProtocolError",
    "ServingGateway", "ShedPolicy", "AdmitAllShed", "WatermarkShed",
    "ScalePolicy", "PinnedScale", "QueueDepthScale",
    "GATEWAY_BENCH_SCHEMA_VERSION", "check_gateway_benchmark_schema",
    "gate_gateway_benchmark", "run_gateway_benchmark",
    "EMBED_BENCH_SCHEMA_VERSION", "check_embed_benchmark_schema",
    "gate_embed_benchmark", "run_embed_benchmark",
]
