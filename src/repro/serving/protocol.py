"""Wire protocol of the network serving gateway.

The gateway (:mod:`repro.serving.gateway`) speaks a small length-prefixed
frame format over TCP.  Every frame is::

    MAGIC(4) | version(1) | header_len(4, !I) | payload_len(4, !I)
    | header JSON (utf-8) | payload bytes

The JSON header carries the operation and its metadata; arrays travel
either inline in the header (``encoding="json"`` — nested lists, exact
for float64 because Python's JSON round-trips doubles bit-for-bit) or in
the binary payload (``encoding="binary"`` — raw little-endian buffers
described by ``{dtype, shape, offset, nbytes}`` specs, the fast path; a
float32 payload is accepted and widened server-side).  Sparse matrices
ship as CSR triples under the same two encodings.

Wire precision contract
-----------------------
The wire format is independent of the server's numeric serving mode
(``float64``/``float32``/``int8`` — see ``docs/precision.md``):

- ``encoding="json"`` carries float64 exactly: Python's ``repr``-based
  JSON serialization round-trips IEEE-754 doubles bit-for-bit, so a
  float64-mode server behind the gateway preserves the end-to-end
  bitwise-parity guarantee over JSON frames.
- ``encoding="binary"`` declares its dtype per array (``float64`` or
  ``float32``).  A float32 buffer halves request bandwidth; the server
  widens it to float64 **once at decode time** (exact — every float32
  is representable as a float64), then serves under whatever numeric
  mode the replicas run.  Sending float32 therefore changes the inputs
  (the client already rounded), never the server's arithmetic.
- Replies always encode logits as float64, whatever mode produced
  them, so client-side decoding is mode-agnostic.

``int8`` never appears on the wire: it is an *artifact/storage* format
(per-column absmax-quantized frozen features, dequantized on gather),
not a transport format.

Request operations:

- ``serve``  — one inductive request: ``features`` ``(n, d)``,
  ``incremental`` ``(n, N)``, optional ``intra`` ``(n, n)``, optional
  ``mode`` (``graph``/``node``), ``frozen`` (cached-propagation path),
  and routing ``key``;
- ``ping``   — liveness probe;
- ``stats``  — the gateway's JSON accounting snapshot.

Version history
---------------
- **v1** — the original single-task format: every ``serve`` frame asks
  for class logits.
- **v2** (current) — the serve header gains an optional ``task`` field
  (``predict`` | ``embed`` | ``link_score`` | ``topk``) plus the
  task-specific ``k`` / ``pairs`` / ``scorer`` options; see
  ``docs/tasks.md``.  A header without ``task`` means ``predict``, so
  **every valid v1 frame is a valid v2 frame with identical meaning**
  and the server keeps accepting v1-stamped prefixes (decoded exactly
  like v2 — v1 simply never carries the new fields).  Unknown tasks are
  rejected with a structured ``error`` reply, never a dropped
  connection.  Replies are unchanged: whatever the task produced
  travels in the ``logits`` array slot (predict: class logits; embed:
  embeddings; link_score: one score per pair; topk: ``(n, 2k)`` rows of
  ``[neighbor ids | cosine scores]``).

Replies carry ``status``: ``ok`` (logits + serving metadata), ``shed``
(admission control refused the request; ``retry_after_ms`` hints when to
come back), or ``error``.  Responses may arrive out of submission order
— the ``id`` echoes the request's, which is what lets one connection
pipeline many requests (:meth:`GatewayClient.submit` /
:meth:`GatewayClient.drain`).

:class:`GatewayClient` is the stdlib-socket client used by the example,
the benchmark, the CI smoke job, and the tests.
"""

from __future__ import annotations

import json
import socket
import struct
import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
# importing the embeddings module also populates the TASKS registry the
# decoder validates task names against
from repro.serving.embeddings import SCORERS, ServeTask
from repro.registry import TASKS

__all__ = ["MAGIC", "PROTOCOL_VERSION", "SUPPORTED_VERSIONS",
           "ProtocolError", "GatewayReply",
           "GatewayClient", "encode_frame", "decode_serve_request",
           "encode_serve_request", "encode_reply", "decode_reply",
           "read_frame_from"]

MAGIC = b"RPRO"
PROTOCOL_VERSION = 2
#: Prefix versions the server accepts.  v1 frames decode as
#: ``task="predict"`` — the v2 header is a strict superset of v1.
SUPPORTED_VERSIONS = (1, 2)
_PREFIX = struct.Struct("!4sBII")

#: Hard ceilings a single frame may not exceed — a corrupted or hostile
#: length prefix must not make the server allocate unbounded memory.
MAX_HEADER_BYTES = 8 * 1024 * 1024
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024

_ENCODINGS = ("json", "binary")
_DTYPES = ("float64", "float32")


class ProtocolError(ServingError):
    """A frame violated the wire format."""


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_frame(header: dict, payload: bytes = b"", *,
                 version: int = PROTOCOL_VERSION) -> bytes:
    """Serialize one frame (prefix + JSON header + payload).

    ``version`` stamps the prefix; pass ``1`` to produce frames a v1
    peer would emit (back-compat tests and old clients).
    """
    if version not in SUPPORTED_VERSIONS:
        raise ServingError(
            f"cannot encode protocol version {version}; "
            f"supported: {SUPPORTED_VERSIONS}")
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(MAGIC, version, len(raw),
                        len(payload)) + raw + payload


def decode_prefix(prefix: bytes) -> tuple[int, int]:
    """Validate a frame prefix; returns ``(header_len, payload_len)``."""
    if len(prefix) != _PREFIX.size:
        raise ProtocolError(
            f"truncated frame prefix ({len(prefix)}/{_PREFIX.size} bytes)")
    magic, version, header_len, payload_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this build speaks {', '.join(map(str, SUPPORTED_VERSIONS))})")
    if header_len > MAX_HEADER_BYTES or payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame too large (header {header_len} B, payload "
            f"{payload_len} B)")
    return header_len, payload_len


def parse_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame header is not valid JSON: {error}")
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(header).__name__}")
    return header


def read_frame_from(read_exactly) -> tuple[dict, bytes]:
    """Read one frame via ``read_exactly(n) -> bytes`` (sync transports)."""
    header_len, payload_len = decode_prefix(read_exactly(_PREFIX.size))
    header = parse_header(read_exactly(header_len))
    payload = read_exactly(payload_len) if payload_len else b""
    return header, payload


# ----------------------------------------------------------------------
# Array and CSR codecs
# ----------------------------------------------------------------------
def _encode_array(array: np.ndarray, encoding: str, dtype: str,
                  payload: bytearray):
    if encoding == "json":
        return np.asarray(array, dtype=np.float64).tolist()
    raw = np.ascontiguousarray(array, dtype=f"<{np.dtype(dtype).str[1:]}")
    offset = len(payload)
    payload.extend(raw.tobytes())
    return {"dtype": dtype, "shape": list(array.shape),
            "offset": offset, "nbytes": raw.nbytes}


def _encode_index_array(array: np.ndarray, encoding: str,
                        payload: bytearray):
    if encoding == "json":
        return np.asarray(array).tolist()
    raw = np.ascontiguousarray(array, dtype="<i8")
    offset = len(payload)
    payload.extend(raw.tobytes())
    return {"dtype": "int64", "shape": list(array.shape),
            "offset": offset, "nbytes": raw.nbytes}


def _decode_array(spec, payload: bytes, *, name: str,
                  index: bool = False) -> np.ndarray:
    """Rebuild an array from a header spec (list or payload descriptor)."""
    if isinstance(spec, list):
        try:
            return np.asarray(spec,
                              dtype=np.int64 if index else np.float64)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"{name}: malformed inline array: {error}")
    if not isinstance(spec, dict):
        raise ProtocolError(
            f"{name}: array spec must be a list or payload descriptor, "
            f"got {type(spec).__name__}")
    try:
        dtype = str(spec["dtype"])
        shape = tuple(int(v) for v in spec["shape"])
        offset, nbytes = int(spec["offset"]), int(spec["nbytes"])
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"{name}: malformed payload descriptor: {error}")
    allowed = ("int64",) if index else _DTYPES
    if dtype not in allowed:
        raise ProtocolError(
            f"{name}: dtype must be one of {allowed}, got {dtype!r}")
    if offset < 0 or nbytes < 0 or offset + nbytes > len(payload):
        raise ProtocolError(
            f"{name}: payload slice [{offset}, {offset + nbytes}) exceeds "
            f"the {len(payload)}-byte payload")
    raw = np.frombuffer(payload, dtype=f"<{np.dtype(dtype).str[1:]}",
                        offset=offset, count=nbytes // np.dtype(dtype).itemsize)
    try:
        raw = raw.reshape(shape)
    except ValueError:
        raise ProtocolError(
            f"{name}: {nbytes} payload bytes do not fill shape {shape}")
    target = np.int64 if index else np.float64
    return np.asarray(raw, dtype=target)  # copies only when widening


def _encode_matrix(matrix, encoding: str, dtype: str, payload: bytearray):
    """Dense array → array spec; sparse → CSR triple of specs."""
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        return {"kind": "csr", "shape": list(csr.shape),
                "data": _encode_array(csr.data, encoding, dtype, payload),
                "indices": _encode_index_array(csr.indices, encoding, payload),
                "indptr": _encode_index_array(csr.indptr, encoding, payload)}
    return _encode_array(np.asarray(matrix), encoding, dtype, payload)


def _decode_matrix(spec, payload: bytes, *, name: str) -> sp.csr_matrix:
    if isinstance(spec, dict) and spec.get("kind") == "csr":
        try:
            shape = tuple(int(v) for v in spec["shape"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"{name}: malformed csr shape: {error}")
        data = _decode_array(spec.get("data"), payload, name=f"{name}.data")
        indices = _decode_array(spec.get("indices"), payload,
                                name=f"{name}.indices", index=True)
        indptr = _decode_array(spec.get("indptr"), payload,
                               name=f"{name}.indptr", index=True)
        try:
            return sp.csr_matrix((data, indices, indptr), shape=shape)
        except (ValueError, IndexError) as error:
            raise ProtocolError(f"{name}: inconsistent csr triple: {error}")
    dense = _decode_array(spec, payload, name=name)
    return sp.csr_matrix(np.atleast_2d(dense))


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def encode_serve_request(request_id: int, request: ServeTask | IncrementalBatch,
                         *, mode: str | None = None, frozen: bool = False,
                         key: str | None = None, encoding: str = "json",
                         dtype: str = "float64",
                         trace_id: str | None = None,
                         version: int = PROTOCOL_VERSION) -> bytes:
    """Build one ``serve`` frame from a :class:`ServeTask` (or a bare
    :class:`IncrementalBatch`, which means ``task="predict"``).

    Task fields (``task``/``k``/``pairs``/``scorer``) are emitted only
    when they differ from the predict defaults, so a predict frame is
    byte-identical to what a v1 client produced.  ``pairs`` always
    travels inline in the header (small integer lists round-trip
    exactly under both encodings).  ``trace_id`` propagates a
    client-chosen trace id into the gateway's request tracing; without
    one the gateway stamps its own.
    """
    if encoding not in _ENCODINGS:
        raise ServingError(
            f"encoding must be one of {_ENCODINGS}, got {encoding!r}")
    if dtype not in _DTYPES:
        raise ServingError(f"dtype must be one of {_DTYPES}, got {dtype!r}")
    if isinstance(request, ServeTask):
        task = request
        mode = task.mode if mode is None else mode
        frozen = frozen or task.frozen
        key = task.key if key is None else key
        trace_id = task.trace_id if trace_id is None else trace_id
    elif isinstance(request, IncrementalBatch):
        task = ServeTask(batch=request)
    else:
        raise ServingError(
            f"expected a ServeTask or IncrementalBatch, "
            f"got {type(request).__name__}")
    if version == 1 and task.task != "predict":
        raise ServingError(
            f"task {task.task!r} needs protocol v2; v1 frames only "
            "carry predict requests")
    batch = task.batch
    payload = bytearray()
    header = {
        "op": "serve",
        "id": int(request_id),
        "encoding": encoding,
        "features": _encode_array(batch.features, encoding, dtype, payload),
        "incremental": _encode_matrix(batch.incremental, encoding, dtype,
                                      payload),
    }
    if batch.intra is not None and batch.intra.nnz:
        header["intra"] = _encode_matrix(batch.intra, encoding, dtype,
                                         payload)
    if task.task != "predict":
        header["task"] = task.task
    if task.task == "topk" and task.k != 10:
        header["k"] = task.k
    if task.pairs is not None:
        header["pairs"] = np.asarray(task.pairs, dtype=np.int64).tolist()
    if task.task == "link_score" and task.scorer != "dot":
        header["scorer"] = task.scorer
    if mode is not None:
        header["mode"] = mode
    if frozen:
        header["frozen"] = True
    if key is not None:
        header["key"] = key
    if trace_id is not None:
        header["trace"] = trace_id
    return encode_frame(header, bytes(payload), version=version)


@dataclass(frozen=True)
class ServeRequest:
    """A decoded ``serve`` frame, ready for ``ServingFleet.submit_task``."""

    request_id: int
    batch: IncrementalBatch
    mode: str | None
    frozen: bool
    key: str | None
    encoding: str
    trace_id: str | None = None
    task: str = "predict"
    k: int = 10
    pairs: np.ndarray | None = None
    scorer: str = "dot"

    def to_task(self) -> ServeTask:
        """The layer-independent request object the fleet executes."""
        return ServeTask(batch=self.batch, task=self.task, mode=self.mode,
                         frozen=self.frozen, key=self.key, k=self.k,
                         pairs=self.pairs, scorer=self.scorer,
                         trace_id=self.trace_id)


def decode_serve_request(header: dict, payload: bytes) -> ServeRequest:
    """Validate and decode one ``serve`` header into a request."""
    request_id = header.get("id")
    if not isinstance(request_id, int):
        raise ProtocolError(f"request id must be an integer, got {request_id!r}")
    mode = header.get("mode")
    if mode is not None and mode not in ("graph", "node"):
        raise ProtocolError(
            f"mode must be 'graph' or 'node', got {mode!r}")
    frozen = header.get("frozen", False)
    if not isinstance(frozen, bool):
        raise ProtocolError(f"frozen must be a boolean, got {frozen!r}")
    key = header.get("key")
    if key is not None and not isinstance(key, str):
        raise ProtocolError(f"routing key must be a string, got {key!r}")
    trace_id = header.get("trace")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError(f"trace id must be a string, got {trace_id!r}")
    # v2 task fields; a v1 header never carries them, so the defaults
    # reproduce v1 semantics exactly (task="predict")
    task = header.get("task", "predict")
    if not isinstance(task, str):
        raise ProtocolError(f"task must be a string, got {task!r}")
    if task not in TASKS:
        raise ProtocolError(
            f"unknown serving task {task!r}; this gateway serves: "
            f"{', '.join(TASKS.keys())}")
    k = header.get("k", 10)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError(f"k must be a positive integer, got {k!r}")
    scorer = header.get("scorer", "dot")
    if scorer not in SCORERS:
        raise ProtocolError(
            f"scorer must be one of {', '.join(SCORERS)}, got {scorer!r}")
    pairs = None
    if "pairs" in header:
        try:
            pairs = np.asarray(header["pairs"], dtype=np.int64)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"malformed pairs: {error}")
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ProtocolError(
                f"pairs must be (p, 2) endpoint indices, "
                f"got shape {pairs.shape}")
    elif task == "link_score":
        raise ProtocolError("link_score frames need a 'pairs' header")
    if "features" not in header or "incremental" not in header:
        raise ProtocolError("serve frame needs 'features' and 'incremental'")
    features = _decode_array(header["features"], payload, name="features")
    features = np.atleast_2d(features)
    if features.ndim != 2 or features.shape[0] == 0:
        raise ProtocolError(
            f"features must be (n >= 1, d), got shape {features.shape}")
    incremental = _decode_matrix(header["incremental"], payload,
                                 name="incremental")
    n = features.shape[0]
    if incremental.shape[0] != n:
        raise ProtocolError(
            f"incremental has {incremental.shape[0]} rows for {n} "
            "feature rows")
    if "intra" in header:
        intra = _decode_matrix(header["intra"], payload, name="intra")
        if intra.shape != (n, n):
            raise ProtocolError(
                f"intra adjacency has shape {intra.shape}, expected "
                f"({n}, {n})")
    else:
        intra = sp.csr_matrix((n, n), dtype=np.float64)
    batch = IncrementalBatch(features=features, incremental=incremental,
                             intra=intra,
                             labels=np.full(n, -1, dtype=np.int64))
    return ServeRequest(request_id=request_id, batch=batch, mode=mode,
                        frozen=frozen, key=key,
                        encoding=header.get("encoding", "json"),
                        trace_id=trace_id, task=task, k=k, pairs=pairs,
                        scorer=scorer)


# ----------------------------------------------------------------------
# Replies
# ----------------------------------------------------------------------
def encode_reply(request_id: int | None, status: str, *,
                 logits: np.ndarray | None = None,
                 error: str | None = None,
                 retry_after_ms: float | None = None,
                 replica_id: int | None = None,
                 attempts: int | None = None,
                 compute_ms: float | None = None,
                 encoding: str = "json",
                 trace_id: str | None = None,
                 stages: dict | None = None) -> bytes:
    """Build one reply frame (``ok`` / ``shed`` / ``error``).

    ``trace_id`` echoes the request's trace and ``stages`` carries its
    per-stage latency breakdown (stage name → milliseconds) so clients
    see where their time went without scraping the gateway.
    """
    payload = bytearray()
    header: dict = {"op": "reply", "id": request_id, "status": status}
    if logits is not None:
        header["logits"] = _encode_array(logits, encoding, "float64", payload)
    if error is not None:
        header["error"] = error
    if retry_after_ms is not None:
        header["retry_after_ms"] = retry_after_ms
    if replica_id is not None:
        header["replica"] = replica_id
    if attempts is not None:
        header["attempts"] = attempts
    if compute_ms is not None:
        header["compute_ms"] = compute_ms
    if trace_id is not None:
        header["trace"] = trace_id
    if stages is not None:
        header["stages"] = stages
    return encode_frame(header, bytes(payload))


@dataclass(frozen=True)
class GatewayReply:
    """One decoded reply frame."""

    request_id: int | None
    status: str  # ok | shed | error | pong | stats
    logits: np.ndarray | None = None
    error: str | None = None
    retry_after_ms: float | None = None
    replica_id: int | None = None
    attempts: int | None = None
    compute_ms: float | None = None
    stats: dict | None = None
    trace_id: str | None = None
    stages: dict | None = None  # stage name -> milliseconds

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def decode_reply(header: dict, payload: bytes) -> GatewayReply:
    status = header.get("status")
    if not isinstance(status, str):
        raise ProtocolError(f"reply misses a status string: {header!r}")
    logits = None
    if "logits" in header:
        logits = _decode_array(header["logits"], payload, name="logits")
    return GatewayReply(
        request_id=header.get("id"), status=status, logits=logits,
        error=header.get("error"),
        retry_after_ms=header.get("retry_after_ms"),
        replica_id=header.get("replica"), attempts=header.get("attempts"),
        compute_ms=header.get("compute_ms"), stats=header.get("stats"),
        trace_id=header.get("trace"), stages=header.get("stages"))


# ----------------------------------------------------------------------
# Synchronous client
# ----------------------------------------------------------------------
class GatewayClient:
    """Stdlib-socket client for the gateway's framed protocol.

    One client owns one TCP connection.  :meth:`serve`/:meth:`serve_batch`
    are the simple request/response path; :meth:`submit` + :meth:`drain`
    pipeline many requests down the same connection without waiting for
    replies in between — the shape the ramp benchmark uses to build real
    queue depth from a single thread.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 60.0, encoding: str = "json") -> None:
        if encoding not in _ENCODINGS:
            raise ServingError(
                f"encoding must be one of {_ENCODINGS}, got {encoding!r}")
        self.encoding = encoding
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 0

    # -- transport ------------------------------------------------------
    def _read_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError(
                    "connection closed mid-frame by the gateway")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_reply(self) -> GatewayReply:
        header, payload = read_frame_from(self._read_exactly)
        return decode_reply(header, payload)

    # -- request/response ----------------------------------------------
    def submit(self, request: ServeTask | IncrementalBatch, *,
               mode: str | None = None,
               frozen: bool = False, key: str | None = None,
               dtype: str = "float64", trace_id: str | None = None) -> int:
        """Send one ``serve`` frame without waiting; returns its id.

        The canonical argument is a :class:`ServeTask`.  Passing a bare
        :class:`IncrementalBatch` with the old per-option keywords is
        deprecated (it means ``task="predict"``); wrap the batch in a
        ``ServeTask`` instead.
        """
        if isinstance(request, IncrementalBatch):
            warnings.warn(
                "GatewayClient.submit(batch, mode=..., frozen=..., "
                "key=...) is deprecated; pass a ServeTask",
                DeprecationWarning, stacklevel=2)
        self._next_id += 1
        frame = encode_serve_request(self._next_id, request, mode=mode,
                                     frozen=frozen, key=key,
                                     encoding=self.encoding, dtype=dtype,
                                     trace_id=trace_id)
        self._sock.sendall(frame)
        return self._next_id

    def drain(self, count: int) -> dict[int, GatewayReply]:
        """Collect ``count`` replies (any order); returns them by id."""
        replies = {}
        for _ in range(count):
            reply = self._read_reply()
            replies[reply.request_id] = reply
        return replies

    def serve_batch(self, request: ServeTask | IncrementalBatch, *,
                    mode: str | None = None, frozen: bool = False,
                    key: str | None = None,
                    dtype: str = "float64") -> GatewayReply:
        """One request, one reply (blocks until the gateway answers)."""
        if isinstance(request, IncrementalBatch):
            request = ServeTask(batch=request, mode=mode, frozen=frozen,
                                key=key)
        request_id = self.submit(request, mode=mode, frozen=frozen, key=key,
                                 dtype=dtype)
        reply = self._read_reply()
        if reply.request_id != request_id:
            raise ProtocolError(
                f"reply id {reply.request_id} does not match request "
                f"{request_id} (mixing serve_batch with pipelining?)")
        return reply

    def serve(self, features, incremental, intra=None, *,
              mode: str | None = None, frozen: bool = False,
              key: str | None = None,
              dtype: str = "float64") -> GatewayReply:
        """Convenience wrapper assembling the batch from raw arrays."""
        feats = np.atleast_2d(np.asarray(features, dtype=np.float64))
        n = feats.shape[0]
        if not sp.issparse(incremental):
            incremental = sp.csr_matrix(
                np.atleast_2d(np.asarray(incremental, dtype=np.float64)))
        if intra is None:
            intra = sp.csr_matrix((n, n), dtype=np.float64)
        elif not sp.issparse(intra):
            intra = sp.csr_matrix(np.asarray(intra, dtype=np.float64))
        batch = IncrementalBatch(features=feats,
                                 incremental=incremental.tocsr(),
                                 intra=intra.tocsr(),
                                 labels=np.full(n, -1, dtype=np.int64))
        return self.serve_batch(batch, mode=mode, frozen=frozen, key=key,
                                dtype=dtype)

    def ping(self) -> GatewayReply:
        self._next_id += 1
        self._sock.sendall(encode_frame({"op": "ping", "id": self._next_id}))
        return self._read_reply()

    def stats(self) -> dict:
        """The gateway's accounting snapshot (admission, scaling, volume)."""
        self._next_id += 1
        self._sock.sendall(encode_frame({"op": "stats", "id": self._next_id}))
        reply = self._read_reply()
        if reply.stats is None:
            raise ProtocolError(f"stats reply carried no stats: {reply}")
        return reply.stats

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
