"""The streaming-evolution benchmark behind ``repro bench-stream``.

Measures, on a simulated dataset deployed on its original graph, what the
streaming subsystem exists for:

- **delta refresh vs full rebuild** — the same delta trace applied to two
  prepared deployments, once with incremental cache refresh and once with
  ``staleness_threshold=0`` (every delta rebuilds the warm caches from
  scratch).  Both end in bit-identical state; the wall-clock ratio is the
  benchmark's headline number and the CI gate.
- **serve latency under concurrent ingest** — a closed-loop runtime
  replay with deltas interleaved between request groups, against the
  same replay without ingest; p95 latency of both is reported.
- **parity** — after the full trace, the incrementally-refreshed
  deployment is compared bit for bit against a from-scratch
  ``PreparedDeployment`` on the evolved graph (operator, propagated
  features, warm logits, served logits).

The result is a machine-readable dict written to ``BENCH_streaming.json``
— the repo's streaming-performance trajectory across commits.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ServingError
from repro.graph.datasets import IncrementalBatch
from repro.graph.stream import make_delta_trace
from repro.serving.prepared import PreparedDeployment
from repro.serving.runtime import ServingRuntime
from repro.serving.workload import replay_stream, split_requests
from repro.utils.reports import require_keys, write_benchmark_json

__all__ = ["STREAM_BENCH_SCHEMA_VERSION", "run_streaming_benchmark",
           "check_streaming_benchmark_schema", "gate_streaming_benchmark",
           "write_benchmark_json"]

STREAM_BENCH_SCHEMA_VERSION = 1


def _warm(prepared: PreparedDeployment) -> None:
    """Materialize the caches the refresh strategies compete over."""
    prepared.base_operator()
    try:
        prepared.propagated_base_features()
    except ServingError:
        pass  # non-linear model: no cached-propagation hops to refresh


def _apply_trace(prepared: PreparedDeployment, trace,
                 threshold: float) -> list:
    _warm(prepared)
    return [prepared.apply_delta(delta, staleness_threshold=threshold)
            for delta in trace]


def _refresh_section(reports) -> dict:
    seconds = [r.seconds for r in reports]
    return {
        "ms_mean": float(np.mean(seconds)) * 1e3,
        "ms_total": float(np.sum(seconds)) * 1e3,
        "modes": {mode: int(sum(r.mode == mode for r in reports))
                  for mode in ("incremental", "rebuild")},
    }


def _pad_incremental(batch: IncrementalBatch, width: int) -> IncrementalBatch:
    inc = batch.incremental.tocsr()
    if inc.shape[1] == width:
        return batch
    padded = sp.csr_matrix((inc.data, inc.indices, inc.indptr),
                           shape=(inc.shape[0], width))
    return IncrementalBatch(features=batch.features, incremental=padded,
                            intra=batch.intra, labels=batch.labels)


def _state_parity(evolved: PreparedDeployment, fresh: PreparedDeployment,
                  probe: IncrementalBatch, batch_mode: str) -> bool:
    checks = [
        np.array_equal(evolved.base_loops.data, fresh.base_loops.data),
        np.array_equal(evolved.base_loops.indices, fresh.base_loops.indices),
        np.array_equal(evolved.base_loops.indptr, fresh.base_loops.indptr),
        np.array_equal(evolved.base_features, fresh.base_features),
        np.array_equal(evolved.base_operator().data,
                       fresh.base_operator().data),
        np.array_equal(evolved.warm_base(), fresh.warm_base()),
    ]
    try:
        hops_a = evolved.propagated_base_features()
        hops_b = fresh.propagated_base_features()
        checks.append(all(np.array_equal(a, b)
                          for a, b in zip(hops_a, hops_b)))
    except ServingError:
        pass
    probe = _pad_incremental(probe, evolved.num_base)
    logits_a, _, memory_a = evolved.serve_batch(probe, batch_mode)
    logits_b, _, memory_b = fresh.serve_batch(probe, batch_mode)
    checks.append(np.array_equal(logits_a, logits_b))
    checks.append(memory_a == memory_b)
    return all(checks)


def _replay_with_ingest(bundle, requests, trace, batch_mode: str,
                        max_batch_size: int, ingest_every: int,
                        staleness_threshold: float) -> ServingRuntime:
    prepared = bundle.prepare()
    _warm(prepared)
    runtime = ServingRuntime(
        prepared, "sizecap", batch_mode=batch_mode,
        scheduler_options={"max_batch_size": max_batch_size})
    runtime.staleness_threshold = staleness_threshold
    replay_stream(runtime, requests, trace, ingest_every)
    return runtime


def run_streaming_benchmark(dataset: str = "pubmed-sim", *,
                            method: str = "mcond", budget: int | None = None,
                            seed: int = 0, scale: float = 1.0,
                            profile: str | None = "quick",
                            num_deltas: int = 10, nodes_per_delta: int = 3,
                            edges_per_delta: int = 4,
                            removals_per_delta: int = 2,
                            updates_per_delta: int = 2,
                            num_requests: int = 48,
                            nodes_per_request: int = 2,
                            max_batch_size: int = 8, ingest_every: int = 4,
                            staleness_threshold: float = 0.25,
                            batch_mode: str = "node") -> dict:
    """Run the streaming benchmark end to end; returns the JSON-ready dict."""
    from repro import api  # local import: serving stays facade-independent
    from repro.experiments import dataset_budgets

    if budget is None:
        budget = dataset_budgets(dataset)[-1]
    bundle = api.deploy(dataset, method, budget, deployment="original",
                        seed=seed, scale=scale, profile=profile)
    batch = api.evaluation_batch(bundle)
    reserved = num_deltas * nodes_per_delta
    if reserved >= batch.num_nodes:
        raise ServingError(
            f"delta trace wants {reserved} nodes but the evaluation batch "
            f"holds {batch.num_nodes}; lower num_deltas/nodes_per_delta")
    delta_pool = batch.subset(np.arange(reserved))
    request_pool = batch.subset(np.arange(reserved, batch.num_nodes))

    def trace():
        return make_delta_trace(
            bundle.base, delta_pool, num_deltas=num_deltas,
            nodes_per_delta=nodes_per_delta,
            edges_per_delta=edges_per_delta,
            removals_per_delta=removals_per_delta,
            updates_per_delta=updates_per_delta, seed=seed)

    # --- delta refresh vs full rebuild -------------------------------
    incremental = bundle.prepare()
    inc_reports = _apply_trace(incremental, trace(), staleness_threshold)
    rebuild = bundle.prepare()
    reb_reports = _apply_trace(rebuild, trace(), 0.0)

    refresh = {
        "delta_refresh": _refresh_section(inc_reports),
        "full_rebuild": _refresh_section(reb_reports),
    }
    refresh["speedup"] = (refresh["full_rebuild"]["ms_total"]
                          / max(refresh["delta_refresh"]["ms_total"], 1e-12))

    # --- parity against a from-scratch prepare -----------------------
    probe = request_pool.subset(np.arange(min(4, request_pool.num_nodes)))
    fresh = PreparedDeployment(bundle.model(), "original", incremental.base)
    parity = {
        "bit_identical": _state_parity(incremental, fresh, probe, batch_mode),
    }

    # --- serve latency under concurrent ingest -----------------------
    requests = split_requests(request_pool, num_requests, nodes_per_request)
    with_ingest = _replay_with_ingest(bundle, requests, trace(), batch_mode,
                                      max_batch_size, ingest_every,
                                      staleness_threshold)
    no_ingest = _replay_with_ingest(bundle, requests, [], batch_mode,
                                    max_batch_size, ingest_every,
                                    staleness_threshold)

    return {
        "schema_version": STREAM_BENCH_SCHEMA_VERSION,
        "kind": "streaming-benchmark",
        "dataset": dataset,
        "method": method,
        "budget": budget,
        "seed": seed,
        "scale": scale,
        "batch_mode": batch_mode,
        "num_deltas": num_deltas,
        "nodes_per_delta": nodes_per_delta,
        "edges_per_delta": edges_per_delta,
        "removals_per_delta": removals_per_delta,
        "updates_per_delta": updates_per_delta,
        "num_requests": num_requests,
        "nodes_per_request": nodes_per_request,
        "max_batch_size": max_batch_size,
        "ingest_every": ingest_every,
        "staleness_threshold": staleness_threshold,
        "refresh": refresh,
        "serving": {
            "with_ingest": with_ingest.stats().as_dict(),
            "no_ingest": no_ingest.stats().as_dict(),
            "stream": with_ingest.stream_stats(),
        },
        "parity": parity,
    }


def check_streaming_benchmark_schema(result: dict) -> None:
    """Validate the benchmark dict's shape; raises ServingError on drift."""
    top = ("schema_version", "kind", "dataset", "method", "budget", "seed",
           "scale", "batch_mode", "num_deltas", "nodes_per_delta",
           "staleness_threshold", "refresh", "serving", "parity")
    require_keys(result, top, "streaming benchmark result", ServingError)
    if result["kind"] != "streaming-benchmark":
        raise ServingError(f"unexpected benchmark kind {result['kind']!r}")
    require_keys(result["refresh"], ("delta_refresh", "full_rebuild",
                                     "speedup"),
                 "refresh section", ServingError)
    for name in ("delta_refresh", "full_rebuild"):
        require_keys(result["refresh"][name], ("ms_mean", "ms_total",
                                               "modes"),
                     f"refresh.{name}", ServingError)
    require_keys(result["serving"], ("with_ingest", "no_ingest", "stream"),
                 "serving section", ServingError)
    for name in ("with_ingest", "no_ingest"):
        require_keys(result["serving"][name],
                     ("requests", "latency_p95_ms", "throughput_rps"),
                     f"serving.{name}", ServingError)
    require_keys(result["serving"]["stream"],
                 ("deltas", "incremental", "rebuilds", "refresh_mean_ms"),
                 "serving.stream", ServingError)
    require_keys(result["parity"], ("bit_identical",), "parity section",
                 ServingError)


def gate_streaming_benchmark(result: dict,
                             min_speedup: float = 1.0) -> list[str]:
    """Perf-gate checks; returns human-readable failure strings (empty =
    green).  The gate is the tentpole's contract: the incremental path
    must beat a full rebuild, and must do so without drifting a bit."""
    check_streaming_benchmark_schema(result)
    failures = []
    speedup = result["refresh"]["speedup"]
    if speedup < min_speedup:
        failures.append(
            f"delta refresh is not faster than a full rebuild "
            f"({speedup:.2f}x < {min_speedup:.2f}x)")
    if not result["parity"]["bit_identical"]:
        failures.append(
            "incremental refresh drifted from the from-scratch prepare "
            "(bitwise parity broken)")
    return failures
