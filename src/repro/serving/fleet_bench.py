"""The multi-replica fleet benchmark behind ``repro bench-fleet``.

Measures the three properties the fleet exists for, on a simulated
dataset, and writes the machine-readable ``BENCH_fleet.json`` — the
repo's fleet-performance trajectory across commits:

- **cold start** — wall-clock to load + prepare a deployment from the
  artifact, memory-mapped (zero-copy) vs eager (decompress-and-copy);
- **throughput scaling** — closed-loop requests/s at replica counts
  {1, 2, 4} (configurable), same request stream for every count;
- **failover tail** — p95 latency and lost-request count when a replica
  is killed mid-stream (the answer must be zero lost).

The ``--gate`` checks are strict everywhere they can be: bitwise mmap
parity, zero requests lost under failover, and mmap beating eager on
cold start.  The *scaling* check is parallelism-aware: on a host with
two or more usable cores, two replicas must beat one on throughput; on
a single-core host process replication cannot speed up CPU-bound
serving (there is nothing to overlap), so the check degrades to
"replication keeps throughput within ``single_core_tolerance`` of one
replica" — the host's ``usable_cores`` is recorded in the result so the
mode is always auditable.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.errors import ServingError
from repro.serving.fleet import ServingFleet, replay_fleet
from repro.serving.workload import split_requests
from repro.utils.reports import write_benchmark_json

__all__ = ["FLEET_BENCH_SCHEMA_VERSION", "run_fleet_benchmark",
           "check_fleet_benchmark_schema", "gate_fleet_benchmark",
           "write_benchmark_json", "usable_cores"]

FLEET_BENCH_SCHEMA_VERSION = 1


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS)
        return os.cpu_count() or 1


def _measure_cold_start(path: Path, repeats: int) -> dict:
    """Best-of-``repeats`` load+prepare wall-clock, mmap vs eager."""
    from repro.api import DeploymentBundle

    results = {}
    for label, mmap_flag in (("eager", False), ("mmap", True)):
        best = np.inf
        for _ in range(repeats):
            started = time.perf_counter()
            bundle = DeploymentBundle.load(path, mmap=mmap_flag)
            bundle.prepare()
            best = min(best, time.perf_counter() - started)
        results[f"{label}_ms"] = best * 1e3
    results["speedup"] = results["eager_ms"] / results["mmap_ms"]
    results["repeats"] = repeats
    return results


def _check_parity(path: Path, requests, batch_mode: str) -> bool:
    """Bitwise serve parity: mmap-loaded vs eager-loaded deployment."""
    from repro.api import DeploymentBundle

    eager = DeploymentBundle.load(path).prepare()
    mapped = DeploymentBundle.load(path, mmap=True).prepare()
    for request in requests:
        left, _, _ = eager.serve_batch(request, batch_mode)
        right, _, _ = mapped.serve_batch(request, batch_mode)
        if not np.array_equal(left, right):
            return False
    return True


def _measure_throughput(path: Path, replicas: int, requests, *,
                        router: str, batch_mode: str) -> dict:
    with ServingFleet(path, replicas, router=router,
                      batch_mode=batch_mode) as fleet:
        # warm every replica's request-invariant caches off the clock —
        # and out of the latency window, so the percentiles below are
        # steady-state serving, not first-touch cache population
        replay_fleet(fleet, requests[:2 * replicas])
        fleet.reset_latencies()
        started = time.perf_counter()
        results = replay_fleet(fleet, requests)
        wall = time.perf_counter() - started
        stats = fleet.stats()
    served = sum(result is not None for result in results)
    return {
        "replicas": replicas,
        "requests": len(requests),
        "served": served,
        "wall_s": wall,
        "requests_per_s": served / wall if wall > 0 else 0.0,
        "latency_p50_ms": stats["latency_p50_ms"],
        "latency_p95_ms": stats["latency_p95_ms"],
    }


def _measure_failover(path: Path, requests, *, router: str,
                      batch_mode: str) -> dict:
    """Kill one of two replicas mid-stream; count what the fleet loses."""
    half = len(requests) // 2
    with ServingFleet(path, 2, router=router, batch_mode=batch_mode) as fleet:
        replay_fleet(fleet, requests[:4])  # warm off the clock
        fleet.reset_latencies()
        futures = [fleet.submit_batch(r) for r in requests[:half]]
        fleet.kill_replica(0)
        futures += [fleet.submit_batch(r) for r in requests[half:]]
        lost = 0
        for future in futures:
            try:
                future.result(timeout=120.0)
            except ServingError:
                lost += 1
        stats = fleet.stats()
    return {
        "replicas": 2,
        "killed_after": half,
        "requests": len(requests),
        "requests_lost": lost,
        "rerouted": stats["rerouted"],
        "respawns": stats["respawns"],
        "latency_p95_ms": stats["latency_p95_ms"],
    }


def run_fleet_benchmark(dataset: str = "pubmed-sim", *,
                        method: str = "mcond", budget: int | None = None,
                        seed: int = 0, scale: float = 1.0,
                        profile: str | None = "quick",
                        deployment: str = "original",
                        replica_counts: tuple[int, ...] = (1, 2, 4),
                        num_requests: int = 48, nodes_per_request: int = 8,
                        router: str = "round-robin",
                        batch_mode: str = "node",
                        cold_start_repeats: int = 5,
                        artifact_path: str | Path | None = None) -> dict:
    """Run the fleet benchmark end to end; returns the JSON-ready dict.

    ``deployment="original"`` (default) keeps the base graph in the
    artifact — the multi-megabyte shape where zero-copy sharing across
    replicas actually matters; pass ``"synthetic"`` to benchmark the
    condensed deployment instead.
    """
    from repro import api  # local import: serving stays facade-independent
    from repro.experiments import dataset_budgets

    if budget is None:
        budget = dataset_budgets(dataset)[-1]
    if 1 not in replica_counts or len(replica_counts) < 2:
        raise ServingError(
            "replica_counts needs 1 plus at least one scaled count, "
            f"got {replica_counts}")
    bundle = api.deploy(dataset, method, budget, seed=seed, scale=scale,
                        profile=profile, deployment=deployment)
    temp_dir = None
    if artifact_path is None:
        import tempfile
        temp_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        artifact_path = Path(temp_dir) / "fleet.npz"
    try:
        path = bundle.save(artifact_path, layout="mmap")
        requests = split_requests(api.evaluation_batch(bundle), num_requests,
                                  nodes_per_request)

        throughput = {str(k): _measure_throughput(path, k, requests,
                                                  router=router,
                                                  batch_mode=batch_mode)
                      for k in replica_counts}
        base_rps = throughput["1"]["requests_per_s"]
        scaling = {f"speedup_{k}x":
                   throughput[str(k)]["requests_per_s"] / base_rps
                   for k in replica_counts if k != 1}
        cores = usable_cores()
        scaling["mode"] = "parallel" if cores >= 2 else "single-core"

        return {
            "schema_version": FLEET_BENCH_SCHEMA_VERSION,
            "kind": "fleet-benchmark",
            "dataset": dataset,
            "method": method,
            "budget": budget,
            "seed": seed,
            "scale": scale,
            "deployment": deployment,
            "batch_mode": batch_mode,
            "router": router,
            "num_requests": num_requests,
            "nodes_per_request": nodes_per_request,
            "usable_cores": cores,
            "artifact": {"layout": "mmap", "bytes": int(path.stat().st_size)},
            "cold_start": _measure_cold_start(path, cold_start_repeats),
            "throughput": throughput,
            "scaling": scaling,
            "failover": _measure_failover(path, requests, router=router,
                                          batch_mode=batch_mode),
            "parity": {"mmap_bitwise_equal":
                       _check_parity(path, requests[:4], batch_mode)},
        }
    finally:
        if temp_dir is not None:
            import shutil
            shutil.rmtree(temp_dir, ignore_errors=True)


def check_fleet_benchmark_schema(result: dict) -> None:
    """Validate the benchmark dict's shape; raises ServingError on drift."""
    top = ("schema_version", "kind", "dataset", "method", "budget", "seed",
           "scale", "deployment", "batch_mode", "router", "num_requests",
           "nodes_per_request", "usable_cores", "artifact", "cold_start",
           "throughput", "scaling", "failover", "parity")
    missing = [key for key in top if key not in result]
    if missing:
        raise ServingError(f"fleet benchmark misses keys: {missing}")
    if result["kind"] != "fleet-benchmark":
        raise ServingError(f"unexpected benchmark kind {result['kind']!r}")
    for key in ("eager_ms", "mmap_ms", "speedup", "repeats"):
        if key not in result["cold_start"]:
            raise ServingError(f"cold_start misses {key!r}")
    if "1" not in result["throughput"] or len(result["throughput"]) < 2:
        raise ServingError(
            "throughput needs replicas=1 plus at least one scaled count")
    for name, entry in result["throughput"].items():
        for key in ("replicas", "requests", "served", "wall_s",
                    "requests_per_s", "latency_p50_ms", "latency_p95_ms"):
            if key not in entry:
                raise ServingError(f"throughput[{name}] misses {key!r}")
    if "mode" not in result["scaling"]:
        raise ServingError("scaling misses 'mode'")
    for key in ("replicas", "killed_after", "requests", "requests_lost",
                "rerouted", "respawns", "latency_p95_ms"):
        if key not in result["failover"]:
            raise ServingError(f"failover misses {key!r}")
    if "mmap_bitwise_equal" not in result["parity"]:
        raise ServingError("parity misses 'mmap_bitwise_equal'")


def gate_fleet_benchmark(result: dict, *,
                         min_cold_start_speedup: float = 1.0,
                         single_core_tolerance: float = 0.85) -> list[str]:
    """Perf-gate checks; returns failure messages (empty = gate passed)."""
    failures = []
    if not result["parity"]["mmap_bitwise_equal"]:
        failures.append(
            "mmap-loaded deployment is not bitwise equal to eager loading")
    cold = result["cold_start"]
    if cold["speedup"] <= min_cold_start_speedup:
        failures.append(
            f"mmap cold start ({cold['mmap_ms']:.2f} ms) does not beat "
            f"eager loading ({cold['eager_ms']:.2f} ms)")
    failover = result["failover"]
    if failover["requests_lost"] > 0:
        failures.append(
            f"failover lost {failover['requests_lost']} requests "
            "(every in-flight request must be re-routed)")
    rps_1 = result["throughput"]["1"]["requests_per_s"]
    rps_2 = result["throughput"].get("2", {}).get("requests_per_s")
    if rps_2 is None:
        failures.append("throughput has no replicas=2 measurement to gate")
    elif result["usable_cores"] >= 2:
        if rps_2 <= rps_1:
            failures.append(
                f"2 replicas ({rps_2:.0f} req/s) do not beat 1 replica "
                f"({rps_1:.0f} req/s) on a {result['usable_cores']}-core host")
    elif rps_2 < single_core_tolerance * rps_1:
        failures.append(
            f"single-core host: replication overhead pushed 2-replica "
            f"throughput ({rps_2:.0f} req/s) below {single_core_tolerance:.0%} "
            f"of 1 replica ({rps_1:.0f} req/s)")
    return failures
