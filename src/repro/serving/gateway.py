"""Async network gateway: the fleet's TCP front door.

:class:`ServingGateway` runs an ``asyncio`` server (stdlib only) on a
dedicated thread and forwards decoded
:mod:`~repro.serving.protocol` requests into a
:class:`~repro.serving.fleet.ServingFleet`.  On top of plain forwarding
it layers the two things a network tier owes its operators:

- **Admission control / load shedding.**  Every admitted request holds a
  token in a :class:`~repro.serving.queue.BoundedRequestQueue`
  (``overflow="reject"``) — the hard in-flight ceiling — while a
  pluggable *shed policy* (:data:`repro.registry.SHED_POLICIES`) sheds
  softly before the ceiling: the default ``watermark`` policy starts
  refusing work when queue depth crosses a high watermark and keeps
  refusing (hysteresis) until it falls back below the low one.  A shed
  response is retriable and carries a ``retry_after_ms`` hint.
- **Queue-driven autoscaling.**  A background loop samples queue depth
  and the fleet's rolling p95, asks a *scale policy*
  (:data:`repro.registry.SCALE_POLICIES`) for a target replica count,
  and applies it through :meth:`ServingFleet.scale_to` — bounded by
  min/max replicas and a cooldown so one burst cannot thrash the pool.

The event loop thread only does protocol work; serving happens in the
fleet's replica processes.  Completions hop back onto the loop via
:meth:`ServingFuture.add_done_callback` +
``loop.call_soon_threadsafe`` — no waiter thread per in-flight request.
Plain HTTP ``GET /healthz``, ``GET /stats``, and ``GET /metrics``
(Prometheus text exposition over the gateway's and the fleet's
registries) are answered too (the first bytes disambiguate: framed
requests start with the protocol magic), so a load balancer or a
Prometheus scraper can probe the gateway without speaking the framed
protocol.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from repro.errors import ServingError
from repro.registry import (make_scale_policy, make_shed_policy,
                            register_scale_policy, register_shed_policy)
from repro.serving import protocol
from repro.serving.fleet import ServingFleet
from repro.serving.queue import (BoundedRequestQueue, QueueClosedError,
                                 QueueFullError)
from repro.telemetry import (
    MetricsRegistry,
    TraceContext,
    TraceLog,
    render_exposition,
)

__all__ = ["ServingGateway", "ShedPolicy", "AdmitAllShed", "WatermarkShed",
           "ScalePolicy", "PinnedScale", "QueueDepthScale"]


# ----------------------------------------------------------------------
# Shed policies (admission control)
# ----------------------------------------------------------------------
class ShedPolicy:
    """Decide whether to admit one request given current congestion.

    ``admit`` returns ``None`` to admit, or a retry-after hint in
    milliseconds to shed.  Called on the gateway's event-loop thread
    only, so implementations may keep unsynchronized state.
    """

    name = "base"

    def admit(self, *, queue_depth: int, capacity: int) -> float | None:
        raise NotImplementedError

    def state(self) -> dict:
        """JSON-ready view of the policy's internal state (for
        ``GET /stats``); stateless policies report ``{}``."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AdmitAllShed(ShedPolicy):
    """Never shed — the hard in-flight ceiling is the only brake."""

    name = "admit-all"

    def admit(self, *, queue_depth: int, capacity: int) -> float | None:
        return None


class WatermarkShed(ShedPolicy):
    """Shed above a high watermark, recover below a low one.

    Watermarks are fractions of the gateway's in-flight capacity.  The
    hysteresis band prevents flapping right at the threshold: once
    shedding starts it continues until depth falls to the low watermark.
    The retry hint grows with the overload so heavier congestion pushes
    retries further out.
    """

    name = "watermark"

    def __init__(self, high: float = 0.75, low: float = 0.5,
                 retry_after_ms: float = 50.0) -> None:
        if not 0.0 < high <= 1.0:
            raise ServingError(
                f"high watermark must be in (0, 1], got {high}")
        if not 0.0 <= low <= high:
            raise ServingError(
                f"low watermark must be in [0, high={high}], got {low}")
        if retry_after_ms <= 0:
            raise ServingError(
                f"retry_after_ms must be positive, got {retry_after_ms}")
        self.high = high
        self.low = low
        self.retry_after_ms = retry_after_ms
        self._shedding = False

    def admit(self, *, queue_depth: int, capacity: int) -> float | None:
        fill = queue_depth / capacity if capacity else 1.0
        if self._shedding:
            if fill <= self.low:
                self._shedding = False
        elif fill >= self.high:
            self._shedding = True
        if not self._shedding:
            return None
        return self.retry_after_ms * max(1.0, fill / self.high)

    def state(self) -> dict:
        return {"shedding": self._shedding, "high": self.high,
                "low": self.low}

    def __repr__(self) -> str:
        return (f"WatermarkShed(high={self.high}, low={self.low}, "
                f"retry_after_ms={self.retry_after_ms})")


@register_shed_policy(
    "admit-all",
    description="no soft shedding; only the hard in-flight cap refuses work")
def _admit_all(**_ignored) -> AdmitAllShed:
    return AdmitAllShed()


@register_shed_policy(
    "watermark",
    description="shed with a retry-after hint above a high queue-depth "
                "watermark, recover below the low one (hysteresis)")
def _watermark(high: float = 0.75, low: float = 0.5,
               retry_after_ms: float = 50.0, **_ignored) -> WatermarkShed:
    return WatermarkShed(high=high, low=low, retry_after_ms=retry_after_ms)


# ----------------------------------------------------------------------
# Scale policies (autoscaling)
# ----------------------------------------------------------------------
class ScalePolicy:
    """Pick a target replica count from congestion signals.

    ``target`` receives the current replica count, the gateway queue
    depth, and the fleet's rolling p95 (ms, ``None`` until the window
    has data) and returns the desired count; the gateway applies it
    under its cooldown.  Called from the autoscaler thread only.
    """

    name = "base"

    def target(self, *, replicas: int, queue_depth: int,
               p95_ms: float | None) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PinnedScale(ScalePolicy):
    """Hold the fleet at its current (or a fixed) size — no autoscaling."""

    name = "pinned"

    def __init__(self, replicas: int | None = None) -> None:
        if replicas is not None and replicas <= 0:
            raise ServingError(
                f"pinned replica count must be positive, got {replicas}")
        self.replicas = replicas

    def target(self, *, replicas: int, queue_depth: int,
               p95_ms: float | None) -> int:
        return self.replicas if self.replicas is not None else replicas


class QueueDepthScale(ScalePolicy):
    """Scale on per-replica backlog, with an optional p95 trip wire.

    Grow one replica when the backlog per replica reaches
    ``up_backlog`` (or the rolling p95 crosses ``p95_up_ms``), shrink
    one when it falls to ``down_backlog`` — always one step at a time,
    inside ``[min_replicas, max_replicas]``; the gateway's cooldown
    spaces the steps out.
    """

    name = "queue-depth"

    def __init__(self, min_replicas: int = 1, max_replicas: int = 4,
                 up_backlog: float = 4.0, down_backlog: float = 1.0,
                 p95_up_ms: float | None = None) -> None:
        if min_replicas <= 0:
            raise ServingError(
                f"min_replicas must be positive, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ServingError(
                f"max_replicas ({max_replicas}) must be >= min_replicas "
                f"({min_replicas})")
        if down_backlog > up_backlog:
            raise ServingError(
                f"down_backlog ({down_backlog}) must be <= up_backlog "
                f"({up_backlog})")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.up_backlog = up_backlog
        self.down_backlog = down_backlog
        self.p95_up_ms = p95_up_ms

    def target(self, *, replicas: int, queue_depth: int,
               p95_ms: float | None) -> int:
        backlog = queue_depth / max(replicas, 1)
        hot = backlog >= self.up_backlog or (
            self.p95_up_ms is not None and p95_ms is not None
            and p95_ms >= self.p95_up_ms)
        if hot:
            proposed = replicas + 1
        elif backlog <= self.down_backlog:
            proposed = replicas - 1
        else:
            proposed = replicas
        return min(max(proposed, self.min_replicas), self.max_replicas)

    def __repr__(self) -> str:
        return (f"QueueDepthScale(min={self.min_replicas}, "
                f"max={self.max_replicas}, up={self.up_backlog}, "
                f"down={self.down_backlog}, p95_up_ms={self.p95_up_ms})")


@register_scale_policy(
    "pinned", description="hold the fleet at a fixed size (no autoscaling)")
def _pinned(replicas: int | None = None, **_ignored) -> PinnedScale:
    return PinnedScale(replicas=replicas)


@register_scale_policy(
    "queue-depth",
    description="one replica up/down on per-replica backlog thresholds, "
                "optional rolling-p95 trip wire, min/max bounds")
def _queue_depth(min_replicas: int = 1, max_replicas: int = 4,
                 up_backlog: float = 4.0, down_backlog: float = 1.0,
                 p95_up_ms: float | None = None,
                 **_ignored) -> QueueDepthScale:
    return QueueDepthScale(min_replicas=min_replicas,
                           max_replicas=max_replicas, up_backlog=up_backlog,
                           down_backlog=down_backlog, p95_up_ms=p95_up_ms)


# ----------------------------------------------------------------------
# The gateway
# ----------------------------------------------------------------------
class _Connection:
    """Loop-side state of one framed connection (writer queue + task)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()


class ServingGateway:
    """Network front-end owning admission control and autoscaling.

    Parameters
    ----------
    fleet:
        The :class:`ServingFleet` requests are forwarded into.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read the bound
        one from :attr:`port` after :meth:`start`).
    shed_policy:
        A :class:`ShedPolicy`, a :data:`~repro.registry.SHED_POLICIES`
        key, or ``None`` for ``admit-all``.
    max_inflight:
        Hard ceiling on requests admitted but unanswered — the capacity
        of the admission :class:`BoundedRequestQueue` and the base of the
        shed policy's watermarks.
    scale_policy:
        A :class:`ScalePolicy`, a :data:`~repro.registry.SCALE_POLICIES`
        key, or ``None`` to disable the autoscaler loop entirely.
    autoscale_interval / scale_cooldown:
        Sampling period of the autoscaler and the minimum spacing
        between consecutive scaling actions, in seconds.
    owns_fleet:
        When set (``api.open_gateway``), :meth:`close` also closes the
        fleet.
    telemetry:
        Stamp a :class:`~repro.telemetry.TraceContext` on every admitted
        request (per-stage spans through the fleet, slow-request ring,
        stage breakdown echoed on the reply frame) and feed the
        per-stage histograms.  The exact offered/served/shed/errors
        counters report either way.
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` to report into
        (default: a private one, exposed as ``gateway.metrics``);
        ``GET /metrics`` merges it with the fleet's.
    slow_trace_ms:
        Threshold for the structured slow-request log line (``None``
        disables logging; the ring still retains traces for
        :meth:`slowest`).
    """

    def __init__(self, fleet: ServingFleet, *, host: str = "127.0.0.1",
                 port: int = 0, shed_policy: ShedPolicy | str | None = None,
                 max_inflight: int = 256,
                 scale_policy: ScalePolicy | str | None = None,
                 autoscale_interval: float = 0.25,
                 scale_cooldown: float = 2.0,
                 owns_fleet: bool = False, telemetry: bool = True,
                 metrics: MetricsRegistry | None = None,
                 trace_capacity: int = 256,
                 slow_trace_ms: float | None = None) -> None:
        if max_inflight <= 0:
            raise ServingError(
                f"max_inflight must be positive, got {max_inflight}")
        if autoscale_interval <= 0:
            raise ServingError(
                f"autoscale_interval must be positive, got "
                f"{autoscale_interval}")
        if scale_cooldown < 0:
            raise ServingError(
                f"scale_cooldown must be non-negative, got {scale_cooldown}")
        if shed_policy is None:
            shed_policy = AdmitAllShed()
        elif isinstance(shed_policy, str):
            shed_policy = make_shed_policy(shed_policy)
        if isinstance(scale_policy, str):
            scale_policy = make_scale_policy(scale_policy)
        self.fleet = fleet
        self.host = host
        self.port = port
        self.shed_policy = shed_policy
        self.scale_policy = scale_policy
        self.max_inflight = max_inflight
        self.autoscale_interval = autoscale_interval
        self.scale_cooldown = scale_cooldown
        self.owns_fleet = owns_fleet
        #: one token per admitted-but-unanswered request; ``reject`` is
        #: the hard backstop behind the soft shed policy
        self._admission = BoundedRequestQueue(capacity=max_inflight,
                                              overflow="reject")
        self.telemetry = bool(telemetry)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_log = TraceLog(capacity=trace_capacity,
                                  slow_ms=slow_trace_ms)
        # registry-backed counters, written on the event-loop thread only;
        # offered/served/shed/errors read them back (dict shape unchanged)
        self._requests_total = self.metrics.counter(
            "repro_gateway_requests_total",
            "Serve frames handled by the gateway, by outcome "
            "(offered counts every frame; served/shed/error are terminal).",
            ("outcome",))
        self._shed_detail = self.metrics.counter(
            "repro_gateway_shed_total",
            "Requests shed, by deciding policy (the configured shed "
            "policy, 'draining', or the hard 'capacity' backstop).",
            ("policy",))
        self._scale_events_total = self.metrics.counter(
            "repro_gateway_scale_events_total",
            "Autoscaler actions applied, by direction.", ("action",))
        self.metrics.gauge(
            "repro_gateway_inflight",
            "Requests admitted but not yet answered.",
            callback=lambda: len(self._admission))
        self.metrics.gauge(
            "repro_gateway_max_inflight",
            "Hard ceiling of the admission queue.",
            callback=lambda: self.max_inflight)
        self.metrics.gauge(
            "repro_gateway_draining",
            "1 while the gateway sheds all new work for shutdown.",
            callback=lambda: float(self._draining))
        self._stage_latency = self.metrics.histogram(
            "repro_stage_latency_seconds",
            "Per-stage request latency across the serving layers.",
            ("component", "stage"))
        #: scaling actions: {"t_s", "action", "from", "to", "queue_depth",
        #: "p95_ms"} — the benchmark reads reaction times off this
        self.scale_events: list[dict] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._autoscaler: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._closing = threading.Event()
        self._draining = False
        self._started_at: float | None = None
        self._last_scale = float("-inf")

    # ------------------------------------------------------------------
    # Registry-backed accounting (the ints these replaced read back the
    # counter family, so stats()'s dict shape is unchanged)
    # ------------------------------------------------------------------
    @property
    def offered(self) -> int:
        return int(self._requests_total.value(outcome="offered"))

    @property
    def served(self) -> int:
        return int(self._requests_total.value(outcome="served"))

    @property
    def shed(self) -> int:
        return int(self._requests_total.value(outcome="shed"))

    @property
    def errors(self) -> int:
        return int(self._requests_total.value(outcome="error"))

    def slowest(self, n: int = 10) -> list[TraceContext]:
        """The ``n`` slowest completed traces, slowest first."""
        return self.trace_log.slowest(n)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, timeout: float = 30.0) -> tuple[str, int]:
        """Bind and serve; returns ``(host, port)`` actually bound."""
        if self._loop is not None:
            raise ServingError("gateway is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="repro-gateway-loop",
                                        daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._open_server(),
                                                  self._loop)
        try:
            self.host, self.port = future.result(timeout=timeout)
        except Exception:
            self._stop_loop()
            raise
        self._started_at = time.monotonic()
        if self.scale_policy is not None:
            self._autoscaler = threading.Thread(
                target=self._autoscale_forever,
                name="repro-gateway-autoscaler", daemon=True)
            self._autoscaler.start()
        return self.host, self.port

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        # drain the callback queue so late completions don't leak
        self._loop.close()

    async def _open_server(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._handle_connection,
                                                  self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def started_at(self) -> float | None:
        """``time.monotonic()`` stamp of :meth:`start` — the zero point
        of every ``scale_events`` entry's ``t_s``."""
        return self._started_at

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop the gateway; by default answers admitted requests first.

        The drain sequence (also what SIGTERM triggers in the CLI):
        stop accepting connections, shed any new ``serve`` frames from
        connections that are still open, wait until every admitted
        request has been answered and flushed, then tear the loop down.
        With ``owns_fleet`` the fleet is closed too.
        """
        if self._closing.is_set():
            return
        self._draining = True
        self._closing.set()
        if self._autoscaler is not None:
            self._autoscaler.join(timeout=10.0)
        if self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(drain, timeout), self._loop)
            try:
                future.result(timeout=timeout + 10.0)
            except Exception:  # noqa: BLE001 — tear the loop down anyway
                pass
            self._stop_loop()
        self._admission.close()
        if self.owns_fleet:
            self.fleet.close(drain=drain)

    async def _shutdown(self, drain: bool, timeout: float) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = self._loop.time() + timeout
            while len(self._admission) and self._loop.time() < deadline:
                await asyncio.sleep(0.01)
        for connection in list(self._connections):
            connection.outbox.put_nowait(None)
        # the sentinel makes each writer flush and close its transport,
        # which wakes the paired reader; wait (bounded) for both tasks to
        # finish so stopping the loop does not destroy them mid-await
        deadline = self._loop.time() + 5.0
        while self._connections and self._loop.time() < deadline:
            await asyncio.sleep(0.01)

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServingGateway":
        if self._loop is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readexactly(len(protocol.MAGIC))
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        if first != protocol.MAGIC:
            await self._handle_http(first, reader, writer)
            return
        connection = _Connection(writer)
        self._connections.add(connection)
        writer_task = asyncio.ensure_future(self._write_forever(connection))
        try:
            carried = first
            while True:
                prefix = carried + await reader.readexactly(
                    protocol._PREFIX.size - len(carried))
                header_len, payload_len = protocol.decode_prefix(prefix)
                header = protocol.parse_header(
                    await reader.readexactly(header_len))
                payload = (await reader.readexactly(payload_len)
                           if payload_len else b"")
                self._handle_frame(connection, header, payload)
                carried = await reader.readexactly(len(protocol.MAGIC))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away (clean EOF included)
        except protocol.ProtocolError as error:
            connection.outbox.put_nowait(protocol.encode_reply(
                None, "error", error=str(error)))
        finally:
            connection.outbox.put_nowait(None)
            await writer_task
            self._connections.discard(connection)

    async def _write_forever(self, connection: _Connection) -> None:
        """Flush reply frames in arrival order; ``None`` ends the task."""
        writer = connection.writer
        try:
            while True:
                frame = await connection.outbox.get()
                if frame is None:
                    break
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Frame handling (event-loop thread)
    # ------------------------------------------------------------------
    def _handle_frame(self, connection: _Connection, header: dict,
                      payload: bytes) -> None:
        op = header.get("op")
        request_id = header.get("id")
        if op == "ping":
            connection.outbox.put_nowait(
                protocol.encode_reply(request_id, "pong"))
        elif op == "stats":
            connection.outbox.put_nowait(protocol.encode_frame(
                {"op": "reply", "id": request_id, "status": "stats",
                 "stats": self.stats()}))
        elif op == "serve":
            self._handle_serve(connection, header, payload)
        else:
            connection.outbox.put_nowait(protocol.encode_reply(
                request_id, "error", error=f"unknown operation {op!r}"))

    def _handle_serve(self, connection: _Connection, header: dict,
                      payload: bytes) -> None:
        admitted_at = time.perf_counter()
        self._requests_total.inc(outcome="offered")
        try:
            request = protocol.decode_serve_request(header, payload)
        except protocol.ProtocolError as error:
            self._requests_total.inc(outcome="error")
            connection.outbox.put_nowait(protocol.encode_reply(
                header.get("id") if isinstance(header.get("id"), int)
                else None, "error", error=str(error)))
            return
        if self._draining:
            self._shed_reply(connection, request, "gateway is draining",
                             retry_after_ms=None, policy="draining")
            return
        hint = self.shed_policy.admit(queue_depth=len(self._admission),
                                      capacity=self.max_inflight)
        if hint is not None:
            self._shed_reply(
                connection, request,
                f"shed by {self.shed_policy.name} policy "
                f"({len(self._admission)}/{self.max_inflight} in flight)",
                retry_after_ms=hint, policy=self.shed_policy.name)
            return
        try:
            self._admission.put(request.request_id)
        except (QueueFullError, QueueClosedError) as error:
            self._shed_reply(connection, request, str(error),
                             retry_after_ms=self._fallback_retry_ms(),
                             policy="capacity")
            return
        trace = None
        if self.telemetry:
            # the admission span covers decode + shed decision + the
            # queue token; the fleet adds dispatch/serve/collect, and
            # _complete closes with the reply span
            trace = TraceContext(
                trace_id=request.trace_id,
                labels={"mode": request.mode or self.fleet.batch_mode,
                        "task": request.task})
            admission = time.perf_counter() - admitted_at
            trace.add_stage("admission", admission)
            self._stage_latency.observe(
                admission, component="gateway", stage="admission")
        try:
            future = self.fleet.submit_task(request.to_task(), trace=trace)
        except ServingError as error:
            self._admission.get_nowait()
            self._requests_total.inc(outcome="error")
            connection.outbox.put_nowait(protocol.encode_reply(
                request.request_id, "error", error=str(error)))
            return
        loop = self._loop
        future.add_done_callback(lambda done: loop.call_soon_threadsafe(
            self._complete, connection, request, done))

    def _shed_reply(self, connection: _Connection,
                    request: "protocol.ServeRequest", reason: str,
                    retry_after_ms: float | None,
                    policy: str = "unknown") -> None:
        self._requests_total.inc(outcome="shed")
        self._shed_detail.inc(policy=policy)
        connection.outbox.put_nowait(protocol.encode_reply(
            request.request_id, "shed", error=reason,
            retry_after_ms=retry_after_ms))

    def _fallback_retry_ms(self) -> float:
        """Retry hint when the hard cap (not the policy) sheds."""
        p50 = self.fleet.stats().get("latency_p50_ms")
        return max(p50 or 0.0, 50.0)

    def _complete(self, connection: _Connection,
                  request: "protocol.ServeRequest", future) -> None:
        """A fleet future resolved — encode and enqueue the reply."""
        self._admission.get_nowait()
        trace = getattr(future, "trace", None)
        try:
            logits = future.result(timeout=0)
        except ServingError as error:
            self._requests_total.inc(outcome="error")
            connection.outbox.put_nowait(protocol.encode_reply(
                request.request_id, "error", error=str(error),
                replica_id=future.replica_id, attempts=future.attempts))
            if trace is not None:
                self.trace_log.observe(trace)
            return
        record = future.record
        self._requests_total.inc(outcome="served")
        trace_id = None
        stages_ms = None
        reply_started = time.perf_counter()
        if trace is not None:
            # the wire breakdown carries the stages known before the
            # reply is encoded; the reply span itself lands in the
            # histogram and the retained trace
            trace_id = trace.trace_id
            stages_ms = {stage: seconds * 1e3
                         for stage, seconds in trace.stages().items()}
        connection.outbox.put_nowait(protocol.encode_reply(
            request.request_id, "ok", logits=logits,
            replica_id=future.replica_id, attempts=future.attempts,
            compute_ms=None if record is None
            else record.compute_seconds * 1e3,
            encoding=request.encoding,
            trace_id=trace_id, stages=stages_ms))
        if trace is not None:
            reply = time.perf_counter() - reply_started
            trace.add_stage("reply", reply)
            self._stage_latency.observe(
                reply, component="gateway", stage="reply")
            trace.finish()
            self.trace_log.observe(trace)

    # ------------------------------------------------------------------
    # HTTP probes
    # ------------------------------------------------------------------
    async def _handle_http(self, first: bytes, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            rest = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                          timeout=5.0)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                asyncio.LimitOverrunError, ConnectionError):
            rest = b"\r\n\r\n"
        request_line = (first + rest).split(b"\r\n", 1)[0]
        parts = request_line.decode("latin-1", "replace").split()
        path = parts[1] if len(parts) >= 2 else "/"
        content_type = "application/json"
        if path == "/metrics":
            status = "200 OK"
            raw = self.render_metrics().encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            if path in ("/healthz", "/health"):
                status, body = "200 OK", {
                    "status": "draining" if self._draining else "ok",
                    "replicas": self.fleet.num_replicas}
            elif path == "/stats":
                status, body = "200 OK", self.stats()
            else:
                status, body = ("404 Not Found",
                                {"error": f"no route {path!r}"})
            raw = json.dumps(body).encode("utf-8")
        writer.write((f"HTTP/1.1 {status}\r\n"
                      f"Content-Type: {content_type}\r\n"
                      f"Content-Length: {len(raw)}\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1") + raw)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Autoscaler (dedicated thread)
    # ------------------------------------------------------------------
    def _autoscale_forever(self) -> None:
        while not self._closing.wait(self.autoscale_interval):
            try:
                self._autoscale_once()
            except ServingError:
                if self._closing.is_set():
                    return
                # a failed scaling action must not kill the loop; the
                # next sample retries from whatever size the fleet holds

    def _autoscale_once(self) -> None:
        depth = len(self._admission)
        p95 = self.fleet.stats().get("latency_p95_ms")
        current = self.fleet.num_replicas
        target = self.scale_policy.target(replicas=current,
                                          queue_depth=depth, p95_ms=p95)
        if target == current or target <= 0:
            return
        now = time.monotonic()
        if now - self._last_scale < self.scale_cooldown:
            return
        self._last_scale = now
        # wait=False: capacity joins when the slot reports ready; the
        # sampling loop must not stall on a multi-second cold start
        self.fleet.scale_to(target, wait=False)
        action = "up" if target > current else "down"
        self._scale_events_total.inc(action=action)
        self.scale_events.append({
            "t_s": now - (self._started_at or now),
            "action": action,
            "from": current, "to": target,
            "queue_depth": depth, "p95_ms": p95})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        """The ``GET /metrics`` page: gateway + fleet registries merged
        into one Prometheus text exposition (format 0.0.4)."""
        return render_exposition(self.metrics, self.fleet.metrics)

    def stats(self) -> dict:
        """JSON-ready gateway accounting (admission, scaling, fleet)."""
        return {
            "host": self.host,
            "port": self.port,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "errors": self.errors,
            "inflight": len(self._admission),
            "max_inflight": self.max_inflight,
            "draining": self._draining,
            "shed_policy": self.shed_policy.name,
            "shed_policy_state": self.shed_policy.state(),
            "scale_policy": (None if self.scale_policy is None
                             else self.scale_policy.name),
            "scale_events": list(self.scale_events),
            "slowest": [trace.as_dict()
                        for trace in self.trace_log.slowest(5)],
            "fleet": self.fleet.stats(),
        }

    def __repr__(self) -> str:
        scale = None if self.scale_policy is None else self.scale_policy.name
        return (f"ServingGateway(host={self.host!r}, port={self.port}, "
                f"shed={self.shed_policy.name!r}, scale={scale!r}, "
                f"inflight={len(self._admission)}/{self.max_inflight})")
