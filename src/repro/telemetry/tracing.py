"""Per-request stage tracing across the serving layers.

A :class:`TraceContext` is stamped where a request enters the system
(gateway admission, or fleet/runtime submit), carried by reference
through the layers that touch the request — the frame protocol header
contributes the trace id, the fleet dispatch pickle tells the replica
worker to time its sub-stages — and accumulates one
:class:`StageSpan` per serving stage.  The canonical gateway-path
stages, in request order:

- ``admission``  — gateway: decode + shed decision + admission queue;
- ``dispatch``   — fleet: submit → the replica worker dequeues (IPC +
  replica queue wait; ``time.perf_counter`` is CLOCK_MONOTONIC on the
  platforms we serve on, so parent/child stamps are comparable);
- ``serve``      — replica: operator assembly + forward (the worker's
  ``serve.operator``/``serve.forward`` sub-spans break this down);
- ``collect``    — fleet: worker reply → parent resolves the future;
- ``reply``      — gateway: encode + enqueue the reply frame.

The in-process runtime path records ``queue_wait``/``assembly``/
``serve`` instead.  Within one thread the *current* trace travels in a
:mod:`contextvars` variable so deep layers (``prepared.serve_batch``)
can contribute sub-spans without threading a handle through every
signature: :func:`use_trace` installs it, :func:`stage_span` /
:func:`record_stage` write through it, and both are no-ops when no
trace is active — the uninstrumented fast path stays allocation-free.

Completed traces land in a :class:`TraceLog`: a bounded ring with
``slowest(n)`` for postmortems and an optional slow-request threshold
that emits one structured (JSON) log line per offender.
"""

from __future__ import annotations

import contextvars
import json
import logging
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

from repro.telemetry.metrics import TelemetryError

__all__ = [
    "GATEWAY_STAGES",
    "RUNTIME_STAGES",
    "StageSpan",
    "TraceContext",
    "TraceLog",
    "new_trace_id",
    "current_trace",
    "use_trace",
    "record_stage",
    "stage_span",
]

#: Canonical stage names of the gateway → fleet → replica path.
GATEWAY_STAGES = ("admission", "dispatch", "serve", "collect", "reply")
#: Canonical stage names of the in-process micro-batching runtime.
RUNTIME_STAGES = ("queue_wait", "assembly", "serve")

logger = logging.getLogger("repro.telemetry")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class StageSpan:
    """One timed stage of one request."""

    stage: str
    seconds: float


class TraceContext:
    """Trace id plus the stage spans one request accumulated so far.

    Spans are appended by whichever layer currently owns the request;
    the handoffs are ordered (admission happens-before dispatch
    happens-before the completion callback), and the internal lock makes
    the ring/snapshot reads safe from other threads regardless.
    """

    __slots__ = ("trace_id", "started", "labels", "spans", "_stack",
                 "_lock", "_total")

    def __init__(self, trace_id: str | None = None,
                 labels: dict | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.started = time.perf_counter()
        self.labels: dict[str, str] = dict(labels or {})
        self.spans: list[StageSpan] = []
        self._stack: list[str] = []  # nested stage_span() name prefix
        self._lock = threading.Lock()
        self._total: float | None = None

    def add_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.spans.append(StageSpan(stage, float(seconds)))

    def finish(self) -> float:
        """Freeze the end-to-end wall time (idempotent); returns it."""
        with self._lock:
            if self._total is None:
                self._total = time.perf_counter() - self.started
            return self._total

    @property
    def total_seconds(self) -> float:
        with self._lock:
            if self._total is not None:
                return self._total
        return time.perf_counter() - self.started

    def stages(self) -> dict[str, float]:
        """Stage → seconds (same-name spans sum, e.g. after a re-route)."""
        with self._lock:
            spans = list(self.spans)
        out: dict[str, float] = {}
        for span in spans:
            out[span.stage] = out.get(span.stage, 0.0) + span.seconds
        return out

    def as_dict(self) -> dict:
        """JSON-ready view (the slow-request log line's payload)."""
        return {
            "trace_id": self.trace_id,
            "total_ms": self.total_seconds * 1e3,
            "stages_ms": {stage: seconds * 1e3
                          for stage, seconds in self.stages().items()},
            **{str(k): str(v) for k, v in self.labels.items()},
        }

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id!r}, "
                f"stages={list(self.stages())}, "
                f"total_ms={self.total_seconds * 1e3:.2f})")


_CURRENT: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("repro_trace", default=None))


def current_trace() -> TraceContext | None:
    """The thread/task-local active trace, if any."""
    return _CURRENT.get()


@contextmanager
def use_trace(trace: TraceContext | None):
    """Install ``trace`` as the current trace for the ``with`` body."""
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)


def record_stage(stage: str, seconds: float) -> None:
    """Add a span to the current trace; silently no-op without one."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.add_stage(stage, seconds)


@contextmanager
def stage_span(stage: str, histogram=None, /, **labels):
    """Time the ``with`` body as one stage of the current trace.

    Nested spans compose dotted names (``serve`` > ``operator`` becomes
    ``serve.operator``).  With ``histogram`` the elapsed seconds are
    also observed there (with ``labels``) whether or not a trace is
    active — the per-stage histograms see every request, the trace ring
    only the sampled/slow ones.  The first two parameters are
    positional-only so ``labels`` may legally contain ``stage`` (the
    shared stage histogram's own label).
    """
    trace = _CURRENT.get()
    if trace is not None:
        trace._stack.append(stage)
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if trace is not None:
            trace._stack.pop()
            name = ".".join((*trace._stack, stage))
            trace.add_stage(name, elapsed)
        if histogram is not None:
            histogram.observe(elapsed, **labels)


class TraceLog:
    """Bounded ring of completed traces with a slow-request threshold.

    ``observe`` finishes the trace, keeps it in a ``capacity``-deep
    ring (``slowest(n)`` reads it back, worst first), and — when
    ``slow_ms`` is set and the trace exceeds it — emits one structured
    ``WARNING`` line whose message payload is the trace's JSON dict.
    """

    def __init__(self, capacity: int = 256,
                 slow_ms: float | None = None,
                 log: logging.Logger | None = None) -> None:
        if capacity <= 0:
            raise TelemetryError(f"capacity must be positive, got {capacity}")
        if slow_ms is not None and slow_ms <= 0:
            raise TelemetryError(f"slow_ms must be positive, got {slow_ms}")
        self.capacity = capacity
        self.slow_ms = slow_ms
        self._log = log or logger
        self._lock = threading.Lock()
        self._ring: deque[TraceContext] = deque(maxlen=capacity)

    def observe(self, trace: TraceContext) -> None:
        total = trace.finish()
        with self._lock:
            self._ring.append(trace)
        if self.slow_ms is not None and total * 1e3 >= self.slow_ms:
            self._log.warning("slow request %s",
                              json.dumps(trace.as_dict(), sort_keys=True))

    def slowest(self, n: int = 10) -> list[TraceContext]:
        """The ``n`` slowest retained traces, slowest first."""
        with self._lock:
            traces = list(self._ring)
        traces.sort(key=lambda trace: trace.total_seconds, reverse=True)
        return traces[:max(n, 0)]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        return (f"TraceLog(capacity={self.capacity}, "
                f"slow_ms={self.slow_ms}, retained={len(self)})")
