"""Wall-clock timing helpers, integrated with the stage-span API.

Home of the former ``repro.utils.timers`` (which remains as a thin
alias): :class:`Stopwatch` now optionally reports its elapsed time as a
stage span of the current :class:`~repro.telemetry.tracing.TraceContext`
and/or into a histogram, so ad-hoc timing in examples and the CLI feeds
the same telemetry the serving layers use.
"""

from __future__ import annotations

import time

from repro.telemetry.metrics import TelemetryError
from repro.telemetry.tracing import record_stage

__all__ = ["Stopwatch", "format_seconds"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Stopwatch() as watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True

    With ``stage`` the elapsed time is also recorded as a span of the
    current trace (no-op when none is active), and with ``histogram``
    it is observed there too.
    """

    def __init__(self, stage: str | None = None, histogram=None,
                 **labels) -> None:
        self.stage = stage
        self.histogram = histogram
        self.labels = labels
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        if self.stage is not None:
            record_stage(self.stage, self.elapsed)
        if self.histogram is not None:
            self.histogram.observe(self.elapsed, **self.labels)


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering: ``1.2ms``, ``3.4s``, ``2m05s``."""
    if seconds < 0:
        raise TelemetryError(f"seconds must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, remainder = divmod(seconds, 60.0)
    return f"{int(minutes)}m{remainder:04.1f}s"
