"""Thread-safe metrics registry with Prometheus text exposition.

The registry is the measurement substrate every serving layer reports
into: counters for volumes, gauges for levels, fixed-bucket histograms
for latencies.  Metrics optionally carry a labels dimension (``mode``,
``replica``, ``policy``, ``stage``, ``tenant``, ...) so one series name
covers a family of label sets, exactly like Prometheus client libraries.

Naming convention (applies repo-wide; see README "Observability"):

- every series is ``repro_<component>_<what>[_total|_seconds]`` —
  component is the serving layer that owns the number (``gateway``,
  ``fleet``, ``runtime``);
- counters end in ``_total``, durations are base-unit ``_seconds``;
- the shared per-stage latency histogram is
  ``repro_stage_latency_seconds{component,stage}`` so one query shape
  covers the whole request path.

Everything here is stdlib-only.  ``render_exposition`` merges any number
of per-component registries into one valid Prometheus text page
(format version 0.0.4), and ``parse_exposition`` reads one back — used
by ``repro top``, the CI smoke assertions, and the tests.
"""

from __future__ import annotations

import math
import re
import threading

from repro.errors import ReproError

__all__ = [
    "TelemetryError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_exposition",
    "parse_exposition",
    "histogram_quantile",
]


class TelemetryError(ReproError, ValueError):
    """A metric was declared or used inconsistently."""


#: Fixed latency buckets (seconds) shared by every stage histogram:
#: sub-millisecond resolution where the serving path actually lives,
#: coarse tail coverage up to 10s for pathological requests.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(str(value))}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


class Metric:
    """Base of one metric family: a name, a help line, a label schema.

    Each distinct label-value combination is a *child* holding its own
    value; a label-less metric has exactly one child (the empty tuple).
    All mutation and snapshotting happens under a per-family lock, so
    metrics are safe to update from the event loop, the fleet collector
    thread, and producer threads at once.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...] = ()) -> None:
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise TelemetryError(
                    f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise TelemetryError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def clear(self) -> None:
        """Drop every child (a measurement-epoch reset)."""
        with self._lock:
            self._children.clear()

    def samples(self) -> list[tuple[str, dict, float]]:
        """Flat exposition samples: ``(sample_name, labels, value)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"labels={self.labelnames})")


class Counter(Metric):
    """Monotonically-increasing count (requests, errors, sheds)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return float(sum(self._children.values()))

    def samples(self) -> list[tuple[str, dict, float]]:
        with self._lock:
            children = dict(self._children)
        return [(self.name, self._labels_of(key), float(value))
                for key, value in sorted(children.items())]


class Gauge(Metric):
    """A level that moves both ways (in-flight requests, replica count).

    A label-less gauge may instead carry a ``callback`` evaluated at
    collection time — the idiomatic way to expose a value that already
    lives somewhere (queue depth, pool size) without update churn.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...] = (), *,
                 callback=None) -> None:
        super().__init__(name, help, labelnames)
        if callback is not None and labelnames:
            raise TelemetryError(
                f"gauge {name!r}: a callback gauge cannot carry labels")
        self.callback = callback

    def set(self, value: float, **labels) -> None:
        if self.callback is not None:
            raise TelemetryError(
                f"gauge {self.name!r} is callback-driven; cannot set()")
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if self.callback is not None:
            raise TelemetryError(
                f"gauge {self.name!r} is callback-driven; cannot inc()")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        if self.callback is not None:
            return float(self.callback())
        key = self._key(labels)
        with self._lock:
            return float(self._children.get(key, 0.0))

    def samples(self) -> list[tuple[str, dict, float]]:
        if self.callback is not None:
            return [(self.name, {}, float(self.callback()))]
        with self._lock:
            children = dict(self._children)
        return [(self.name, self._labels_of(key), float(value))
                for key, value in sorted(children.items())]


class _HistogramChild:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0


class Histogram(Metric):
    """Fixed-bucket latency histogram (Prometheus-style cumulative).

    Buckets are upper bounds in seconds; an implicit ``+Inf`` bucket
    catches the tail.  ``observe`` is O(log buckets) and lock-cheap —
    the per-request cost the telemetry-overhead gate audits.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str,
                 labelnames: tuple[str, ...] = (),
                 buckets: tuple[float, ...] | None = None) -> None:
        super().__init__(name, help, labelnames)
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS
        buckets = tuple(float(b) for b in buckets)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise TelemetryError(
                f"histogram {name!r} buckets must be strictly increasing, "
                f"got {buckets}")
        if math.isinf(buckets[-1]):
            buckets = buckets[:-1]  # +Inf is implicit
        self.buckets = buckets

    def _bucket_index(self, value: float) -> int:
        from bisect import bisect_left
        return bisect_left(self.buckets, value)

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        index = self._bucket_index(value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(
                    len(self.buckets) + 1)
            child.counts[index] += 1
            child.sum += value
            child.count += 1

    def snapshot(self, **labels) -> dict:
        """``{"buckets": [(le, cumulative), ...], "sum": s, "count": n}``."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                counts, total, count = [0] * (len(self.buckets) + 1), 0.0, 0
            else:
                counts = list(child.counts)
                total, count = child.sum, child.count
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets + (math.inf,), counts):
            running += n
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": total, "count": count}

    def samples(self) -> list[tuple[str, dict, float]]:
        with self._lock:
            children = {key: (list(child.counts), child.sum, child.count)
                        for key, child in self._children.items()}
        out: list[tuple[str, dict, float]] = []
        for key in sorted(children):
            counts, total, count = children[key]
            labels = self._labels_of(key)
            running = 0
            for bound, n in zip(self.buckets + (math.inf,), counts):
                running += n
                out.append((f"{self.name}_bucket",
                            {**labels, "le": _format_value(bound)},
                            float(running)))
            out.append((f"{self.name}_sum", dict(labels), float(total)))
            out.append((f"{self.name}_count", dict(labels), float(count)))
        return out


class MetricsRegistry:
    """Get-or-create home of one component's metric families.

    ``counter``/``gauge``/``histogram`` return the existing family when
    the name was already registered (and raise on a kind or label-schema
    mismatch), so every call site can declare the metric it needs
    without coordinating creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: tuple[str, ...], **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                if existing.labelnames != tuple(labelnames):
                    raise TelemetryError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}")
                return existing
            metric = cls(name, help, tuple(labelnames), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str,
                labelnames: tuple[str, ...] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,
              labelnames: tuple[str, ...] = (), *,
              callback=None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames,
                                   callback=callback)

    def histogram(self, name: str, help: str,
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def clear_histograms(self) -> None:
        """Reset every histogram's observations (latency-window reset)."""
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                metric.clear()

    def render(self) -> str:
        return render_exposition(self)

    def collect(self) -> dict:
        """JSON-ready snapshot: ``{name: {kind, help, samples}}``."""
        out = {}
        for metric in self.metrics():
            out[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "samples": [{"name": name, "labels": labels, "value": value}
                            for name, labels, value in metric.samples()],
            }
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({sorted(self._metrics)})"


def render_exposition(*registries: MetricsRegistry) -> str:
    """Merge registries into one Prometheus text page (version 0.0.4).

    Families sharing a name across registries (the per-stage histogram
    lives in every component's registry) are emitted once; they must
    agree on kind and label schema, and their children must not collide.
    """
    families: dict[str, list[Metric]] = {}
    order: list[str] = []
    for registry in registries:
        for metric in registry.metrics():
            if metric.name not in families:
                families[metric.name] = []
                order.append(metric.name)
            else:
                first = families[metric.name][0]
                if (first.kind != metric.kind
                        or first.labelnames != metric.labelnames):
                    raise TelemetryError(
                        f"metric {metric.name!r} registered with "
                        f"conflicting schemas across registries")
            families[metric.name].append(metric)
    lines: list[str] = []
    for name in order:
        members = families[name]
        first = members[0]
        help_text = first.help.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {first.kind}")
        seen: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
        for metric in members:
            for sample_name, labels, value in metric.samples():
                identity = (sample_name, tuple(sorted(labels.items())))
                if identity in seen:
                    raise TelemetryError(
                        f"duplicate sample {sample_name}{labels} across "
                        "registries")
                seen.add(identity)
                lines.append(f"{sample_name}{_format_labels(labels)} "
                             f"{_format_value(value)}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (value.replace(r"\"", '"').replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse a text exposition page into ``{sample_name: [(labels, v)]}``.

    Sample names include the histogram suffixes (``_bucket``/``_sum``/
    ``_count``).  Raises :class:`TelemetryError` on a malformed line —
    the CI smoke job uses this as its format assertion.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise TelemetryError(f"malformed exposition line: {line!r}")
        labels = {}
        raw = match.group("labels")
        if raw:
            for key, value in _LABEL_PAIR_RE.findall(raw):
                labels[key] = _unescape_label_value(value)
        value_text = match.group("value")
        try:
            value = float(value_text.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            raise TelemetryError(
                f"malformed sample value {value_text!r} in line {line!r}")
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def histogram_quantile(buckets: list[tuple[float, float]],
                       q: float) -> float | None:
    """Estimate quantile ``q`` from cumulative ``(le, count)`` buckets.

    Linear interpolation inside the winning bucket, like PromQL's
    ``histogram_quantile``.  Returns ``None`` on an empty histogram.
    The last bucket may be ``+Inf``; a quantile landing there returns
    the highest finite bound (the estimate cannot exceed the data).
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    buckets = sorted(buckets)
    if not buckets or buckets[-1][1] <= 0:
        return None
    total = buckets[-1][1]
    rank = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in buckets:
        if count >= rank:
            if math.isinf(bound):
                return previous_bound
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, count
    return previous_bound
