"""End-to-end observability: metrics registry plus request tracing.

The serving stack spans five layers (gateway → fleet → replica →
runtime → prepared caches); this package is the stdlib-only measurement
substrate threaded through all of them:

- :mod:`~repro.telemetry.metrics` — thread-safe counters, gauges, and
  fixed-bucket histograms with labels, rendered in Prometheus text
  exposition format (the gateway's ``GET /metrics``) and parsed back
  (``repro top``, CI smoke assertions);
- :mod:`~repro.telemetry.tracing` — per-request
  :class:`TraceContext` stage spans (admission / dispatch / serve /
  collect / reply), contextvar-carried through deep layers, collected
  into per-stage histograms and a bounded :class:`TraceLog` ring of
  slow-request traces;
- :mod:`~repro.telemetry.timers` — :class:`Stopwatch` /
  :func:`format_seconds` (formerly ``repro.utils.timers``), now able to
  report into the stage-span API.
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    histogram_quantile,
    parse_exposition,
    render_exposition,
)
from repro.telemetry.tracing import (
    GATEWAY_STAGES,
    RUNTIME_STAGES,
    StageSpan,
    TraceContext,
    TraceLog,
    current_trace,
    new_trace_id,
    record_stage,
    stage_span,
    use_trace,
)
from repro.telemetry.timers import Stopwatch, format_seconds

__all__ = [
    "TelemetryError",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "render_exposition", "parse_exposition", "histogram_quantile",
    "GATEWAY_STAGES", "RUNTIME_STAGES",
    "StageSpan", "TraceContext", "TraceLog",
    "new_trace_id", "current_trace", "use_trace", "record_stage",
    "stage_span",
    "Stopwatch", "format_seconds",
]
