"""One-call facade over the whole pipeline: ``condense`` → ``deploy`` → ``serve``.

The paper's value proposition is *condense offline once, serve inductive
nodes online cheaply* (Eq. 11).  This module is the single public way to
run that flow — everything resolves through the plugin registries in
:mod:`repro.registry`, so any registered reduction method, model
architecture, or dataset composes with any other:

>>> from repro import api
>>> condensed = api.condense("pubmed-sim", method="mcond", budget=30)
>>> bundle = api.deploy("pubmed-sim", method="mcond", budget=30)
>>> bundle.save("artifact.npz")          # offline phase ends here
...
>>> bundle = api.DeploymentBundle.load("artifact.npz")   # cold process
>>> report = api.serve(bundle, batch_mode="node")
>>> report.accuracy                                       # doctest: +SKIP

:class:`DeploymentBundle` is the persistable artifact of the offline
phase: the condensed graph, the trained model weights, the deployed
normalization operator, and enough metadata to rebuild the serving stack
bit-for-bit in a fresh process.  Its ``.npz`` layout extends
:class:`~repro.condense.base.CondensedGraph`'s scheme (same arrays, under
a ``condensed::`` prefix) and carries the same ``format_version`` stamp.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Sequence

import numpy as np
import scipy.sparse as sp

# Importing these modules populates the registries as a side effect.
import repro.condense  # noqa: F401
import repro.graph.datasets  # noqa: F401
import repro.nn.models  # noqa: F401

from repro.condense.base import (
    FORMAT_VERSION,
    CondensedGraph,
    check_format_version,
)
from repro.errors import ArtifactError, ConfigError
from repro.experiments.pipeline import ExperimentContext, prepare_dataset
from repro.experiments.settings import EffortProfile, FULL, QUICK, current_profile
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.inference.engine import InductiveServer, InferenceReport
from repro.nn.metrics import accuracy as _accuracy
from repro.nn.models import GNNModel, make_model
from repro.serving.prepared import (
    PRECISIONS,
    PreparedDeployment,
    _dequantize,
    _quantize_columns,
)
from repro.serving.runtime import ServingRuntime
from repro.utils.artifacts import normalize_npz_path, open_npz_archive, save_npz

__all__ = ["condense", "deploy", "serve", "open_runtime", "open_stream",
           "open_fleet", "open_gateway", "evaluation_batch",
           "save_embedding_index", "DeploymentBundle"]


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
_PROFILES = {"quick": QUICK, "full": FULL}


def _resolve_profile(profile: EffortProfile | str | None) -> EffortProfile:
    if profile is None:
        return current_profile()
    if isinstance(profile, EffortProfile):
        return profile
    if profile not in _PROFILES:
        raise ConfigError(
            f"unknown effort profile {profile!r}; "
            f"use one of {', '.join(_PROFILES)} or an EffortProfile")
    return _PROFILES[profile]


@lru_cache(maxsize=8)
def _prepared(dataset: str, seed: int, scale: float):
    # Dataset generation is the most expensive shared step of facade calls
    # (each simulator build takes ~0.5s); memoize it so repeated
    # condense/deploy/serve calls — e.g. an architecture sweep — pay once.
    # PreparedDataset is treated as read-only everywhere.
    return prepare_dataset(dataset, seed=seed, scale=scale)


@lru_cache(maxsize=8)
def _cached_context(dataset: str, seed: int, scale: float,
                    profile: EffortProfile) -> ExperimentContext:
    # Sharing the context (not just the dataset) lets sequential facade
    # calls hit its condensation/training memos — `condense(...)` followed
    # by `deploy(...)` with the same arguments runs the reduction once.
    return ExperimentContext(_prepared(dataset, seed, scale), profile)


def _context(dataset: str, seed: int, scale: float,
             profile: EffortProfile | str | None) -> ExperimentContext:
    return _cached_context(dataset, seed, scale, _resolve_profile(profile))


# ----------------------------------------------------------------------
# condense
# ----------------------------------------------------------------------
def condense(dataset: str, method: str = "mcond", budget: int = 30, *,
             seed: int = 0, scale: float = 1.0,
             profile: EffortProfile | str | None = None,
             **config) -> CondensedGraph:
    """Condense ``dataset`` with a registered reduction method.

    Parameters
    ----------
    dataset:
        A key of :data:`repro.registry.DATASETS` (e.g. ``"pubmed-sim"``).
    method:
        A key of :data:`repro.registry.REDUCERS` (e.g. ``"mcond"``).
    budget:
        Number of synthetic nodes ``N'``.
    profile:
        Compute budget: ``"quick"``, ``"full"``, an
        :class:`~repro.experiments.settings.EffortProfile`, or ``None``
        for the ``REPRO_EFFORT`` environment default.
    config:
        Method-specific overrides (e.g. ``lambda_structure=0.1``).
    """
    context = _context(dataset, seed, scale, profile)
    return context.reduce(method, budget, seed=seed, **config)


# ----------------------------------------------------------------------
# DeploymentBundle
# ----------------------------------------------------------------------
@dataclass
class DeploymentBundle:
    """Everything the online serving phase needs, in one persistable artifact.

    Attributes
    ----------
    model_name:
        Registry key of the trained architecture.
    model_config:
        Keyword arguments that rebuild the architecture via
        :func:`~repro.nn.models.make_model` (includes ``in_features`` and
        ``num_classes``).
    state:
        The trained weights (dotted-name → array, float64).
    deployment:
        ``"synthetic"`` (serve on the condensed graph through its mapping,
        Eq. 11) or ``"original"`` (serve on the stored original graph,
        Eq. 3).
    condensed:
        The condensed graph; ``None`` only for the whole-graph baseline.
    base:
        The original training graph; stored only when ``deployment ==
        "original"`` (synthetic serving never touches it, and omitting it
        is what keeps the artifact small — the paper's deployment story).
    metadata:
        Provenance: dataset/seed/scale, method, budget, profile, library
        version.  ``serve`` uses it to regenerate evaluation batches.
    precision:
        Numeric serving mode the artifact carries: ``"float64"``
        (default, bitwise parity), ``"float32"``, or ``"int8"``.
        Reduced modes store the artifact's float arrays narrowed
        (float32, with int8 + per-column absmax scales for feature
        matrices) and make :meth:`prepare` default to the same mode —
        see ``docs/precision.md``.
    """

    model_name: str
    model_config: dict
    state: dict[str, np.ndarray]
    deployment: str
    condensed: CondensedGraph | None = None
    base: Graph | None = None
    metadata: dict = field(default_factory=dict)
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.deployment not in ("original", "synthetic"):
            raise ConfigError(
                f"deployment must be 'original' or 'synthetic', "
                f"got {self.deployment!r}")
        if self.precision not in PRECISIONS:
            raise ConfigError(
                f"precision must be one of {', '.join(PRECISIONS)}, "
                f"got {self.precision!r}")
        if self.deployment == "synthetic" and self.condensed is None:
            raise ConfigError("synthetic deployment requires a condensed graph")
        if self.deployment == "original" and self.base is None:
            raise ConfigError("original deployment requires the base graph")

    # ------------------------------------------------------------------
    def model(self) -> GNNModel:
        """Rebuild the architecture and load the trained weights."""
        config = dict(self.model_config)
        in_features = config.pop("in_features")
        num_classes = config.pop("num_classes")
        model = make_model(self.model_name, in_features, num_classes, **config)
        model.load_state_dict(self.state)
        model.eval()
        return model

    def operator(self):
        """The deployed normalization operator ``Â`` (dense for synthetic
        graphs, sparse CSR for the original graph)."""
        from repro.graph.ops import symmetric_normalize
        if self.deployment == "synthetic":
            assert self.condensed is not None
            return self.condensed.normalized_adjacency()
        assert self.base is not None
        return symmetric_normalize(self.base.adjacency)

    def server(self) -> InductiveServer:
        """An :class:`~repro.inference.engine.InductiveServer` ready to run."""
        return InductiveServer(self.model(), self.deployment, self.base,
                               self.condensed)

    def prepare(self, *, precision: str | None = None,
                fused: bool = True) -> PreparedDeployment:
        """The request-invariant serving cache for this bundle.

        ``precision=None`` uses the bundle's own mode (``"float64"``
        unless the artifact was saved reduced); pass ``"float32"`` or
        ``"int8"`` to opt into a reduced-precision serving cache — see
        :mod:`repro.serving.prepared` for the mode semantics.
        """
        return PreparedDeployment.from_bundle(self, precision=precision,
                                              fused=fused)

    def serve(self, batches=None, *, batch_mode: str = "graph",
              batch_size: int = 1000) -> InferenceReport:
        """Convenience alias for :func:`repro.api.serve` on this bundle."""
        return serve(self, batches, batch_mode=batch_mode,
                     batch_size=batch_size)

    def storage_bytes(self) -> int:
        """Resident deployment storage of the served graph (paper metric)."""
        from repro.inference.benchmark import deployment_storage_bytes
        return deployment_storage_bytes(self.deployment, self.base,
                                        self.condensed)

    # ------------------------------------------------------------------
    # Persistence — one .npz per bundle, extending CondensedGraph's scheme.
    # ------------------------------------------------------------------
    def save(self, path: str | Path, *, layout: str = "compressed",
             precision: str | None = None) -> Path:
        """Persist the bundle; returns the normalized ``.npz`` path.

        ``layout="compressed"`` (default) deflates the archive — the
        smallest artifact.  ``layout="mmap"`` stores members raw so
        :meth:`load` with ``mmap=True`` can map them zero-copy: every
        serving replica on a host then shares one page-cache copy of the
        arrays instead of holding a private decompressed one.

        ``precision`` (default: the bundle's own mode) narrows the stored
        arrays: ``"float32"`` halves every float member, ``"int8"``
        additionally quantizes the feature matrices with per-column
        absmax scales (~8x smaller features).  The mode is recorded in
        the artifact metadata, so :meth:`load` + :meth:`prepare` serve in
        the same mode by default.
        """
        if layout not in ("compressed", "mmap"):
            raise ConfigError(
                f"layout must be 'compressed' or 'mmap', got {layout!r}")
        if precision is None:
            precision = self.precision
        if precision not in PRECISIONS:
            raise ConfigError(
                f"precision must be one of {', '.join(PRECISIONS)}, "
                f"got {precision!r}")
        target = normalize_npz_path(path)
        meta = {
            "kind": "deployment-bundle",
            "model_name": self.model_name,
            "model_config": self.model_config,
            "deployment": self.deployment,
            "metadata": self.metadata,
            "precision": precision,
        }
        payload: dict[str, np.ndarray] = {
            "format_version": np.asarray(FORMAT_VERSION),
            "meta_json": np.asarray(json.dumps(meta)),
        }
        for name, value in self.state.items():
            payload[f"param::{name}"] = value
        if self.condensed is not None:
            payload.update(self.condensed.to_payload("condensed::"))
        if self.base is not None:
            coo = self.base.adjacency.tocoo()
            payload["base::adj_row"] = coo.row
            payload["base::adj_col"] = coo.col
            payload["base::adj_data"] = coo.data
            payload["base::adj_shape"] = np.asarray(coo.shape)
            payload["base::features"] = self.base.features
            if self.base.labels is not None:
                payload["base::labels"] = self.base.labels
        if precision != "float64":
            payload = _narrow_payload(payload, precision)
        return save_npz(target, payload, compressed=(layout == "compressed"))

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = False) -> "DeploymentBundle":
        """Load a bundle saved by :meth:`save`.

        ``mmap=True`` memory-maps the artifact read-only: arrays stored
        uncompressed (``save(layout="mmap")``) are returned as
        buffer-backed, non-writable views over the shared mapping — the
        zero-copy path serving replicas use — while compressed members
        fall back to an eager read.  Serving is bit-for-bit identical
        either way (the parity tests assert it).
        """
        target = normalize_npz_path(path)
        with open_npz_archive(target, "deployment bundle",
                              mmap=mmap) as archive:
            check_format_version(archive, target)
            if "meta_json" not in archive.files:
                raise ArtifactError(
                    f"{target} is not a deployment bundle (no metadata); "
                    "bare condensed graphs load via CondensedGraph.load")
            meta = json.loads(str(archive["meta_json"]))
            if meta.get("kind") != "deployment-bundle":
                raise ArtifactError(
                    f"{target} has unexpected artifact kind {meta.get('kind')!r}")
            precision = meta.get("precision", "float64")
            state = {name[len("param::"):]: archive[name]
                     for name in archive.files if name.startswith("param::")}
            if precision != "float64":
                # widening float32 weights is exact; model math runs float64
                state = {name: np.asarray(value, dtype=np.float64)
                         for name, value in state.items()}
            condensed = None
            if "condensed::adjacency" in archive.files:
                condensed = CondensedGraph.from_payload(
                    _widened_archive(archive, precision), "condensed::")
            base = None
            if "base::features" in archive.files:
                shape = tuple(int(v) for v in archive["base::adj_shape"])
                adjacency = sp.coo_matrix(
                    (archive["base::adj_data"],
                     (archive["base::adj_row"], archive["base::adj_col"])),
                    shape=shape).tocsr()
                labels = (archive["base::labels"]
                          if "base::labels" in archive.files else None)
                features = archive["base::features"]
                if "base::features_scale" in archive.files:
                    features = _dequantize(features,
                                           archive["base::features_scale"])
                base = Graph(adjacency, features, labels)
            return cls(model_name=meta["model_name"],
                       model_config=meta["model_config"],
                       state=state,
                       deployment=meta["deployment"],
                       condensed=condensed,
                       base=base,
                       metadata=meta.get("metadata", {}),
                       precision=precision)

    def __repr__(self) -> str:
        graph = (f"condensed={self.condensed.num_nodes} nodes"
                 if self.condensed is not None else
                 f"original={self.base.num_nodes} nodes")
        return (f"DeploymentBundle(model={self.model_name!r}, "
                f"deployment={self.deployment!r}, {graph}, "
                f"method={self.metadata.get('method')!r})")


#: Feature matrices that int8 artifacts store quantized (with a sibling
#: ``<name>_scale`` per-column absmax row).
_QUANTIZED_MEMBERS = ("base::features", "condensed::features")


def _narrow_payload(payload: dict, precision: str) -> dict:
    """Narrow a bundle payload's float64 members for a reduced artifact.

    float32 mode halves every float member; int8 mode additionally
    quantizes the feature matrices column-wise.  Integer arrays (indices,
    labels, shapes) and the metadata strings pass through untouched.
    """
    narrowed: dict[str, np.ndarray] = {}
    for name, value in payload.items():
        array = np.asarray(value)
        if array.dtype == np.float64:
            if precision == "int8" and name in _QUANTIZED_MEMBERS:
                q, scale = _quantize_columns(array)
                narrowed[name] = q
                narrowed[f"{name}_scale"] = scale
                continue
            array = array.astype(np.float32)
        narrowed[name] = array
    return narrowed


def _widened_archive(archive, precision: str):
    """Dequantize int8 condensed features so ``from_payload`` can rebuild."""
    if precision != "int8" or "condensed::features_scale" not in archive.files:
        return archive
    members = {name: archive[name] for name in archive.files
               if name.startswith("condensed::")}
    members["condensed::features"] = _dequantize(
        members["condensed::features"],
        members.pop("condensed::features_scale"))
    return members


# ----------------------------------------------------------------------
# deploy
# ----------------------------------------------------------------------
def deploy(dataset: str, method: str | None = "mcond", budget: int = 30, *,
           model: str = "sgc", train_on: str | None = None,
           deployment: str | None = None, seed: int = 0, scale: float = 1.0,
           profile: EffortProfile | str | None = None,
           condensed: CondensedGraph | None = None,
           reducer_options: dict | None = None,
           model_options: dict | None = None) -> DeploymentBundle:
    """Run the offline phase end to end and package the result.

    Condenses ``dataset`` with ``method`` (skipped for ``method=None`` /
    ``"whole"`` — the full-graph baseline), trains ``model`` on
    ``train_on`` (default: the synthetic graph when one exists), and
    returns a :class:`DeploymentBundle` serving on ``deployment``
    (default: the synthetic graph when the method learned a mapping,
    else the original graph).

    Pass ``condensed`` to reuse a graph from a previous
    :func:`condense` call instead of re-running the reduction.
    """
    context = _context(dataset, seed, scale, profile)
    if condensed is not None:
        method = condensed.method
        budget = condensed.num_nodes
    elif method is not None and method != "whole":
        condensed = context.reduce(method, budget, seed=seed,
                                   **(reducer_options or {}))
    if train_on is None:
        train_on = "synthetic" if condensed is not None else "original"
    if deployment is None:
        deployment = ("synthetic"
                      if condensed is not None and condensed.supports_attachment()
                      else "original")
    trained = context.train(train_on, model_name=model, condensed=condensed,
                            validate_deployment=deployment, seed=seed,
                            **(model_options or {}))
    base = context.prepared.original if deployment == "original" else None
    from repro import __version__
    metadata = {
        "dataset": context.prepared.name,
        "seed": seed,
        "scale": scale,
        "method": method if condensed is not None else "whole",
        "budget": budget if condensed is not None else None,
        "train_on": train_on,
        "profile": context.profile.name,
        "library_version": __version__,
    }
    return DeploymentBundle(
        model_name=trained.registry_name,
        model_config=dict(trained.build_config),
        state=trained.state_dict(),
        deployment=deployment,
        condensed=condensed,
        base=base,
        metadata=metadata)


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def serve(bundle: DeploymentBundle | str | Path,
          batches: IncrementalBatch | Sequence[IncrementalBatch] | None = None,
          *, batch_mode: str = "graph",
          batch_size: int = 1000) -> InferenceReport:
    """Serve inductive batches against a deployment bundle.

    ``bundle`` may be a :class:`DeploymentBundle` or a path to one.  When
    ``batches`` is omitted, the evaluation (test) batch of the bundle's
    recorded dataset is regenerated from its metadata — the simulators
    are deterministic, so this reproduces the in-memory pipeline exactly.
    A sequence of batches is served in order and merged into one report.
    """
    if not isinstance(bundle, DeploymentBundle):
        bundle = DeploymentBundle.load(bundle)
    if batches is None:
        batches = evaluation_batch(bundle)
    if isinstance(batches, IncrementalBatch):
        batches = [batches]
    if not batches:
        raise ConfigError("serve needs at least one batch")
    server = bundle.server()
    reports = [server.run(batch, batch_size=batch_size, batch_mode=batch_mode)
               for batch in batches]
    if len(reports) == 1:
        return reports[0]
    return _merge_reports(reports, [b.labels for b in batches])


def open_runtime(bundle: DeploymentBundle | str | Path, *,
                 scheduler: str = "microbatch", batch_mode: str = "graph",
                 max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 queue_capacity: int = 1024, overflow: str = "block",
                 precision: str = "exact") -> ServingRuntime:
    """Open a long-lived :class:`~repro.serving.runtime.ServingRuntime`.

    ``bundle`` may be a :class:`DeploymentBundle` or a path to one.  The
    runtime coalesces concurrent requests through the named micro-batch
    scheduler (a :data:`repro.registry.SCHEDULERS` key) over a prepared
    deployment cache; see :mod:`repro.serving` for the moving parts.

    Requests are task-typed: wrap the batch in a
    :class:`~repro.serving.embeddings.ServeTask` and pick ``predict``
    (default), ``embed``, ``link_score``, or ``topk``.

    >>> from repro.serving import ServeTask             # doctest: +SKIP
    >>> runtime = api.open_runtime("artifact.npz")      # doctest: +SKIP
    >>> with runtime:                                   # doctest: +SKIP
    ...     future = runtime.submit(ServeTask(batch=batch))
    ...     logits = future.result()
    ...     vectors = runtime.submit(
    ...         ServeTask(batch=batch, task="embed")).result()
    """
    if not isinstance(bundle, DeploymentBundle):
        bundle = DeploymentBundle.load(bundle)
    return ServingRuntime(
        bundle.prepare(), scheduler,
        batch_mode=batch_mode, queue_capacity=queue_capacity,
        overflow=overflow, precision=precision,
        scheduler_options={"max_batch_size": max_batch_size,
                           "max_wait_ms": max_wait_ms})


def open_stream(bundle: DeploymentBundle | str | Path, *,
                staleness_threshold: float = 0.25,
                scheduler: str = "microbatch", batch_mode: str = "graph",
                max_batch_size: int = 32, max_wait_ms: float = 2.0,
                queue_capacity: int = 1024, overflow: str = "block",
                precision: str = "exact") -> ServingRuntime:
    """Open a runtime that serves *and evolves*: a streaming deployment.

    Like :func:`open_runtime`, but the deployment is prepared for
    :class:`~repro.graph.stream.GraphDelta` ingest: the warm serving
    caches (normalized operator, degree vector, and — for linear models —
    the K-hop propagated features) are materialized up front so every
    ``runtime.ingest(delta)`` refreshes them incrementally instead of
    paying a first-touch rebuild mid-traffic.  ``staleness_threshold`` is
    the affected-row fraction beyond which a delta falls back to a full
    cache rebuild (see
    :meth:`~repro.serving.prepared.PreparedDeployment.apply_delta`).

    >>> runtime = api.open_stream("artifact.npz")       # doctest: +SKIP
    >>> with runtime:                                   # doctest: +SKIP
    ...     runtime.ingest(delta)                       # evolve the base
    ...     future = runtime.submit(ServeTask(batch=batch))  # serve it
    """
    from repro.errors import ServingError
    runtime = open_runtime(
        bundle, scheduler=scheduler, batch_mode=batch_mode,
        max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
        queue_capacity=queue_capacity, overflow=overflow,
        precision=precision)
    runtime.staleness_threshold = staleness_threshold
    prepared = runtime.prepared
    if prepared.deployment == "original":
        prepared.base_operator()
        try:
            prepared.propagated_base_features()
        except ServingError:
            pass  # non-linear model: no propagated-feature cache to warm
    return runtime


def open_fleet(bundle: DeploymentBundle | str | Path, replicas: int = 2, *,
               router: str = "round-robin", batch_mode: str = "node",
               mmap: bool = True, start_method: str | None = None,
               telemetry: bool = True,
               slow_trace_ms: float | None = None,
               precision: str | None = None):
    """Open a multi-replica :class:`~repro.serving.fleet.ServingFleet`.

    ``bundle`` is normally a path to a saved artifact — each replica
    process loads it independently, and with ``mmap=True`` (default) the
    stored arrays are memory-mapped so every replica on the host shares
    one page-cache copy instead of holding a private one.  Save artifacts
    with ``bundle.save(path, layout="mmap")`` to make every member
    mappable.  An in-memory :class:`DeploymentBundle` is persisted to a
    temporary mmap-layout artifact first (removed when the fleet closes).

    ``precision`` selects the replicas' numeric serving mode
    (``"float64"``/``"float32"``/``"int8"``); ``None`` (default) keeps
    the mode recorded in the artifact.

    Replicas probe for the artifact's embedding-index sidecar (see
    :func:`save_embedding_index`) and memory-map it when present, so
    ``topk`` requests share one precomputed matrix per host.

    >>> fleet = api.open_fleet("artifact.npz", replicas=4)  # doctest: +SKIP
    >>> with fleet:                                         # doctest: +SKIP
    ...     future = fleet.submit(ServeTask(batch=batch, key="user-17"))
    ...     logits = future.result()
    ...     fleet.swap("artifact-v2.npz")   # rolling, zero dropped traffic
    """
    from repro.serving.fleet import ServingFleet

    owns = isinstance(bundle, DeploymentBundle)
    if owns:
        import tempfile
        handle = tempfile.NamedTemporaryFile(
            prefix="repro-fleet-", suffix=".npz", delete=False)
        handle.close()
        artifact = bundle.save(handle.name, layout="mmap")
    else:
        artifact = Path(bundle)
    try:
        fleet = ServingFleet(artifact, replicas, router=router,
                             batch_mode=batch_mode, mmap=mmap,
                             start_method=start_method, telemetry=telemetry,
                             slow_trace_ms=slow_trace_ms,
                             precision=precision)
    except Exception:
        if owns:
            artifact.unlink(missing_ok=True)
        raise
    fleet.owns_artifact = owns
    return fleet


def open_gateway(bundle: DeploymentBundle | str | Path, replicas: int = 2, *,
                 host: str = "127.0.0.1", port: int = 0,
                 router: str = "round-robin", batch_mode: str = "node",
                 mmap: bool = True, start_method: str | None = None,
                 shed_policy="watermark",
                 max_inflight: int = 256,
                 scale_policy=None,
                 shed_options: dict | None = None,
                 scale_options: dict | None = None,
                 autoscale_interval: float = 0.25,
                 scale_cooldown: float = 2.0, start: bool = True,
                 telemetry: bool = True,
                 slow_trace_ms: float | None = None,
                 precision: str | None = None):
    """Open a network :class:`~repro.serving.gateway.ServingGateway`.

    Builds a fleet exactly like :func:`open_fleet` and puts the TCP
    front door in front of it: framed-protocol serving
    (:mod:`repro.serving.protocol`), watermark admission control
    (``shed_policy``, a :data:`repro.registry.SHED_POLICIES` key or a
    :class:`~repro.serving.gateway.ShedPolicy` instance), and — when
    ``scale_policy`` names a :data:`repro.registry.SCALE_POLICIES`
    entry such as ``"queue-depth"`` (or is a
    :class:`~repro.serving.gateway.ScalePolicy`) — an autoscaler
    that grows/shrinks
    the replica pool from queue depth and rolling p95.  The gateway owns
    the fleet: closing it closes the fleet (and removes a temp artifact
    if ``bundle`` was in-memory).  With ``port=0`` the OS picks a free
    port; read ``gateway.port`` after start.  ``precision`` is forwarded
    to the fleet replicas (see :func:`open_fleet`).

    >>> gw = api.open_gateway("artifact.npz", replicas=2,  # doctest: +SKIP
    ...                       scale_policy="queue-depth")
    >>> with gw:                                           # doctest: +SKIP
    ...     client = GatewayClient(*gw.address)
    ...     reply = client.serve(x, connections)
    """
    from repro.registry import make_scale_policy, make_shed_policy
    from repro.serving.gateway import ServingGateway

    shed = (make_shed_policy(shed_policy, **(shed_options or {}))
            if isinstance(shed_policy, str) else shed_policy)
    scale = (make_scale_policy(scale_policy, **(scale_options or {}))
             if isinstance(scale_policy, str) else scale_policy)
    fleet = open_fleet(bundle, replicas, router=router,
                       batch_mode=batch_mode, mmap=mmap,
                       start_method=start_method, telemetry=telemetry,
                       slow_trace_ms=slow_trace_ms, precision=precision)
    try:
        gateway = ServingGateway(
            fleet, host=host, port=port, shed_policy=shed,
            max_inflight=max_inflight, scale_policy=scale,
            autoscale_interval=autoscale_interval,
            scale_cooldown=scale_cooldown, owns_fleet=True,
            telemetry=telemetry, slow_trace_ms=slow_trace_ms)
        if start:
            gateway.start()
    except Exception:
        fleet.close(drain=False)
        raise
    return gateway


def save_embedding_index(bundle: DeploymentBundle | str | Path,
                         artifact: str | Path | None = None) -> Path:
    """Precompute an artifact's embedding-index sidecar; returns its path.

    Builds the base-node :class:`~repro.serving.embeddings.EmbeddingIndex`
    from the bundle's prepared deployment and saves it uncompressed
    (memory-mappable) next to the artifact ``.npz``
    (``artifact.npz`` → ``artifact.embeddings.npz``).  Fleet replicas
    probe that path on startup and attach the shared mapping, so
    ``topk`` and ``link_score`` requests read one page-cache copy of
    the matrix per host instead of each process paying a base
    ``embed()`` forward.  :meth:`PreparedDeployment.apply_delta`
    invalidates an attached index, so a streamed deployment falls back
    to lazy recomputation the moment the graph changes.

    ``bundle`` may be a :class:`DeploymentBundle` or a path to one; when
    it is a path and ``artifact`` is omitted, the sidecar lands next to
    that same file.
    """
    from repro.serving.embeddings import EmbeddingIndex, sidecar_index_path
    if not isinstance(bundle, DeploymentBundle):
        if artifact is None:
            artifact = bundle
        bundle = DeploymentBundle.load(bundle)
    if artifact is None:
        raise ConfigError(
            "an in-memory bundle needs an explicit artifact path for its "
            "embedding-index sidecar to sit next to")
    prepared = bundle.prepare()
    index = EmbeddingIndex(prepared.base_embeddings())
    return index.save(sidecar_index_path(artifact))


def evaluation_batch(bundle: DeploymentBundle) -> IncrementalBatch:
    """Regenerate the evaluation (test) batch a bundle was deployed for.

    The simulators are deterministic, so the bundle's recorded
    dataset/seed/scale reproduce the in-memory pipeline's batch exactly —
    this is what ``serve``, ``repro serve-online`` and the serving
    benchmark replay against.
    """
    dataset = bundle.metadata.get("dataset")
    if not dataset:
        raise ConfigError(
            "bundle metadata records no dataset; pass batches explicitly")
    return _prepared(dataset, int(bundle.metadata.get("seed", 0)),
                     float(bundle.metadata.get("scale", 1.0))).test_batch


def _merge_reports(reports: list[InferenceReport],
                   labels: list[np.ndarray]) -> InferenceReport:
    logits = np.vstack([r.logits for r in reports])
    merged_labels = np.concatenate(labels)
    total_seconds = float(sum(r.total_seconds for r in reports))
    num_batches = int(sum(r.num_batches for r in reports))
    return InferenceReport(
        accuracy=_accuracy(logits, merged_labels),
        mean_batch_seconds=total_seconds / num_batches,
        total_seconds=total_seconds,
        memory_bytes=max(r.memory_bytes for r in reports),
        num_batches=num_batches,
        num_nodes=int(sum(r.num_nodes for r in reports)),
        deployment=reports[0].deployment,
        batch_mode=reports[0].batch_mode,
        logits=logits)
