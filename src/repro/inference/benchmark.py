"""Timing and storage helpers shared by the benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import InferenceError
from repro.condense.base import CondensedGraph
from repro.graph.graph import Graph
from repro.tensor.sparse import dense_memory_bytes, sparse_memory_bytes

__all__ = ["TimingStats", "latency_percentiles", "time_callable",
           "graph_storage_bytes", "deployment_storage_bytes", "speedup",
           "compression"]

PERCENTILES = (50.0, 95.0, 99.0)


def latency_percentiles(samples, *,
                        empty: float | None = None) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a latency sample set.

    The single quantile implementation shared by :class:`TimingStats` and
    the serving runtime's per-request accounting
    (:mod:`repro.serving.stats`) — percentile semantics (linear
    interpolation) stay consistent across every latency report.

    With no samples the default is to raise; pass ``empty`` (typically
    ``float("nan")``) to get that value back for every percentile instead
    — the NaN-safe shape a runtime polled before its first completed
    request needs.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        if empty is None:
            raise InferenceError("percentiles need at least one sample")
        return {f"p{int(p)}": float(empty) for p in PERCENTILES}
    values = np.percentile(arr, PERCENTILES)
    return {f"p{int(p)}": float(v) for p, v in zip(PERCENTILES, values)}


@dataclass(frozen=True)
class TimingStats:
    """Robust summary of repeated wall-clock measurements."""

    mean_seconds: float
    median_seconds: float
    min_seconds: float
    max_seconds: float
    repeats: int
    p50_seconds: float | None = None
    p95_seconds: float | None = None
    p99_seconds: float | None = None

    @property
    def mean_milliseconds(self) -> float:
        return self.mean_seconds * 1e3

    @classmethod
    def from_samples(cls, samples) -> "TimingStats":
        """Summarize raw wall-clock samples, percentiles included."""
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            raise InferenceError("TimingStats needs at least one sample")
        tail = latency_percentiles(arr)
        return cls(
            mean_seconds=float(arr.mean()),
            median_seconds=float(np.median(arr)),
            min_seconds=float(arr.min()),
            max_seconds=float(arr.max()),
            repeats=int(arr.size),
            p50_seconds=tail["p50"],
            p95_seconds=tail["p95"],
            p99_seconds=tail["p99"])


def time_callable(func: Callable[[], object], repeats: int = 5,
                  warmup: int = 1) -> TimingStats:
    """Time ``func`` with warm-up iterations excluded."""
    if repeats <= 0:
        raise InferenceError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return TimingStats.from_samples(samples)


def graph_storage_bytes(graph: Graph) -> int:
    """Deployment storage of a full graph: sparse adjacency + features."""
    return sparse_memory_bytes(graph.adjacency) + dense_memory_bytes(graph.features)


def deployment_storage_bytes(deployment: str, base: Graph,
                             condensed: CondensedGraph | None = None) -> int:
    """Storage of whatever the chosen deployment must keep resident."""
    if deployment == "original":
        return graph_storage_bytes(base)
    if deployment == "synthetic":
        if condensed is None:
            raise InferenceError("synthetic deployment requires a condensed graph")
        return condensed.storage_bytes(include_mapping=True)
    raise InferenceError(f"unknown deployment {deployment!r}")


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """``baseline / candidate`` — how many times faster the candidate is."""
    if candidate_seconds <= 0:
        raise InferenceError("candidate time must be positive")
    return baseline_seconds / candidate_seconds


def compression(baseline_bytes: int, candidate_bytes: int) -> float:
    """``baseline / candidate`` — how many times smaller the candidate is."""
    if candidate_bytes <= 0:
        raise InferenceError("candidate size must be positive")
    return baseline_bytes / candidate_bytes
