"""Timing and storage helpers shared by the benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import InferenceError
from repro.condense.base import CondensedGraph
from repro.graph.graph import Graph
from repro.tensor.sparse import dense_memory_bytes, sparse_memory_bytes

__all__ = ["TimingStats", "time_callable", "graph_storage_bytes",
           "deployment_storage_bytes", "speedup", "compression"]


@dataclass(frozen=True)
class TimingStats:
    """Robust summary of repeated wall-clock measurements."""

    mean_seconds: float
    median_seconds: float
    min_seconds: float
    max_seconds: float
    repeats: int

    @property
    def mean_milliseconds(self) -> float:
        return self.mean_seconds * 1e3


def time_callable(func: Callable[[], object], repeats: int = 5,
                  warmup: int = 1) -> TimingStats:
    """Time ``func`` with warm-up iterations excluded."""
    if repeats <= 0:
        raise InferenceError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    arr = np.asarray(samples)
    return TimingStats(
        mean_seconds=float(arr.mean()),
        median_seconds=float(np.median(arr)),
        min_seconds=float(arr.min()),
        max_seconds=float(arr.max()),
        repeats=repeats)


def graph_storage_bytes(graph: Graph) -> int:
    """Deployment storage of a full graph: sparse adjacency + features."""
    return sparse_memory_bytes(graph.adjacency) + dense_memory_bytes(graph.features)


def deployment_storage_bytes(deployment: str, base: Graph,
                             condensed: CondensedGraph | None = None) -> int:
    """Storage of whatever the chosen deployment must keep resident."""
    if deployment == "original":
        return graph_storage_bytes(base)
    if deployment == "synthetic":
        if condensed is None:
            raise InferenceError("synthetic deployment requires a condensed graph")
        return condensed.storage_bytes(include_mapping=True)
    raise InferenceError(f"unknown deployment {deployment!r}")


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """``baseline / candidate`` — how many times faster the candidate is."""
    if candidate_seconds <= 0:
        raise InferenceError("candidate time must be positive")
    return baseline_seconds / candidate_seconds


def compression(baseline_bytes: int, candidate_bytes: int) -> float:
    """``baseline / candidate`` — how many times smaller the candidate is."""
    if candidate_bytes <= 0:
        raise InferenceError("candidate size must be positive")
    return baseline_bytes / candidate_bytes
