"""Inductive inference engine for all four deployment settings.

The engine serves batches of unseen nodes against either the *original*
graph (Eq. 3 — conventional GC and the "Whole" baseline) or a *synthetic*
graph with a mapping matrix (Eq. 11 — MCond, VNG and coresets).  For every
batch it measures wall-clock latency of the full serving path — attach,
normalize, forward — and the memory footprint of what deployment must hold:
adjacency non-zeros, features, and (for synthetic serving) the mapping.

The paper's two evaluation regimes are the ``batch_mode``:

- ``"graph"`` — inductive nodes arrive as a connected subgraph (``ea`` kept);
- ``"node"``  — they arrive in isolation (``ea`` zeroed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InferenceError
from repro.condense.base import CondensedGraph
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph
from repro.graph.incremental import (AttachedGraph, attach_to_original,
                                     attach_to_synthetic)
from repro.graph.ops import symmetric_normalize
from repro.graph.sampling import iterate_minibatches
from repro.nn.metrics import accuracy
from repro.nn.models import GNNModel
from repro.tensor.sparse import dense_memory_bytes, sparse_memory_bytes
from repro.tensor.tensor import Tensor, no_grad

if TYPE_CHECKING:  # serving sits above inference; import it lazily at runtime
    from repro.serving.prepared import PreparedDeployment

__all__ = ["InferenceReport", "InductiveServer", "run_inference",
           "validate_deployment"]


def validate_deployment(deployment: str, base: Graph | None,
                        condensed: CondensedGraph | None) -> None:
    """Reject inconsistent deployment configurations.

    Shared by :class:`InductiveServer` and
    :class:`repro.serving.prepared.PreparedDeployment` so both serving
    surfaces fail identically, with or without the prepared cache.
    """
    if deployment not in ("original", "synthetic"):
        raise InferenceError(
            f"deployment must be 'original' or 'synthetic', got {deployment!r}")
    if deployment == "original" and base is None:
        raise InferenceError("original deployment requires the base graph")
    if deployment == "synthetic":
        if condensed is None:
            raise InferenceError("synthetic deployment requires a condensed graph")
        if not condensed.supports_attachment():
            raise InferenceError(
                f"method {condensed.method!r} has no mapping matrix; "
                "it cannot attach inductive nodes to the synthetic graph "
                "(this is exactly the limitation of conventional GC)")


@dataclass
class InferenceReport:
    """Outcome of serving one inductive workload."""

    accuracy: float
    mean_batch_seconds: float
    total_seconds: float
    memory_bytes: int
    num_batches: int
    num_nodes: int
    deployment: str
    batch_mode: str
    logits: np.ndarray | None = field(repr=False, default=None)

    @property
    def mean_batch_milliseconds(self) -> float:
        return self.mean_batch_seconds * 1e3

    @property
    def memory_megabytes(self) -> float:
        return self.memory_bytes / (1024.0 * 1024.0)


class InductiveServer:
    """Serves inductive batches against one deployed graph.

    Parameters
    ----------
    model:
        A trained :class:`~repro.nn.models.GNNModel`.
    deployment:
        ``"original"`` — serve on the original graph ``base``; or
        ``"synthetic"`` — serve on ``condensed`` through its mapping.
    base:
        The original graph; required for ``"original"`` deployment.  For
        ``"synthetic"`` deployment it may be ``None`` — batches carry
        their own incremental adjacency (indexed by original node ids)
        and the mapping converts it, so the original graph never has to
        be resident (that is the paper's deployment story, and why
        :class:`repro.api.DeploymentBundle` omits it).
    condensed:
        The reduced graph; required when ``deployment == "synthetic"`` and
        it must carry a mapping matrix.
    use_cache:
        When true (the default), ``serve_batch`` runs through a
        :class:`~repro.serving.prepared.PreparedDeployment`: the base
        block's self-loops, canonical form and scatter layout are
        computed once instead of re-normalizing the full ``(B+n, B+n)``
        adjacency every batch.  Logits are bitwise identical either way
        (the parity tests assert it); ``use_cache=False`` keeps the
        naive path for benchmarking the difference.
    """

    def __init__(self, model: GNNModel, deployment: str, base: Graph | None,
                 condensed: CondensedGraph | None = None, *,
                 use_cache: bool = True) -> None:
        validate_deployment(deployment, base, condensed)
        # Both serving states are built on first use: the cached server
        # never materializes the naive adjacency/feature views, and the
        # uncached server never pays the cache's O(nnz) construction.
        self._prepared = None
        self._naive_state: tuple | None = None
        self.model = model
        self.deployment = deployment
        self.base = base
        self.condensed = condensed
        self.use_cache = use_cache

    @property
    def prepared(self) -> "PreparedDeployment":
        """The request-invariant cache this server serves through."""
        if self._prepared is None:
            from repro.serving.prepared import PreparedDeployment
            self._prepared = PreparedDeployment(self.model, self.deployment,
                                                self.base, self.condensed)
        return self._prepared

    @property
    def _adjacency(self):
        return self._naive()[0]

    @property
    def _features(self):
        return self._naive()[1]

    @property
    def _mapping(self):
        return self._naive()[2]

    def _naive(self) -> tuple:
        if self._naive_state is None:
            if self.deployment == "synthetic":
                assert self.condensed is not None
                self._naive_state = (self.condensed.sparse_adjacency(),
                                     self.condensed.features,
                                     self.condensed.mapping)
            else:
                self._naive_state = (self.base.adjacency,
                                     self.base.features, None)
        return self._naive_state

    # ------------------------------------------------------------------
    def attach(self, batch: IncrementalBatch,
               batch_mode: str = "graph") -> AttachedGraph:
        """Build the augmented graph of Eq. (3) / Eq. (11) for one batch."""
        if batch_mode not in ("graph", "node"):
            raise InferenceError(
                f"batch_mode must be 'graph' or 'node', got {batch_mode!r}")
        intra = batch.intra if batch_mode == "graph" else None
        if self.deployment == "original":
            return attach_to_original(self._adjacency, self._features,
                                      batch.incremental, batch.features, intra)
        return attach_to_synthetic(self._adjacency, self._features,
                                   batch.incremental, batch.features,
                                   self._mapping, intra)

    def serve_batch(self, batch: IncrementalBatch,
                    batch_mode: str = "graph") -> tuple[np.ndarray, float, int]:
        """Serve one batch; returns ``(logits, seconds, memory_bytes)``."""
        if self.use_cache:
            return self.prepared.serve_batch(batch, batch_mode)
        self.model.eval()
        start = time.perf_counter()
        attached = self.attach(batch, batch_mode)
        operator = symmetric_normalize(attached.adjacency)
        with no_grad():
            logits = self.model(operator, Tensor(attached.features))
        inductive = logits.data[attached.base_size:]
        elapsed = time.perf_counter() - start
        memory = sparse_memory_bytes(attached.adjacency)
        memory += dense_memory_bytes(attached.features)
        if self._mapping is not None:
            memory += sparse_memory_bytes(self._mapping)
        return inductive, elapsed, memory

    def run(self, batch: IncrementalBatch, batch_size: int = 1000,
            batch_mode: str = "graph") -> InferenceReport:
        """Serve the full workload in mini-batches (paper: batch size 1000)."""
        total_nodes = batch.num_nodes
        if total_nodes == 0:
            raise InferenceError("cannot serve an empty inductive batch")
        all_logits: list[np.ndarray] = []
        seconds = []
        memories = []
        for idx in iterate_minibatches(total_nodes, batch_size):
            sub = batch.subset(idx) if idx.size != total_nodes else batch
            logits, elapsed, memory = self.serve_batch(sub, batch_mode)
            all_logits.append(logits)
            seconds.append(elapsed)
            memories.append(memory)
        logits = np.vstack(all_logits)
        return InferenceReport(
            accuracy=accuracy(logits, batch.labels),
            mean_batch_seconds=float(np.mean(seconds)),
            total_seconds=float(np.sum(seconds)),
            memory_bytes=int(np.mean(memories)),
            num_batches=len(seconds),
            num_nodes=total_nodes,
            deployment=self.deployment,
            batch_mode=batch_mode,
            logits=logits)


def run_inference(model: GNNModel, deployment: str, base: Graph,
                  batch: IncrementalBatch,
                  condensed: CondensedGraph | None = None,
                  batch_size: int = 1000,
                  batch_mode: str = "graph") -> InferenceReport:
    """One-shot convenience wrapper around :class:`InductiveServer`."""
    server = InductiveServer(model, deployment, base, condensed)
    return server.run(batch, batch_size=batch_size, batch_mode=batch_mode)
