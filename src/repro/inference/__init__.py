"""Inductive inference: deployment engine and latency/memory accounting."""

from repro.inference.engine import InferenceReport, InductiveServer, run_inference
from repro.inference.benchmark import (
    TimingStats,
    time_callable,
    graph_storage_bytes,
    deployment_storage_bytes,
    speedup,
    compression,
)

__all__ = [
    "InferenceReport", "InductiveServer", "run_inference",
    "TimingStats", "time_callable", "graph_storage_bytes",
    "deployment_storage_bytes", "speedup", "compression",
]
