"""Inductive inference: deployment engine and latency/memory accounting.

For the packaged offline→online flow (persistable bundles, cold-process
serving) see :mod:`repro.api`.
"""

from repro.inference.engine import InferenceReport, InductiveServer, run_inference
from repro.inference.benchmark import (
    TimingStats,
    time_callable,
    graph_storage_bytes,
    deployment_storage_bytes,
    speedup,
    compression,
)

__all__ = [
    "InferenceReport", "InductiveServer", "run_inference",
    "TimingStats", "time_callable", "graph_storage_bytes",
    "deployment_storage_bytes", "speedup", "compression",
]
