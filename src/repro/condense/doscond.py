"""DosCond-style one-step gradient matching (Jin et al., KDD 2022 [31]).

The paper's related work highlights DosCond as a faster condensation
variant: instead of tracking a relay GNN's trajectory over ``T`` inner
steps, it matches gradients only at freshly initialized parameters (a
single matching step per sampled initialization).  We implement it as an
extension on top of :class:`~repro.condense.gcond.GCondReducer`: every
matching step re-draws ``theta_0 ~ P_theta`` and there are no relay
updates.

This reducer is not part of the paper's main comparison; it exists for
the ablation benchmarks (how much does trajectory matching matter at
condensation time?) and as a cheaper default for very large sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.condense.gcond import GCondConfig, GCondReducer
from repro.registry import register_reducer

__all__ = ["DosCondConfig", "DosCondReducer"]


@dataclass
class DosCondConfig(GCondConfig):
    """One-step matching configuration.

    ``relay_steps`` is forced to zero: DosCond never trains the relay, so
    every gradient comparison happens at initialization.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self.relay_steps = 0


class DosCondReducer(GCondReducer):
    """One-step gradient matching: re-draw ``theta_0`` at every step."""

    name = "doscond"

    def __init__(self, config: DosCondConfig | None = None) -> None:
        super().__init__(config or DosCondConfig())
        self._reinit_rng = np.random.default_rng(self.config.seed ^ 0xD05C)

    def _matching_step(self, relay, propagated, graph, labeled,
                       synthetic_features, adjacency_model, labels_syn,
                       feature_opt, adjacency_opt) -> None:
        relay.reinit(int(self._reinit_rng.integers(1 << 31)))
        super()._matching_step(relay, propagated, graph, labeled,
                               synthetic_features, adjacency_model,
                               labels_syn, feature_opt, adjacency_opt)

    def _relay_step(self, relay, synthetic_features, adjacency_model,
                    labels_syn) -> None:
        """DosCond performs no inner relay training."""
        return None


@register_reducer("doscond",
                  profile_params=("outer_loops", "match_steps"),
                  description="one-step gradient matching (no relay "
                              "trajectory; fast, no inductive mapping)")
def _doscond_factory(seed: int = 0, **cfg) -> DosCondReducer:
    """Registry factory: build a :class:`DosCondReducer` from flat kwargs."""
    return DosCondReducer(DosCondConfig(seed=seed, **cfg))
