"""Virtual Node Graph (VNG) baseline — Si et al., ICLR 2023 [35].

VNG compresses the original graph for *inference only*: it clusters
original nodes with weighted k-means (weights = node degrees), places one
virtual node per cluster, and fits the virtual adjacency by minimizing the
GNN forward-pass reconstruction error

    ``min_{A_v} || P A_v X_v  -  Â X ||_F``

where ``P`` is the (hard) assignment matrix and ``X_v`` the cluster
centroids.  The mapping from original to virtual nodes is the one-to-one
(per node) cluster assignment, which is exactly the "implicit one-to-one
mapping" limitation MCond's one-to-many mapping addresses.

The fitted ``A_v`` is dense — the paper observes VNG's dense adjacency
costs more at inference time than MCond's sparsified graph.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import CondensationError
from repro.condense.base import CondensedGraph, GraphReducer, allocate_class_counts
from repro.graph.datasets import InductiveSplit
from repro.graph.ops import symmetric_normalize
from repro.registry import register_reducer

__all__ = ["VngReducer", "weighted_kmeans"]


def weighted_kmeans(points: np.ndarray, weights: np.ndarray, k: int,
                    rng: np.random.Generator,
                    iters: int = 25) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with per-point weights.

    Returns ``(assignment, centroids)``.  Empty clusters are reseeded from
    the farthest points, so exactly ``k`` clusters come back.
    """
    n = points.shape[0]
    if k <= 0 or k > n:
        raise CondensationError(f"k must be in [1, {n}], got {k}")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n,):
        raise CondensationError(f"weights shape {weights.shape} != ({n},)")
    if (weights < 0).any():
        raise CondensationError("weights must be non-negative")
    weights = np.maximum(weights, 1e-12)

    # k-means++ style seeding (distance-proportional).
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = np.linalg.norm(points - centroids[0], axis=1) ** 2
    for j in range(1, k):
        probs = closest * weights
        total = probs.sum()
        if total <= 0:
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=probs / total))
        centroids[j] = points[pick]
        closest = np.minimum(closest,
                             np.linalg.norm(points - centroids[j], axis=1) ** 2)

    assignment = np.full(n, -1, dtype=np.int64)
    for _ in range(iters):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignment = distances.argmin(axis=1)
        converged = np.array_equal(new_assignment, assignment)
        assignment = new_assignment
        for j in range(k):
            members = assignment == j
            if not members.any():
                # Reseed an empty cluster at the currently worst-fit point.
                worst = int(np.argmax(distances[np.arange(n), assignment]))
                centroids[j] = points[worst]
                assignment[worst] = j
                continue
            w = weights[members][:, None]
            centroids[j] = (points[members] * w).sum(axis=0) / w.sum()
        if converged:
            break
    return assignment, centroids


@register_reducer("vng", description="virtual node graph: weighted k-means "
                                     "+ forward-pass adjacency fitting")
class VngReducer(GraphReducer):
    """VNG: per-class weighted k-means + forward-pass adjacency fitting."""

    name = "vng"

    def __init__(self, seed: int = 0, kmeans_iters: int = 25,
                 ridge: float = 1e-3) -> None:
        self.seed = seed
        self.kmeans_iters = kmeans_iters
        self.ridge = ridge

    def reduce(self, split: InductiveSplit, budget: int) -> CondensedGraph:
        self._check_budget(split, budget)
        graph = split.original
        if graph.labels is None:
            raise CondensationError("VNG requires labels")
        rng = np.random.default_rng(self.seed)
        counts = allocate_class_counts(graph.labels[split.labeled_in_original],
                                       budget, split.num_classes)
        degrees = np.maximum(graph.degrees(), 1.0)

        num_virtual = int(counts.sum())
        assignment = np.full(graph.num_nodes, -1, dtype=np.int64)
        centroids = np.zeros((num_virtual, graph.feature_dim))
        labels_v = np.zeros(num_virtual, dtype=np.int64)
        offset = 0
        for cls, count in enumerate(counts):
            if count == 0:
                continue
            members = np.flatnonzero(graph.labels == cls)
            if members.size == 0:
                raise CondensationError(f"class {cls} has no nodes to cluster")
            take = min(int(count), members.size)
            local_assign, local_centroids = weighted_kmeans(
                graph.features[members], degrees[members], take, rng,
                iters=self.kmeans_iters)
            assignment[members] = offset + local_assign
            centroids[offset:offset + take] = local_centroids
            labels_v[offset:offset + take] = cls
            offset += take
        centroids = centroids[:offset]
        labels_v = labels_v[:offset]
        # Unlabeled-class leftovers (shouldn't happen with full coverage).
        if (assignment < 0).any():
            raise CondensationError("some nodes were never assigned a cluster")

        mapping = sp.csr_matrix(
            (np.ones(graph.num_nodes),
             (np.arange(graph.num_nodes), assignment)),
            shape=(graph.num_nodes, offset))

        adjacency = self._fit_adjacency(graph, mapping, centroids)
        return CondensedGraph(adjacency=adjacency, features=centroids,
                              labels=labels_v, mapping=mapping,
                              method=self.name)

    def _fit_adjacency(self, graph, mapping: sp.csr_matrix,
                       centroids: np.ndarray) -> np.ndarray:
        """Least-squares fit of ``A_v``: ``P A_v X_v ~= Â X`` (ridge-regularized).

        Solved in two closed-form steps: left-multiply by the weighted
        pseudo-inverse of ``P`` (a per-cluster average), then solve the
        right system against ``X_v`` with ridge regression.
        """
        operator = symmetric_normalize(graph.adjacency)
        target = operator @ graph.features            # (N, d)
        cluster_sizes = np.asarray(mapping.sum(axis=0)).reshape(-1)
        averaged = (mapping.T @ target) / cluster_sizes[:, None]   # (k, d)
        gram = centroids @ centroids.T                # (k, k)
        gram += self.ridge * np.eye(gram.shape[0])
        solution = np.linalg.solve(gram, centroids @ averaged.T).T  # (k, k)
        # Symmetrize and clip: virtual adjacencies are non-negative weights.
        symmetric = 0.5 * (solution + solution.T)
        return np.maximum(symmetric, 0.0)
