"""The condensation-scaling benchmark behind ``repro bench-condense``.

Times the offline phase — condensing the observed graph — unsharded and
sharded at several shard counts, and evaluates each condensed graph
end-to-end (train on the synthetic graph, serve the inductive test
batch) so condensation cost and downstream accuracy are tracked
*together*.  The result is a machine-readable dict (schema asserted by
:func:`check_condense_benchmark_schema` and the test suite) written to
``BENCH_condense.json`` — the offline-phase companion of
``BENCH_serving.json``, and the input of the CI perf gate
(:func:`gate_condense_benchmark`).

Baseline and sharded variants share the exact same inner-method
configuration (effort profile + per-dataset tuned weights), so the
deltas measure sharding, not hyper-parameters; with ``shards=1`` the
sharded pipeline must reproduce the baseline bit-for-bit, and the
benchmark records that parity check.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.condense.base import CondensedGraph
from repro.errors import CondensationError
from repro.registry import make_reducer
from repro.utils.reports import require_keys, write_benchmark_json

__all__ = ["CONDENSE_BENCH_SCHEMA_VERSION", "run_condense_scaling_benchmark",
           "check_condense_benchmark_schema", "gate_condense_benchmark",
           "write_benchmark_json"]

CONDENSE_BENCH_SCHEMA_VERSION = 1

_VARIANT_KEYS = ("shards", "workers", "wall_clock_s", "accuracy",
                 "accuracy_drop_points", "speedup_vs_baseline", "num_nodes",
                 "num_edges", "storage_bytes", "plan")
_BASELINE_KEYS = ("wall_clock_s", "accuracy", "num_nodes", "num_edges",
                  "storage_bytes")


def _time_reduce(build, split, budget: int, repeats: int):
    """Best-of-``repeats`` condensation wall-clock; returns (seconds, graph)."""
    best = np.inf
    condensed = None
    for _ in range(repeats):
        reducer = build()
        start = time.perf_counter()
        result = reducer.reduce(split, budget)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        condensed = result
    return float(best), condensed, reducer


def _graph_facts(condensed: CondensedGraph) -> dict:
    return {
        "num_nodes": condensed.num_nodes,
        "num_edges": int((condensed.adjacency > 0).sum()),
        "storage_bytes": condensed.storage_bytes(),
    }


def _bit_identical(a: CondensedGraph, b: CondensedGraph) -> bool:
    if (a.mapping is None) != (b.mapping is None):
        return False
    mapping_equal = (a.mapping is None
                     or np.array_equal(a.mapping.toarray(),
                                       b.mapping.toarray()))
    return bool(np.array_equal(a.adjacency, b.adjacency)
                and np.array_equal(a.features, b.features)
                and np.array_equal(a.labels, b.labels)
                and mapping_equal)


def run_condense_scaling_benchmark(
        dataset: str = "pubmed-sim", *, method: str = "mcond",
        budget: int | None = None, seed: int = 0, scale: float = 1.0,
        profile: str | None = "quick", shard_counts: tuple[int, ...] = (1, 2, 4),
        workers: int | None = None, partitioner: str = "stratified",
        cut_scale: float = 1.0, repeats: int = 1,
        batch_mode: str = "graph") -> dict:
    """Run the condensation scaling benchmark; returns the JSON-ready dict.

    ``workers`` caps per-variant worker processes; ``None`` uses
    ``min(shards, cpu_count)`` so single-core machines still measure the
    sharded pipeline's algorithmic savings without fork overhead.
    """
    # Local imports: condense stays importable without the experiment stack.
    from repro.experiments.pipeline import ExperimentContext, prepare_dataset
    from repro.experiments.settings import FULL, QUICK, dataset_budgets

    if repeats < 1:
        raise CondensationError(f"repeats must be >= 1, got {repeats}")
    if budget is None:
        budget = dataset_budgets(dataset)[-1]
    effort = FULL if profile == "full" else QUICK
    context = ExperimentContext(
        prepare_dataset(dataset, seed=seed, scale=scale), effort)
    split = context.prepared.split
    inner_cfg = context.reducer_config(method)
    cpu_count = os.cpu_count() or 1

    def evaluate(condensed: CondensedGraph) -> float:
        deployment = ("synthetic" if condensed.supports_attachment()
                      else "original")
        model = context.train("synthetic", condensed=condensed,
                              validate_deployment=deployment, seed=seed)
        report = context.evaluate(model, deployment, condensed,
                                  batch_mode=batch_mode)
        return float(report.accuracy)

    base_seconds, base_condensed, _ = _time_reduce(
        lambda: make_reducer(method, seed=seed, **inner_cfg),
        split, budget, repeats)
    base_accuracy = evaluate(base_condensed)
    # The context's model cache is keyed by id(condensed); keep every
    # evaluated graph alive so a freed address can't be reused by a later
    # variant and silently resolve to the wrong cached model.
    evaluated = [base_condensed]

    result = {
        "schema_version": CONDENSE_BENCH_SCHEMA_VERSION,
        "kind": "condense-benchmark",
        "dataset": dataset,
        "method": method,
        "budget": budget,
        "seed": seed,
        "scale": scale,
        "profile": effort.name,
        "partitioner": partitioner,
        "cut_scale": cut_scale,
        "repeats": repeats,
        "batch_mode": batch_mode,
        "cpu_count": cpu_count,
        "baseline": {
            "wall_clock_s": base_seconds,
            "accuracy": base_accuracy,
            **_graph_facts(base_condensed),
        },
        "sharded": [],
    }

    for shards in shard_counts:
        variant_workers = (min(shards, cpu_count) if workers is None
                           else min(shards, workers))
        seconds, condensed, reducer = _time_reduce(
            lambda: make_reducer(
                "sharded", seed=seed, inner=method, shards=shards,
                workers=variant_workers, partitioner=partitioner,
                cut_scale=cut_scale, **inner_cfg),
            split, budget, repeats)
        accuracy = evaluate(condensed)
        evaluated.append(condensed)
        variant = {
            "shards": shards,
            "workers": variant_workers,
            "wall_clock_s": seconds,
            "accuracy": accuracy,
            "accuracy_drop_points": 100.0 * (base_accuracy - accuracy),
            "speedup_vs_baseline": base_seconds / seconds,
            "plan": reducer.last_plan,
            **_graph_facts(condensed),
        }
        if shards == 1:
            variant["parity_bit_identical"] = _bit_identical(
                base_condensed, condensed)
        result["sharded"].append(variant)
    return result


def check_condense_benchmark_schema(result: dict) -> None:
    """Validate the benchmark dict's shape; raises on drift.

    Shared by the test suite and ``repro bench-condense`` itself, so the
    emitted ``BENCH_condense.json`` can never silently lose the keys the
    CI perf gate reads.
    """
    top = ("schema_version", "kind", "dataset", "method", "budget", "seed",
           "scale", "profile", "partitioner", "cut_scale", "repeats",
           "batch_mode", "cpu_count", "baseline", "sharded")
    require_keys(result, top, "condense benchmark", CondensationError)
    if result["kind"] != "condense-benchmark":
        raise CondensationError(
            f"unexpected benchmark kind {result['kind']!r}")
    require_keys(result["baseline"], _BASELINE_KEYS, "baseline section",
                 CondensationError)
    if not result["sharded"]:
        raise CondensationError("condense benchmark has no sharded variants")
    for variant in result["sharded"]:
        require_keys(variant, _VARIANT_KEYS,
                     f"sharded variant {variant.get('shards')!r}",
                     CondensationError)
        if variant["shards"] == 1 and "parity_bit_identical" not in variant:
            raise CondensationError(
                "shards=1 variant misses the parity_bit_identical check")


def gate_condense_benchmark(result: dict, *, shards: int = 2,
                            max_accuracy_drop: float = 2.0) -> list[str]:
    """The CI perf gate: returns failure messages (empty list = pass).

    The gated variant must beat the unsharded baseline's wall-clock and
    stay within ``max_accuracy_drop`` accuracy points; any shards=1
    variant must additionally be bit-identical to the baseline.
    """
    check_condense_benchmark_schema(result)
    failures: list[str] = []
    gated = [v for v in result["sharded"] if v["shards"] == shards]
    if not gated:
        return [f"no sharded variant with shards={shards} in the benchmark"]
    variant = gated[0]
    baseline_s = result["baseline"]["wall_clock_s"]
    if variant["wall_clock_s"] >= baseline_s:
        failures.append(
            f"sharded K={shards} wall-clock {variant['wall_clock_s']:.2f}s "
            f"is not below the unsharded baseline {baseline_s:.2f}s")
    if variant["accuracy_drop_points"] > max_accuracy_drop:
        failures.append(
            f"sharded K={shards} accuracy drop "
            f"{variant['accuracy_drop_points']:.2f} points exceeds the "
            f"{max_accuracy_drop:.2f}-point budget")
    for candidate in result["sharded"]:
        if candidate["shards"] == 1 and not candidate.get("parity_bit_identical"):
            failures.append("shards=1 output is not bit-identical to the "
                            "direct reducer")
    return failures
