"""Sharded parallel condensation: partition → condense per shard → merge.

Condensation is the last whole-graph, single-process phase of the
pipeline — every reducer walks the entire training graph, and its
dominant dense operations (the ``(N, N')`` mapping products of MCond, the
pairwise synthetic adjacency of GCond) scale super-linearly in the graph
and budget sizes.  :class:`ShardedReducer` breaks that ceiling:

1. **Partition** the original training graph into ``shards`` disjoint
   node sets with a registered strategy from
   :data:`repro.graph.partition.PARTITIONERS` (label-stratified BFS by
   default, so every shard sees the global class mix).
2. **Condense every shard independently** with any registered reducer,
   in ``workers`` parallel processes (serial in-process fallback for
   ``workers=1``).  Each shard receives a label-aware slice of the total
   budget and its own slice of the support (validation) nodes, routed to
   the shard holding most of their edges.
3. **Merge** the per-shard condensed graphs into one
   :class:`~repro.condense.base.CondensedGraph`: features/labels are
   concatenated, per-shard adjacencies become diagonal blocks, per-shard
   mappings are lifted back to original-graph row indices, and the
   original cut edges *between* shards are re-scored into the merged
   adjacency as ``M_i^T A_cut M_j`` — the mass an original cross-shard
   edge carries between the two synthetic endpoints its nodes map to.

With ``shards=1`` the pipeline degenerates to an exact pass-through: the
single shard is the whole graph in original order, apportionment returns
the full budget, and the merge is the identity — the output is
bit-identical to running the wrapped reducer directly (asserted by the
test suite).

The reducer registers as ``"sharded"`` in :data:`repro.registry.REDUCERS`
so it composes with ``api.condense``/``api.deploy``, ``repro condense
--shards K --workers N``, and the untouched serving path.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.condense.base import CondensedGraph, GraphReducer
from repro.errors import CondensationError
from repro.graph.datasets import InductiveSplit
from repro.graph.graph import Graph
from repro.graph.partition import check_partition, make_partitioner
from repro.registry import REDUCERS, make_reducer, register_reducer

__all__ = ["ShardTask", "ShardedReducer", "apportion_budget",
           "assign_support", "coalesce_shards", "merge_condensed",
           "SHARED_PROFILE_PARAMS"]

#: Effort-profile fields the sharded entry accepts on behalf of its inner
#: method; fields the inner reducer does not declare are dropped before
#: the inner factory is called (a coreset ignores ``match_steps``).
SHARED_PROFILE_PARAMS = ("outer_loops", "match_steps", "mapping_steps",
                         "relay_steps")


# ----------------------------------------------------------------------
# Budget apportionment and shard hygiene
# ----------------------------------------------------------------------
def apportion_budget(labeled_counts: np.ndarray, sizes: np.ndarray,
                     budget: int,
                     min_per_shard: int | np.ndarray) -> np.ndarray:
    """Split ``budget`` across shards proportionally to labeled mass.

    Every shard receives at least its ``min_per_shard`` floor of
    synthetic nodes (one per class *present in that shard* — a shard
    whose labeled nodes all share one class after coalescing needs a
    floor of 1, not one per global class; demanding the global floor can
    exceed the budget the shard was ever going to get) and at most
    ``size - 1`` (a reduction must shrink its shard).  ``min_per_shard``
    may be a scalar floor or a per-shard array.  The remainder is
    distributed one node at a time to the shard with the largest deficit
    against its proportional target — deterministic, exact, and
    label-aware: densely-labeled shards get proportionally more of the
    synthetic budget, mirroring the class-proportional allocation the
    reducers apply internally.
    """
    labeled_counts = np.asarray(labeled_counts, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.int64)
    num_shards = sizes.size
    floors = np.broadcast_to(
        np.asarray(min_per_shard, dtype=np.int64), (num_shards,)).copy()
    if budget < int(floors.sum()):
        raise CondensationError(
            f"budget {budget} cannot cover the per-shard class floors "
            f"(total {int(floors.sum())} across {num_shards} shards); "
            "use fewer shards or a larger budget")
    caps = sizes - 1
    allocation = floors
    if np.any(caps < allocation):
        tight = int(np.flatnonzero(caps < allocation)[0])
        raise CondensationError(
            f"shard {tight} has only {sizes[tight]} nodes — too small to "
            f"host {int(allocation[tight])} synthetic nodes")
    if labeled_counts.sum() <= 0:
        raise CondensationError("no shard holds any labeled node")
    target = labeled_counts / labeled_counts.sum() * budget
    remaining = budget - int(allocation.sum())
    if remaining > int((caps - allocation).sum()):
        raise CondensationError(
            f"budget {budget} exceeds the sharded capacity "
            f"{int(caps.sum())}; use fewer shards or a smaller budget")
    for _ in range(remaining):
        deficit = np.where(allocation < caps, target - allocation, -np.inf)
        allocation[int(np.argmax(deficit))] += 1
    return allocation


def coalesce_shards(shards: list[np.ndarray], labeled_mask: np.ndarray,
                    min_size: int) -> list[np.ndarray]:
    """Merge shards too small (or label-starved) to condense on their own.

    A shard is viable when it holds more than ``min_size`` nodes (so a
    positive budget still shrinks it) and at least one labeled node.
    Non-viable shards — empty chunks from partitioning more shards than a
    class has nodes, singleton shards, all-unlabeled shards — are folded
    into the currently-smallest viable shard, preserving determinism and
    the exact-cover invariant.
    """
    def viable(shard: np.ndarray) -> bool:
        return shard.size > min_size and bool(labeled_mask[shard].any())

    kept = [np.asarray(s, dtype=np.int64) for s in shards]
    healthy = [s for s in kept if viable(s)]
    strays = [s for s in kept if not viable(s)]
    if not healthy:
        merged = np.sort(np.concatenate(kept))
        if not viable(merged):
            raise CondensationError(
                "graph cannot be sharded: no partition of it yields a "
                "shard with enough (labeled) nodes to condense")
        return [merged]
    for stray in strays:
        if stray.size == 0:
            continue
        smallest = int(np.argmin([s.size for s in healthy]))
        healthy[smallest] = np.sort(np.concatenate([healthy[smallest], stray]))
    return healthy


def assign_support(split: InductiveSplit,
                   shard_positions: list[np.ndarray]) -> list[np.ndarray]:
    """Route each support (validation) node to the shard it attaches to.

    A support node goes to the shard holding the largest share of its
    incremental-edge mass; edge-less support nodes are dealt round-robin.
    Every shard is guaranteed at least one support node whenever there
    are enough to go around (shards stripped of support would silently
    lose MCond's inductive loss).  Relative ``val_idx`` order is
    preserved inside each shard, so a single all-covering shard receives
    exactly the original support set.
    """
    val = split.val_idx
    num_shards = len(shard_positions)
    if val.size == 0 or num_shards == 1:
        return [val.copy() for _ in range(num_shards)]
    incident = split.full.cross_adjacency(val, split.train_idx)
    mass = np.column_stack([
        np.asarray(incident[:, positions].sum(axis=1)).ravel()
        for positions in shard_positions])
    assignment = np.argmax(mass, axis=1)
    detached = np.flatnonzero(mass.max(axis=1) <= 0)
    assignment[detached] = detached % num_shards
    # Re-seat support-less shards with the weakest-attached node of the
    # best-supplied shard (repeat until every shard has one or we run out).
    counts = np.bincount(assignment, minlength=num_shards)
    while (counts == 0).any() and (counts > 1).any():
        empty = int(np.argmin(counts))
        donor = int(np.argmax(counts))
        members = np.flatnonzero(assignment == donor)
        mover = members[int(np.argmin(mass[members, donor]))]
        assignment[mover] = empty
        counts[donor] -= 1
        counts[empty] += 1
    return [val[assignment == shard] for shard in range(num_shards)]


# ----------------------------------------------------------------------
# Per-shard execution
# ----------------------------------------------------------------------
@dataclass
class ShardTask:
    """One shard's condensation job — picklable for worker processes."""

    index: int
    split: InductiveSplit
    budget: int
    method: str
    config: dict
    seed: int


def _reduce_shard(task: ShardTask) -> CondensedGraph:
    """Worker entry point: build the inner reducer and condense one shard."""
    reducer = make_reducer(task.method, seed=task.seed, **task.config)
    return reducer.reduce(task.split, task.budget)


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def merge_condensed(graph: Graph, shard_positions: list[np.ndarray],
                    parts: list[CondensedGraph], *,
                    cut_scale: float = 1.0) -> CondensedGraph:
    """Merge per-shard condensed graphs into one :class:`CondensedGraph`.

    ``graph`` is the original training graph the shards partition;
    ``shard_positions[i]`` holds the original-graph row positions of
    shard ``i``; ``parts[i]`` is its condensation.  Per-shard adjacencies
    become diagonal blocks.  When every part carries a mapping, the cut
    edges between shards ``i`` and ``j`` are re-scored into the merged
    adjacency as ``cut_scale * M_i^T A_cut M_j`` and the mappings are
    lifted to original-graph rows and concatenated column-wise.  For a
    single all-covering shard the merge is the identity.
    """
    if not parts:
        raise CondensationError("merge needs at least one condensed shard")
    if len(parts) != len(shard_positions):
        raise CondensationError(
            f"{len(parts)} condensed shards for {len(shard_positions)} "
            "position sets")
    sizes = [part.num_nodes for part in parts]
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    total = int(offsets[-1])

    adjacency = np.zeros((total, total), dtype=np.float64)
    for i, part in enumerate(parts):
        lo, hi = offsets[i], offsets[i + 1]
        adjacency[lo:hi, lo:hi] = part.adjacency

    has_mapping = all(part.mapping is not None for part in parts)
    if has_mapping and len(parts) > 1 and cut_scale != 0.0:
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                cut = graph.adjacency[shard_positions[i]][:, shard_positions[j]]
                if cut.nnz == 0:
                    continue
                block = cut_scale * np.asarray(
                    (parts[i].mapping.T @ cut @ parts[j].mapping).todense())
                adjacency[offsets[i]:offsets[i + 1],
                          offsets[j]:offsets[j + 1]] += block
                adjacency[offsets[j]:offsets[j + 1],
                          offsets[i]:offsets[i + 1]] += block.T

    mapping = None
    if has_mapping:
        rows, cols, data = [], [], []
        for i, part in enumerate(parts):
            coo = part.mapping.tocoo()
            rows.append(shard_positions[i][coo.row])
            cols.append(coo.col + offsets[i])
            data.append(coo.data)
        mapping = sp.coo_matrix(
            (np.concatenate(data),
             (np.concatenate(rows), np.concatenate(cols))),
            shape=(graph.num_nodes, total)).tocsr()

    return CondensedGraph(
        adjacency=adjacency,
        features=np.vstack([part.features for part in parts]),
        labels=np.concatenate([part.labels for part in parts]),
        mapping=mapping,
        method=parts[0].method)


# ----------------------------------------------------------------------
# The reducer
# ----------------------------------------------------------------------
class ShardedReducer(GraphReducer):
    """Run any registered reducer per shard, in parallel, and merge."""

    name = "sharded"

    def __init__(self, method: str = "mcond", shards: int = 2,
                 workers: int = 1, partitioner: str = "stratified",
                 cut_scale: float = 1.0, seed: int = 0,
                 inner_config: dict | None = None) -> None:
        if method.lower() == self.name:
            raise CondensationError("sharded condensation cannot nest itself")
        if shards < 1:
            raise CondensationError(f"shards must be >= 1, got {shards}")
        if workers < 1:
            raise CondensationError(f"workers must be >= 1, got {workers}")
        self.method = method
        self.shards = shards
        self.workers = workers
        self.partitioner = partitioner
        self.cut_scale = cut_scale
        self.seed = seed
        self.inner_config = dict(inner_config or {})
        #: Filled by :meth:`reduce`: shard sizes/budgets of the last run.
        self.last_plan: list[dict] | None = None

    # ------------------------------------------------------------------
    def _inner_config(self) -> dict:
        """Inner-method config with undeclared profile fields dropped."""
        entry = REDUCERS.get(self.method)
        config = dict(self.inner_config)
        for field in SHARED_PROFILE_PARAMS:
            if field in config and field not in entry.profile_params:
                config.pop(field)
        return config

    def reduce(self, split: InductiveSplit, budget: int) -> CondensedGraph:
        self._check_budget(split, budget)
        graph = split.original
        partition = make_partitioner(self.partitioner)
        shard_positions = partition(graph, self.shards, seed=self.seed)
        check_partition(shard_positions, graph.num_nodes)

        labeled_mask = np.zeros(graph.num_nodes, dtype=bool)
        labeled_mask[split.labeled_in_original] = True
        shard_positions = coalesce_shards(shard_positions, labeled_mask,
                                          min_size=split.num_classes)
        sizes = np.asarray([p.size for p in shard_positions], dtype=np.int64)
        labeled_counts = np.asarray(
            [int(labeled_mask[p].sum()) for p in shard_positions])
        # Per-shard floor: one synthetic node per class *present* in the
        # shard's labeled set.  A coalesced shard whose labeled nodes are
        # all one class must not be forced to host the global class
        # floor — that can exceed its budget (or the whole budget).
        class_floors = np.asarray([
            int(np.unique(graph.labels[p[labeled_mask[p]]]).size)
            for p in shard_positions], dtype=np.int64)
        budgets = apportion_budget(labeled_counts, sizes, budget,
                                   min_per_shard=class_floors)
        supports = assign_support(split, shard_positions)

        config = self._inner_config()
        tasks = [
            ShardTask(index=i,
                      split=self._shard_split(split, positions, supports[i], i),
                      budget=int(budgets[i]), method=self.method,
                      config=config, seed=self.seed + i)
            for i, positions in enumerate(shard_positions)]
        parts = self._run(tasks)
        self.last_plan = [
            {"shard": task.index, "nodes": int(sizes[task.index]),
             "labeled": int(labeled_counts[task.index]),
             "budget": task.budget, "support": int(supports[task.index].size)}
            for task in tasks]
        return merge_condensed(graph, shard_positions, parts,
                               cut_scale=self.cut_scale)

    # ------------------------------------------------------------------
    @staticmethod
    def _shard_split(split: InductiveSplit, positions: np.ndarray,
                     support: np.ndarray, index: int) -> InductiveSplit:
        """The shard-local :class:`InductiveSplit` a worker condenses.

        Shares the full graph (so ``num_classes`` and support attachment
        stay global) but restricts training/labeled nodes to the shard;
        the test set is empty — reducers never read it.
        """
        train = split.train_idx[positions]
        labeled = split.labeled_idx[np.isin(split.labeled_idx, train)]
        return InductiveSplit(
            split.full, train, support, np.empty(0, dtype=np.int64),
            labeled_idx=labeled, name=f"{split.name}[shard{index}]")

    def _run(self, tasks: list[ShardTask]) -> list[CondensedGraph]:
        if self.workers == 1 or len(tasks) == 1:
            return [_reduce_shard(task) for task in tasks]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with context.Pool(processes=min(self.workers, len(tasks))) as pool:
            return pool.map(_reduce_shard, tasks)


@register_reducer("sharded",
                  profile_params=SHARED_PROFILE_PARAMS,
                  description="partition, condense per shard in parallel "
                              "worker processes, and merge (wraps any "
                              "registered method)")
def _sharded_factory(seed: int = 0, inner: str = "mcond", shards: int = 2,
                     workers: int = 1, partitioner: str = "stratified",
                     cut_scale: float = 1.0, **inner_cfg) -> ShardedReducer:
    """Registry factory: ``inner`` names the wrapped reduction method
    (``method`` would collide with :func:`repro.registry.make_reducer`'s
    positional argument); ``inner_cfg`` is forwarded to it."""
    return ShardedReducer(method=inner, shards=shards, workers=workers,
                          partitioner=partitioner, cut_scale=cut_scale,
                          seed=seed, inner_config=inner_cfg)
