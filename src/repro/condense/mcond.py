"""MCond: mapping-aware graph condensation (the paper's contribution).

Extends gradient-matching condensation with an explicitly learned
one-to-many mapping matrix ``M`` via alternating optimization
(Algorithm 1):

1. *Synthetic-graph phase* — update ``X'`` and the adjacency MLP with
   ``L_S = L_gra + lambda * L_str`` (Eq. 9), where the structure loss
   reconstructs original links from the approximate embeddings
   ``MH'`` (Eq. 7-8).  The relay GNN advances on the synthetic graph
   between steps.
2. *Mapping phase* — update ``M`` (in logit space, normalized by Eq. 15)
   with ``L_M = L_tra + beta * L_ind`` (Eq. 13): the transductive term
   anchors ``MH'`` to the original embeddings ``H`` (Eq. 10); the
   inductive term attaches *support nodes* (the validation set, labels
   unused) to both graphs and aligns their propagated embeddings
   (Eq. 11-12).

Afterwards both ``A'`` and ``M`` are threshold-sparsified (Eq. 14) for
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import CondensationError
from repro.condense.base import CondensedGraph, allocate_class_counts
from repro.condense.gcond import (
    GCondConfig,
    GCondReducer,
    PairwiseAdjacency,
    SgcRelay,
    dense_normalize_tensor,
    init_synthetic_features,
    pretrain_adjacency_model,
)
from repro.condense.losses import inductive_loss, structure_loss, transductive_loss
from repro.condense.mapping import MappingMatrix, sparsify_matrix
from repro.graph.datasets import IncrementalBatch, InductiveSplit
from repro.graph.incremental import attach_to_original
from repro.graph.ops import symmetric_normalize
from repro.graph.sampling import sample_edge_batch
from repro.nn.module import Parameter
from repro.nn.optim import Adam
from repro.registry import register_reducer
from repro.tensor.sparse import spmm
from repro.tensor.tensor import (
    Tensor,
    concat,
    grad,
    matmul,
    no_grad,
    slice_rows,
    transpose,
)

__all__ = ["MCondConfig", "MCondResult", "MCondReducer"]


@dataclass
class MCondConfig(GCondConfig):
    """MCond hyper-parameters (superset of :class:`GCondConfig`).

    ``lambda_structure`` and ``beta_inductive`` are the loss weights of
    Eq. (9) and Eq. (13).  ``mapping_threshold`` is ``delta`` of Eq. (14);
    the adjacency threshold ``mu`` is inherited.  Ablation switches map to
    Table V's rows ("Plain" = both losses off).
    """

    lambda_structure: float = 0.1
    beta_inductive: float = 100.0
    mapping_steps: int = 30
    mapping_lr: float = 0.02         # paper uses 0.1 over thousands of epochs
    mapping_epsilon: float = 1e-5    # eps in Eq. (15)
    # delta in Eq. (14); None => adaptive 1/N'.  Rows of the normalized M
    # sum to ~1, so 1/N' is the weight an uninformative row would spread
    # over every synthetic node — entries below it carry no signal, and
    # dropping them is what keeps aM (hence the deployed graph) sparse on
    # low-homophily datasets whose learned mappings are diffuse.
    mapping_threshold: float | None = None
    edge_batch_size: int = 512
    max_support: int = 256
    class_aware_init: bool = True
    use_structure_loss: bool = True
    use_inductive_loss: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mapping_steps <= 0:
            raise CondensationError("mapping_steps must be positive")
        if self.lambda_structure < 0 or self.beta_inductive < 0:
            raise CondensationError("loss weights must be non-negative")


@dataclass
class MCondResult:
    """Everything the analysis experiments need beyond the condensed graph."""

    condensed: CondensedGraph
    mapping: MappingMatrix
    synthetic_adjacency_dense: np.ndarray
    matching_losses: list[float] = field(default_factory=list)
    structure_losses: list[float] = field(default_factory=list)
    mapping_losses: list[float] = field(default_factory=list)
    transductive_losses: list[float] = field(default_factory=list)
    inductive_losses: list[float] = field(default_factory=list)

    def condensed_with_threshold(self, delta: float) -> CondensedGraph:
        """Re-sparsify ``M`` at a different ``delta`` (Fig. 6) without retraining."""
        return CondensedGraph(
            adjacency=self.condensed.adjacency,
            features=self.condensed.features,
            labels=self.condensed.labels,
            mapping=self.mapping.sparsified(delta),
            method=self.condensed.method)


class MCondReducer(GCondReducer):
    """Mapping-aware graph condensation (Algorithm 1)."""

    name = "mcond"

    def __init__(self, config: MCondConfig | None = None) -> None:
        super().__init__(config or MCondConfig())
        self.config: MCondConfig
        self.last_result: MCondResult | None = None
        # Per-run state shared with the structure-loss hook.
        self._mapping_snapshot: np.ndarray | None = None
        self._edge_rng: np.random.Generator | None = None
        self._original_adjacency: sp.csr_matrix | None = None

    # ------------------------------------------------------------------
    def reduce(self, split: InductiveSplit, budget: int) -> CondensedGraph:
        self._check_budget(split, budget)
        config = self.config
        rng = np.random.default_rng(config.seed)
        graph = split.original
        labeled = split.labeled_in_original
        counts = allocate_class_counts(graph.labels[labeled], budget,
                                       split.num_classes)

        relay = SgcRelay(graph.feature_dim, split.num_classes,
                         k_hops=config.k_hops, seed=config.seed)
        operator = symmetric_normalize(graph.adjacency)
        propagated = relay.propagate_const(operator, graph.features)
        init_source = propagated if config.init_propagated else None
        features_init, labels_syn = init_synthetic_features(
            split, counts, rng, feature_matrix=init_source)

        synthetic_features = Parameter(features_init, name="synthetic_features")
        adjacency_model = PairwiseAdjacency(graph.feature_dim,
                                            hidden=config.adjacency_hidden,
                                            seed=config.seed)
        pretrain_adjacency_model(adjacency_model, propagated[labeled],
                                 graph.labels[labeled],
                                 steps=config.adjacency_pretrain_steps,
                                 lr=config.adjacency_pretrain_lr,
                                 batch_size=config.adjacency_pretrain_batch,
                                 rng=rng)
        feature_opt = Adam([synthetic_features], lr=config.lr_features)
        adjacency_opt = Adam(adjacency_model.parameters(), lr=config.lr_adjacency)

        if config.class_aware_init:
            mapping = MappingMatrix.class_aware(
                graph.labels, labels_syn, epsilon=config.mapping_epsilon,
                seed=config.seed)
        else:
            mapping = MappingMatrix.random(
                graph.num_nodes, labels_syn.size,
                epsilon=config.mapping_epsilon, seed=config.seed)
        mapping_opt = Adam([mapping.raw], lr=config.mapping_lr)

        support = self._support_batch(split, rng)
        support_original = self._support_embedding_original(
            relay, graph, support)

        result = MCondResult(
            condensed=None,  # type: ignore[arg-type]  -- filled below
            mapping=mapping,
            synthetic_adjacency_dense=np.zeros((labels_syn.size, labels_syn.size)))
        self._edge_rng = rng
        self._original_adjacency = graph.adjacency

        for _ in range(config.outer_loops):
            relay.reinit(int(rng.integers(1 << 31)))
            # -------- synthetic-graph phase (Algorithm 1 lines 6-11) -----
            self._mapping_snapshot = mapping.normalized_array()
            for _ in range(config.match_steps):
                self._matching_step(relay, propagated, graph, labeled,
                                    synthetic_features, adjacency_model,
                                    labels_syn, feature_opt, adjacency_opt)
                self._relay_step(relay, synthetic_features, adjacency_model,
                                 labels_syn)
            # -------- mapping phase (Algorithm 1 lines 13-15) -------------
            with no_grad():
                adjacency_const = adjacency_model(
                    Tensor(synthetic_features.data)).data
                operator_syn = dense_normalize_tensor(Tensor(adjacency_const))
                synthetic_embed = relay.embed_tensor(
                    operator_syn, Tensor(synthetic_features.data)).data
            for _ in range(config.mapping_steps):
                self._mapping_step(mapping, mapping_opt, relay, propagated,
                                   synthetic_embed, adjacency_const,
                                   synthetic_features.data, support,
                                   support_original, result)

        # -------- sparsification (Algorithm 1 line 16) --------------------
        with no_grad():
            final_dense = adjacency_model(Tensor(synthetic_features.data)).data
        adjacency = sparsify_matrix(final_dense,
                                    self.config.adjacency_threshold).toarray()
        delta = config.mapping_threshold
        if delta is None:
            delta = 1.0 / labels_syn.size
        condensed = CondensedGraph(
            adjacency=adjacency,
            features=synthetic_features.data.copy(),
            labels=labels_syn,
            mapping=mapping.sparsified(delta),
            method=self.name)
        result.condensed = condensed
        result.synthetic_adjacency_dense = final_dense
        self.last_result = result
        self._mapping_snapshot = None
        self._original_adjacency = None
        return condensed

    # ------------------------------------------------------------------
    # Synthetic-graph phase: lambda * L_str added to gradient matching.
    # ------------------------------------------------------------------
    def _extra_synthetic_loss(self, relay, synthetic_features,
                              adjacency_model) -> Tensor:
        config = self.config
        if not config.use_structure_loss or config.lambda_structure == 0:
            return Tensor(0.0)
        if self._mapping_snapshot is None or self._original_adjacency is None:
            return Tensor(0.0)
        adjacency = adjacency_model(synthetic_features)
        operator = dense_normalize_tensor(adjacency)
        synthetic_embed = relay.embed_tensor(operator, synthetic_features)
        reconstructed = matmul(Tensor(self._mapping_snapshot), synthetic_embed)
        batch = sample_edge_batch(self._original_adjacency,
                                  config.edge_batch_size, self._edge_rng)
        loss = structure_loss(reconstructed, batch)
        return Tensor(config.lambda_structure) * loss

    # ------------------------------------------------------------------
    # Mapping phase
    # ------------------------------------------------------------------
    def _mapping_step(self, mapping, mapping_opt, relay, propagated,
                      synthetic_embed, adjacency_const, synthetic_features,
                      support, support_original, result) -> None:
        config = self.config
        normalized = mapping.normalized()
        loss = transductive_loss(propagated, synthetic_embed, normalized)
        result.transductive_losses.append(loss.item())
        if config.use_inductive_loss and config.beta_inductive > 0:
            support_synthetic = self._support_embedding_synthetic(
                relay, adjacency_const, synthetic_features, support, normalized)
            ind = inductive_loss(support_original, support_synthetic)
            result.inductive_losses.append(ind.item())
            loss = loss + Tensor(config.beta_inductive) * ind
        result.mapping_losses.append(loss.item())
        grads = grad(loss, [mapping.raw])
        mapping_opt.apply_grads(grads)
        mapping_opt.step()

    def _support_batch(self, split: InductiveSplit,
                       rng: np.random.Generator) -> IncrementalBatch:
        """Support nodes = validation set (labels unused), subsampled for speed."""
        batch = split.incremental_batch("val")
        if batch.num_nodes > self.config.max_support:
            picks = rng.choice(batch.num_nodes, size=self.config.max_support,
                               replace=False)
            batch = batch.subset(np.sort(picks))
        return batch

    def _support_embedding_original(self, relay: SgcRelay, graph,
                                    support: IncrementalBatch) -> np.ndarray:
        """``H_sup``: support nodes propagated through the original graph."""
        attached = attach_to_original(graph.adjacency, graph.features,
                                      support.incremental, support.features,
                                      support.intra)
        operator = symmetric_normalize(attached.adjacency)
        embedded = relay.propagate_const(operator, attached.features)
        return embedded[attached.base_size:]

    def _support_embedding_synthetic(self, relay: SgcRelay,
                                     adjacency_const: np.ndarray,
                                     synthetic_features: np.ndarray,
                                     support: IncrementalBatch,
                                     mapping_normalized: Tensor) -> Tensor:
        """``H'_sup``: support nodes attached to the synthetic graph (Eq. 11).

        Differentiable in ``M`` — the augmented adjacency contains the
        converted connections ``aM`` in its off-diagonal blocks.
        """
        converted = spmm(support.incremental, mapping_normalized)  # (n, N')
        adjacency_top = concat(
            [Tensor(adjacency_const), transpose(converted)], axis=1)
        intra_dense = Tensor(support.intra.toarray())
        adjacency_bottom = concat([converted, intra_dense], axis=1)
        augmented = concat([adjacency_top, adjacency_bottom], axis=0)
        operator = dense_normalize_tensor(augmented)
        features = Tensor(np.vstack([synthetic_features, support.features]))
        embedded = relay.embed_tensor(operator, features)
        base = adjacency_const.shape[0]
        return slice_rows(embedded, base, base + support.num_nodes)


@register_reducer("mcond",
                  profile_params=("outer_loops", "match_steps",
                                  "mapping_steps", "relay_steps"),
                  description="mapping-aware condensation (the paper's "
                              "method; learns the inductive mapping M)",
                  keeps_result=True)
def _mcond_factory(seed: int = 0, **cfg) -> MCondReducer:
    """Registry factory: build a :class:`MCondReducer` from flat kwargs."""
    return MCondReducer(MCondConfig(seed=seed, **cfg))
