"""The mapping matrix ``M`` of MCond.

``M`` is an ``(N, N')`` non-negative matrix expressing each original node
as a weighted ensemble of synthetic nodes.  This module implements:

- class-aware initialization (Section III-E, Fig. 5b),
- the row normalization of Eq. (15),
- threshold sparsification of Eq. (14),
- block-structure statistics used by the Fig. 5 analysis.

During training the dense, normalized form is used end-to-end; the sparse
thresholded form is what gets deployed.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import CondensationError
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import (
    Tensor,
    div,
    maximum_const,
    sigmoid,
    sub,
    tensor_sum,
)

__all__ = ["MappingMatrix", "class_aware_logits", "sparsify_matrix",
           "class_block_mass"]


def class_aware_logits(original_labels: np.ndarray, synthetic_labels: np.ndarray,
                       same_class: float = 6.0, other_class: float = -6.0,
                       noise: float = 0.01,
                       rng: np.random.Generator | None = None) -> np.ndarray:
    """Logit-domain class-aware initialization of ``M``.

    The paper sets ``M[i, j]`` to a constant for same-class pairs and 0
    otherwise, then squashes rows through a sigmoid (Eq. 15).  Working in
    the logit domain, that corresponds to a high logit for same-class pairs
    and a low one otherwise; a pinch of noise breaks ties between synthetic
    nodes of the same class.  The gap must be wide enough that, after the
    row normalization, same-class entries dominate even when a class holds
    only a handful of the ``N'`` synthetic nodes (with C classes the
    cross-class mass scales like ``sigma(other) * N'``) — ±6 keeps the
    initial correct-class mass above 90% for all evaluated datasets.
    """
    original_labels = np.asarray(original_labels, dtype=np.int64)
    synthetic_labels = np.asarray(synthetic_labels, dtype=np.int64)
    same = original_labels[:, None] == synthetic_labels[None, :]
    logits = np.where(same, same_class, other_class).astype(np.float64)
    if noise > 0:
        rng = rng if rng is not None else np.random.default_rng()
        logits += noise * rng.standard_normal(logits.shape)
    return logits


class MappingMatrix(Module):
    """Trainable mapping with the Eq. (15) normalization built in.

    The raw parameter lives in logit space; :meth:`normalized` produces the
    dense non-negative row-normalized matrix used in every loss, and
    :meth:`sparsified` produces the deployable thresholded CSR matrix.
    """

    def __init__(self, logits: np.ndarray, epsilon: float = 1e-5) -> None:
        super().__init__()
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 2:
            raise CondensationError(
                f"mapping logits must be 2-D, got shape {logits.shape}")
        if epsilon < 0:
            raise CondensationError(f"epsilon must be >= 0, got {epsilon}")
        self.raw = Parameter(logits, name="mapping_logits")
        self.epsilon = float(epsilon)

    @classmethod
    def class_aware(cls, original_labels: np.ndarray, synthetic_labels: np.ndarray,
                    epsilon: float = 1e-5, seed: int = 0) -> "MappingMatrix":
        """Construct with the class-aware initialization of the paper."""
        rng = np.random.default_rng(seed)
        return cls(class_aware_logits(original_labels, synthetic_labels, rng=rng),
                   epsilon=epsilon)

    @classmethod
    def random(cls, num_original: int, num_synthetic: int,
               epsilon: float = 1e-5, seed: int = 0,
               scale: float = 0.1) -> "MappingMatrix":
        """Random-initialization baseline used by the Fig. 5(c) ablation."""
        rng = np.random.default_rng(seed)
        logits = scale * rng.standard_normal((num_original, num_synthetic))
        return cls(logits, epsilon=epsilon)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.raw.shape

    def normalized(self) -> Tensor:
        """Eq. (15): ``M_i <- ReLU(sigma(M_i) / sum_j sigma(M_ij) - eps)``.

        Differentiable; used for every forward computation during training.
        """
        squashed = sigmoid(self.raw)
        row_sums = tensor_sum(squashed, axis=1, keepdims=True)
        normalized = div(squashed, row_sums)
        if self.epsilon > 0:
            normalized = maximum_const(sub(normalized, Tensor(self.epsilon)), 0.0)
        return normalized

    def normalized_array(self) -> np.ndarray:
        """Constant snapshot of :meth:`normalized` (no graph recorded)."""
        squashed = 1.0 / (1.0 + np.exp(-np.clip(self.raw.data, -60, 60)))
        normalized = squashed / squashed.sum(axis=1, keepdims=True)
        if self.epsilon > 0:
            normalized = np.maximum(normalized - self.epsilon, 0.0)
        return normalized

    def sparsified(self, delta: float) -> sp.csr_matrix:
        """Eq. (14): zero entries below ``delta`` and return CSR."""
        return sparsify_matrix(self.normalized_array(), delta)

    def sparsity(self, delta: float) -> float:
        """Fraction of zero entries after thresholding at ``delta``."""
        matrix = self.sparsified(delta)
        total = matrix.shape[0] * matrix.shape[1]
        return 1.0 - matrix.nnz / total


def sparsify_matrix(matrix: np.ndarray, threshold: float) -> sp.csr_matrix:
    """Eq. (14) thresholding for both ``A'`` and ``M``."""
    if threshold < 0:
        raise CondensationError(f"threshold must be >= 0, got {threshold}")
    dense = np.asarray(matrix, dtype=np.float64)
    kept = np.where(dense >= threshold, dense, 0.0)
    csr = sp.csr_matrix(kept)
    csr.eliminate_zeros()
    return csr


def class_block_mass(mapping: np.ndarray | sp.spmatrix,
                     original_labels: np.ndarray,
                     synthetic_labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Aggregate mapping mass into a ``(C, C)`` class-to-class matrix.

    Entry ``(c, c')`` is the mean weight from original nodes of class ``c``
    to synthetic nodes of class ``c'`` — the quantity visualized in
    Fig. 5(a)/(b); a diagonal-dominant matrix indicates that original nodes
    are represented chiefly by same-class synthetic nodes.
    """
    dense = mapping.toarray() if sp.issparse(mapping) else np.asarray(mapping)
    original_labels = np.asarray(original_labels, dtype=np.int64)
    synthetic_labels = np.asarray(synthetic_labels, dtype=np.int64)
    out = np.zeros((num_classes, num_classes), dtype=np.float64)
    for row_class in range(num_classes):
        rows = original_labels == row_class
        if not rows.any():
            continue
        block = dense[rows]
        for col_class in range(num_classes):
            cols = synthetic_labels == col_class
            if not cols.any():
                continue
            out[row_class, col_class] = float(block[:, cols].mean())
    return out
