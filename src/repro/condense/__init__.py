"""Graph reduction methods: coresets, VNG, GCond, DosCond, and MCond.

Importing this package registers every method in
:data:`repro.registry.REDUCERS`; prefer resolving reducers by name
through :func:`repro.registry.make_reducer` or the :mod:`repro.api`
facade over instantiating the classes directly.
"""

from repro.condense.base import (
    CondensedGraph,
    GraphReducer,
    allocate_class_counts,
    selection_mapping,
)
from repro.condense.coreset import (
    CoresetReducer,
    RandomCoreset,
    DegreeCoreset,
    HerdingCoreset,
    KCenterCoreset,
    sgc_embeddings,
    make_coreset,
)
from repro.condense.vng import VngReducer, weighted_kmeans
from repro.condense.losses import (
    gradient_matching_loss,
    structure_loss,
    transductive_loss,
    inductive_loss,
)
from repro.condense.mapping import (
    MappingMatrix,
    class_aware_logits,
    sparsify_matrix,
    class_block_mass,
)
from repro.condense.gcond import (
    PairwiseAdjacency,
    dense_normalize_tensor,
    SgcRelay,
    GCondConfig,
    GCondReducer,
    init_synthetic_features,
)
from repro.condense.mcond import MCondConfig, MCondResult, MCondReducer
from repro.condense.doscond import DosCondConfig, DosCondReducer
from repro.condense.sharded import (
    ShardedReducer,
    ShardTask,
    apportion_budget,
    assign_support,
    coalesce_shards,
    merge_condensed,
)
from repro.condense.bench import (
    CONDENSE_BENCH_SCHEMA_VERSION,
    check_condense_benchmark_schema,
    gate_condense_benchmark,
    run_condense_scaling_benchmark,
)

__all__ = [
    "CondensedGraph", "GraphReducer", "allocate_class_counts",
    "selection_mapping",
    "CoresetReducer", "RandomCoreset", "DegreeCoreset", "HerdingCoreset",
    "KCenterCoreset", "sgc_embeddings", "make_coreset",
    "VngReducer", "weighted_kmeans",
    "gradient_matching_loss", "structure_loss", "transductive_loss",
    "inductive_loss",
    "MappingMatrix", "class_aware_logits", "sparsify_matrix",
    "class_block_mass",
    "PairwiseAdjacency", "dense_normalize_tensor", "SgcRelay",
    "GCondConfig", "GCondReducer", "init_synthetic_features",
    "MCondConfig", "MCondResult", "MCondReducer",
    "DosCondConfig", "DosCondReducer",
    "ShardedReducer", "ShardTask", "apportion_budget", "assign_support",
    "coalesce_shards", "merge_condensed",
    "CONDENSE_BENCH_SCHEMA_VERSION", "check_condense_benchmark_schema",
    "gate_condense_benchmark", "run_condense_scaling_benchmark",
]
