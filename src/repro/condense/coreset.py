"""Coreset baselines: Random, Degree, Herding, K-Center.

Each baseline selects ``budget`` real training nodes (class-balanced, per
the paper) and keeps their induced subgraph.  Herding and K-Center operate
in a GNN latent space; we use the parameter-free SGC embedding ``Â^2 X`` by
default, matching the paper's use of latent node embeddings without tying
selection to a particular trained model.

Every coreset gets a one-hot selection mapping (see
:func:`repro.condense.base.selection_mapping`) so the shared inference
engine can attach inductive nodes to the reduced graph: an inductive node
keeps exactly its original edges into selected nodes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CondensationError
from repro.condense.base import (
    CondensedGraph,
    GraphReducer,
    allocate_class_counts,
    selection_mapping,
)
from repro.graph.datasets import InductiveSplit
from repro.graph.graph import Graph
from repro.graph.ops import symmetric_normalize
from repro.registry import register_reducer

__all__ = ["CoresetReducer", "RandomCoreset", "DegreeCoreset", "HerdingCoreset",
           "KCenterCoreset", "sgc_embeddings", "make_coreset"]


def sgc_embeddings(graph: Graph, hops: int = 2) -> np.ndarray:
    """Parameter-free SGC latent space ``Â^hops X``."""
    operator = symmetric_normalize(graph.adjacency)
    h = graph.features
    for _ in range(hops):
        h = operator @ h
    return h


class CoresetReducer(GraphReducer):
    """Shared machinery: class-balanced budgets, subgraph assembly."""

    name = "coreset"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # Subclasses implement per-class selection.
    def _select_in_class(self, candidates: np.ndarray, count: int,
                         graph: Graph, embeddings: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def reduce(self, split: InductiveSplit, budget: int) -> CondensedGraph:
        self._check_budget(split, budget)
        graph = split.original
        if graph.labels is None:
            raise CondensationError("coreset selection requires labels")
        labeled = split.labeled_in_original
        counts = allocate_class_counts(graph.labels[labeled], budget,
                                       split.num_classes)
        embeddings = self._embeddings(graph)
        rng = np.random.default_rng(self.seed)
        chosen: list[np.ndarray] = []
        for cls, count in enumerate(counts):
            if count == 0:
                continue
            candidates = labeled[graph.labels[labeled] == cls]
            if candidates.size == 0:
                raise CondensationError(f"class {cls} has no labeled candidates")
            take = min(int(count), candidates.size)
            chosen.append(self._select_in_class(candidates, take, graph,
                                                embeddings, rng))
        selected = np.concatenate(chosen)
        sub = graph.subgraph(selected)
        return CondensedGraph(
            adjacency=sub.adjacency.toarray(),
            features=sub.features,
            labels=sub.labels,
            mapping=selection_mapping(selected, graph.num_nodes),
            method=self.name)

    def _embeddings(self, graph: Graph) -> np.ndarray:
        return sgc_embeddings(graph)


class RandomCoreset(CoresetReducer):
    """Uniform class-balanced random selection."""

    name = "random"

    def _select_in_class(self, candidates, count, graph, embeddings, rng):
        return rng.choice(candidates, size=count, replace=False)


class DegreeCoreset(CoresetReducer):
    """Highest-degree nodes per class."""

    name = "degree"

    def _select_in_class(self, candidates, count, graph, embeddings, rng):
        degrees = graph.degrees()[candidates]
        order = np.argsort(-degrees, kind="stable")
        return candidates[order[:count]]


class HerdingCoreset(CoresetReducer):
    """Welling herding: greedily track the class-mean embedding.

    Repeatedly picks the sample whose addition keeps the running selection
    mean closest to the full class mean — the standard continual-learning
    exemplar selector cited by the paper.
    """

    name = "herding"

    def _select_in_class(self, candidates, count, graph, embeddings, rng):
        feats = embeddings[candidates]
        mean = feats.mean(axis=0)
        selected: list[int] = []
        running = np.zeros_like(mean)
        available = np.ones(candidates.size, dtype=bool)
        for step in range(count):
            # Choose x minimizing ||mean - (running + x) / (k+1)||.
            target = mean * (step + 1) - running
            distances = np.linalg.norm(feats - target, axis=1)
            distances[~available] = np.inf
            pick = int(np.argmin(distances))
            available[pick] = False
            running += feats[pick]
            selected.append(pick)
        return candidates[np.asarray(selected, dtype=np.int64)]


class KCenterCoreset(CoresetReducer):
    """Greedy k-center (farthest-first traversal) in the latent space."""

    name = "kcenter"

    def _select_in_class(self, candidates, count, graph, embeddings, rng):
        feats = embeddings[candidates]
        center = feats.mean(axis=0)
        first = int(np.argmin(np.linalg.norm(feats - center, axis=1)))
        selected = [first]
        distances = np.linalg.norm(feats - feats[first], axis=1)
        for _ in range(1, count):
            pick = int(np.argmax(distances))
            selected.append(pick)
            distances = np.minimum(distances,
                                   np.linalg.norm(feats - feats[pick], axis=1))
        return candidates[np.asarray(selected, dtype=np.int64)]


_CORESETS: dict[str, type[CoresetReducer]] = {
    "random": RandomCoreset,
    "degree": DegreeCoreset,
    "herding": HerdingCoreset,
    "kcenter": KCenterCoreset,
}

_CORESET_DESCRIPTIONS = {
    "random": "class-balanced random node selection",
    "degree": "highest-degree nodes per class",
    "herding": "Welling herding in the SGC latent space",
    "kcenter": "greedy k-center in the SGC latent space",
}

for _name, _cls in _CORESETS.items():
    register_reducer(_name, description=_CORESET_DESCRIPTIONS[_name])(_cls)


def make_coreset(name: str, seed: int = 0) -> CoresetReducer:
    """Instantiate a coreset method by name."""
    key = name.lower()
    if key not in _CORESETS:
        raise CondensationError(
            f"unknown coreset {name!r}; available: {', '.join(sorted(_CORESETS))}")
    return _CORESETS[key](seed=seed)
