"""Common abstractions for graph reduction methods.

Every method (coreset selection, VNG, GCond, MCond) produces a
:class:`CondensedGraph`: a small weighted graph plus — when the method
supports inductive attachment — an ``(N, N')`` mapping matrix from original
to synthetic nodes.  Coreset methods get a one-hot selection mapping for
free (an inductive node keeps its original edges to selected nodes), which
lets a single inference engine serve every method.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import ArtifactError, CondensationError
from repro.graph.datasets import InductiveSplit
from repro.graph.graph import Graph
from repro.graph.ops import dense_symmetric_normalize
from repro.tensor.sparse import dense_memory_bytes, sparse_memory_bytes
from repro.utils.artifacts import normalize_npz_path, open_npz_archive, save_npz

__all__ = ["CondensedGraph", "GraphReducer", "allocate_class_counts",
           "selection_mapping", "FORMAT_VERSION", "check_format_version"]

#: Version stamped into every persisted artifact.  Readers accept any
#: version up to the current one (version-1 files predate the stamp).
FORMAT_VERSION = 2


@dataclass
class CondensedGraph:
    """A reduced graph ``S = {A', X', Y'}`` with optional node mapping ``M``.

    Attributes
    ----------
    adjacency:
        ``(N', N')`` dense weighted adjacency ``A'`` (synthetic graphs are
        tiny, so dense storage is both simpler and faster).
    features:
        ``(N', d)`` synthetic node features ``X'``.
    labels:
        ``(N',)`` synthetic node labels ``Y'`` (predefined, class-balanced
        to match the original label distribution).
    mapping:
        Optional ``(N, N')`` mapping matrix ``M`` (sparse CSR); ``None``
        for methods that cannot attach inductive nodes (plain GCond).
    method:
        Name of the producing method, for reporting.
    """

    adjacency: np.ndarray
    features: np.ndarray
    labels: np.ndarray
    mapping: sp.csr_matrix | None = None
    method: str = "unknown"

    def __post_init__(self) -> None:
        self.adjacency = np.asarray(self.adjacency, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        n = self.adjacency.shape[0]
        if self.adjacency.shape != (n, n):
            raise CondensationError(
                f"synthetic adjacency must be square, got {self.adjacency.shape}")
        if self.features.shape[0] != n or self.labels.shape[0] != n:
            raise CondensationError(
                "synthetic adjacency, features and labels disagree on N': "
                f"{self.adjacency.shape[0]}, {self.features.shape[0]}, "
                f"{self.labels.shape[0]}")
        if self.mapping is not None:
            self.mapping = self.mapping.tocsr().astype(np.float64)
            if self.mapping.shape[1] != n:
                raise CondensationError(
                    f"mapping columns ({self.mapping.shape[1]}) != N' ({n})")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def supports_attachment(self) -> bool:
        """Whether inductive nodes can be attached (mapping available)."""
        return self.mapping is not None

    def to_graph(self) -> Graph:
        """View as a :class:`Graph` (weighted adjacency as CSR)."""
        return Graph(sp.csr_matrix(self.adjacency), self.features, self.labels)

    def normalized_adjacency(self) -> np.ndarray:
        """Dense symmetric-normalized ``Â'`` used for deployment."""
        return dense_symmetric_normalize(self.adjacency, self_loops=True)

    def sparse_adjacency(self) -> sp.csr_matrix:
        """CSR view of ``A'`` with explicit zeros dropped."""
        csr = sp.csr_matrix(self.adjacency)
        csr.eliminate_zeros()
        return csr

    def storage_bytes(self, include_mapping: bool = True) -> int:
        """Deployment storage: sparse ``A'`` + dense ``X'`` (+ sparse ``M``).

        Mirrors the paper's memory criterion ``O(||A'||_0 + N' d)`` plus the
        mapping matrix that synthetic-graph deployment must keep around.
        """
        total = sparse_memory_bytes(self.sparse_adjacency())
        total += dense_memory_bytes(self.features)
        if include_mapping and self.mapping is not None:
            total += sparse_memory_bytes(self.mapping)
        return total

    def __repr__(self) -> str:
        mapping_part = "none"
        if self.mapping is not None:
            mapping_part = f"{self.mapping.shape} nnz={self.mapping.nnz}"
        return (
            f"CondensedGraph(method={self.method!r}, nodes={self.num_nodes}, "
            f"edges={int((self.adjacency > 0).sum())}, mapping={mapping_part})")

    # ------------------------------------------------------------------
    # Serialization: condense offline once, serve online many times.
    # ------------------------------------------------------------------
    def to_payload(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flatten into ``np.savez``-ready arrays, keys prefixed by ``prefix``.

        Shared by :meth:`save` and :class:`repro.api.DeploymentBundle`, which
        embeds a condensed graph inside a larger archive.
        """
        payload: dict[str, np.ndarray] = {
            f"{prefix}adjacency": self.adjacency,
            f"{prefix}features": self.features,
            f"{prefix}labels": self.labels,
            f"{prefix}method": np.asarray(self.method),
        }
        if self.mapping is not None:
            coo = self.mapping.tocoo()
            payload[f"{prefix}mapping_row"] = coo.row
            payload[f"{prefix}mapping_col"] = coo.col
            payload[f"{prefix}mapping_data"] = coo.data
            payload[f"{prefix}mapping_shape"] = np.asarray(coo.shape)
        return payload

    @classmethod
    def from_payload(cls, archive, prefix: str = "") -> "CondensedGraph":
        """Rebuild from arrays produced by :meth:`to_payload`.

        ``archive`` is anything indexable by key with a ``.files`` (or
        ``.keys()``) listing — an open ``NpzFile`` or a plain dict.
        """
        keys = set(archive.files if hasattr(archive, "files") else archive.keys())
        required = {f"{prefix}adjacency", f"{prefix}features", f"{prefix}labels"}
        if not required <= keys:
            raise ArtifactError(
                f"archive is missing condensed-graph arrays {sorted(required - keys)}")
        mapping = None
        if f"{prefix}mapping_row" in keys:
            shape = tuple(int(v) for v in archive[f"{prefix}mapping_shape"])
            mapping = sp.coo_matrix(
                (archive[f"{prefix}mapping_data"],
                 (archive[f"{prefix}mapping_row"], archive[f"{prefix}mapping_col"])),
                shape=shape).tocsr()
        return cls(adjacency=archive[f"{prefix}adjacency"],
                   features=archive[f"{prefix}features"],
                   labels=archive[f"{prefix}labels"],
                   mapping=mapping,
                   method=str(archive[f"{prefix}method"]))

    def save(self, path: str | Path) -> None:
        """Persist the condensed artifact (graph + mapping) as ``.npz``.

        The path is normalized to the ``.npz`` suffix ``np.savez`` would
        produce, so ``save(p)`` / ``load(p)`` round-trip for any ``p``.
        """
        payload = self.to_payload()
        payload["format_version"] = np.asarray(FORMAT_VERSION)
        save_npz(path, payload)

    @classmethod
    def load(cls, path: str | Path) -> "CondensedGraph":
        """Load an artifact previously stored with :meth:`save`."""
        with open_npz_archive(path, "condensed artifact") as archive:
            check_format_version(archive, normalize_npz_path(path))
            return cls.from_payload(archive)


def check_format_version(archive, path) -> int:
    """Validate an archive's ``format_version`` stamp (missing => 1)."""
    version = 1
    if "format_version" in archive.files:
        version = int(archive["format_version"])
    if version > FORMAT_VERSION:
        raise ArtifactError(
            f"{path} uses artifact format v{version}, but this build reads "
            f"at most v{FORMAT_VERSION}; upgrade the library to load it")
    return version


class GraphReducer:
    """Interface implemented by every reduction method."""

    name: str = "base"

    def reduce(self, split: InductiveSplit, budget: int) -> CondensedGraph:
        """Produce a condensed graph with ``budget`` synthetic nodes."""
        raise NotImplementedError

    def _check_budget(self, split: InductiveSplit, budget: int) -> None:
        # Classes *present* among the labeled nodes, not the dataset's
        # global class count: a sharded run hands each worker a split
        # whose labeled subset may miss classes entirely (e.g. a
        # coalesced single-class shard), and only present classes ever
        # receive synthetic nodes (see allocate_class_counts).
        num_classes = split.num_classes
        if split.full.labels is not None and split.labeled_idx.size:
            num_classes = int(
                np.unique(split.full.labels[split.labeled_idx]).size)
        if budget < num_classes:
            raise CondensationError(
                f"budget {budget} is below the labeled class count "
                f"{num_classes}; every present class needs at least one "
                "synthetic node")
        if budget >= split.original.num_nodes:
            raise CondensationError(
                f"budget {budget} is not smaller than the original graph "
                f"({split.original.num_nodes} nodes)")


def allocate_class_counts(labels: np.ndarray, budget: int,
                          num_classes: int) -> np.ndarray:
    """Distribute ``budget`` synthetic nodes across classes.

    Follows the paper: synthetic labels are predefined to match the class
    distribution of the original (labeled) nodes, with at least one node
    per observed class.
    """
    labels = np.asarray(labels, dtype=np.int64)
    counts = np.bincount(labels, minlength=num_classes).astype(np.float64)
    present = counts > 0
    if budget < int(present.sum()):
        raise CondensationError(
            f"budget {budget} cannot cover {int(present.sum())} classes")
    allocation = np.zeros(num_classes, dtype=np.int64)
    allocation[present] = 1
    remaining = budget - int(allocation.sum())
    if remaining > 0:
        fractions = counts / counts.sum()
        extra = np.floor(fractions * remaining).astype(np.int64)
        allocation += extra
        shortfall = remaining - int(extra.sum())
        if shortfall > 0:
            # Largest-remainder distribution, restricted to classes that
            # actually have labeled nodes — sharded runs can see shards
            # whose labeled subset misses a class entirely, and a
            # synthetic node for an absent class could not be initialized.
            remainders = fractions * remaining - extra
            remainders[~present] = -np.inf
            order = np.argsort(-remainders, kind="stable")
            for cls in order[:shortfall]:
                allocation[cls] += 1
    return allocation


def selection_mapping(selected: np.ndarray, num_original: int) -> sp.csr_matrix:
    """One-hot ``(N, N')`` mapping for node-selection methods.

    ``M[i, j] = 1`` iff original node ``i`` *is* selected node ``j`` — so
    ``a M`` keeps exactly the inductive edges that point at selected nodes.
    """
    selected = np.asarray(selected, dtype=np.int64)
    data = np.ones(selected.size, dtype=np.float64)
    return sp.csr_matrix(
        (data, (selected, np.arange(selected.size))),
        shape=(num_original, selected.size))
