"""Conventional graph condensation (GCond, Jin et al. ICLR 2022) [30].

Learns synthetic features ``X'`` (and an MLP that derives ``A'`` from them,
Eq. 6) by matching the relay GNN's training gradients on the synthetic
graph against its gradients on the original graph (Eq. 4-5).  The relay is
SGC, as in the paper's experimental setup: its embedding ``Â^K X`` is
parameter-free, so the original-graph side can be propagated once and
cached, and gradient matching touches only the classifier weights.

This module also provides the two differentiable building blocks MCond
shares: the pairwise adjacency generator and dense tensor normalization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import CondensationError
from repro.condense.base import CondensedGraph, GraphReducer, allocate_class_counts
from repro.condense.losses import gradient_matching_loss
from repro.condense.mapping import sparsify_matrix
from repro.graph.datasets import InductiveSplit
from repro.graph.ops import symmetric_normalize
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.registry import register_reducer
from repro.tensor.functional import binary_cross_entropy_with_logits, cross_entropy
from repro.tensor.tensor import (
    Tensor,
    concat,
    gather_rows,
    grad,
    matmul,
    mul,
    no_grad,
    power,
    relu,
    reshape,
    sigmoid,
    tensor_sum,
)

__all__ = [
    "PairwiseAdjacency",
    "pretrain_adjacency_model",
    "dense_normalize_tensor",
    "SgcRelay",
    "GCondConfig",
    "GCondReducer",
    "init_synthetic_features",
]


class PairwiseAdjacency(Module):
    """Eq. (6): ``A'_{ij} = sigma((MLP([x_i;x_j]) + MLP([x_j;x_i])) / 2)``.

    The MLP makes ``A'`` a function of the synthetic features, so adjacency
    structure co-evolves with them during gradient matching.  The diagonal
    is masked out; normalization re-adds self-loops.
    """

    def __init__(self, feature_dim: int, hidden: int = 64, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.layer_in = Linear(2 * feature_dim, hidden, rng)
        self.layer_out = Linear(hidden, 1, rng)

    def pair_logits(self, features_a: Tensor, features_b: Tensor) -> Tensor:
        """Symmetric pre-sigmoid scores for row-aligned feature pairs."""
        forward_score = self.layer_out(
            relu(self.layer_in(concat([features_a, features_b], axis=1))))
        backward_score = self.layer_out(
            relu(self.layer_in(concat([features_b, features_a], axis=1))))
        return reshape((forward_score + backward_score) * Tensor(0.5), (-1,))

    def forward(self, features: Tensor) -> Tensor:
        n = features.shape[0]
        idx_i = np.repeat(np.arange(n), n)
        idx_j = np.tile(np.arange(n), n)
        scores = self.pair_logits(gather_rows(features, idx_i),
                                  gather_rows(features, idx_j))
        matrix = reshape(scores, (n, n))
        off_diagonal = Tensor(1.0 - np.eye(n))
        return mul(sigmoid(matrix), off_diagonal)

    def __call__(self, features: Tensor) -> Tensor:
        return self.forward(features)


def pretrain_adjacency_model(model: PairwiseAdjacency, labeled_features: np.ndarray,
                             labeled_classes: np.ndarray, steps: int = 100,
                             lr: float = 0.005, batch_size: int = 256,
                             rng: np.random.Generator | None = None) -> None:
    """Warm-start ``MLP_Phi`` on class-agreement of labeled node pairs.

    Untrained, the symmetric MLP of Eq. (6) scores every pair near 0.5, so
    the synthetic adjacency starts as an uninformative dense blob that the
    few CPU-scale matching steps cannot fix.  Condensed graphs learned by
    gradient matching are empirically dominated by intra-class edges, so we
    warm-start the MLP to score same-class pairs high and cross-class pairs
    low (balanced batches of labeled pairs); the matching loss then refines
    the topology.  Documented as a reproduction substitution in DESIGN.md
    (the paper relies on thousands of GPU epochs instead).
    """
    if steps <= 0:
        return
    rng = rng if rng is not None else np.random.default_rng()
    feats = np.asarray(labeled_features, dtype=np.float64)
    classes = np.asarray(labeled_classes, dtype=np.int64)
    if feats.shape[0] != classes.shape[0]:
        raise CondensationError(
            f"features rows ({feats.shape[0]}) != labels ({classes.shape[0]})")
    optimizer = Adam(model.parameters(), lr=lr)
    count = feats.shape[0]
    for _ in range(steps):
        rows = rng.integers(0, count, size=batch_size)
        cols = rng.integers(0, count, size=batch_size)
        targets = (classes[rows] == classes[cols]).astype(np.float64)
        logits = model.pair_logits(Tensor(feats[rows]), Tensor(feats[cols]))
        loss = binary_cross_entropy_with_logits(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()


def dense_normalize_tensor(adjacency: Tensor, self_loops: bool = True,
                           eps: float = 1e-9) -> Tensor:
    """Differentiable ``D^{-1/2} (A' + I) D^{-1/2}`` for dense tensors."""
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise CondensationError(
            f"adjacency must be square, got {adjacency.shape}")
    adj = adjacency + Tensor(np.eye(n)) if self_loops else adjacency
    degree = tensor_sum(adj, axis=1)
    inv_sqrt = power(degree + Tensor(eps), -0.5)
    scaled = mul(adj, reshape(inv_sqrt, (n, 1)))
    return mul(scaled, reshape(inv_sqrt, (1, n)))


class SgcRelay:
    """The relay GNN ``f``: a K-hop SGC with a linear classifier.

    Exposes exactly what condensation needs:

    - :meth:`propagate_const` — numpy K-hop propagation (original side,
      cached by callers);
    - :meth:`embed_tensor` — differentiable K-hop propagation (synthetic
      side);
    - :meth:`classifier_loss` / :meth:`fit_steps` — supervised loss and
      inner training steps of Algorithm 1 (line 11).
    """

    def __init__(self, feature_dim: int, num_classes: int, k_hops: int = 2,
                 seed: int = 0) -> None:
        self.feature_dim = feature_dim
        self.num_classes = num_classes
        self.k_hops = k_hops
        self._seed = seed
        self.classifier = Linear(feature_dim, num_classes,
                                 np.random.default_rng(seed))

    def reinit(self, seed: int) -> None:
        """Draw fresh relay parameters ``theta_0 ~ P_theta`` (Eq. 4)."""
        fresh = Linear(self.feature_dim, self.num_classes,
                       np.random.default_rng(seed))
        self.classifier = fresh

    def parameters(self) -> list[Parameter]:
        return self.classifier.parameters()

    # ------------------------------------------------------------------
    def propagate_const(self, operator: sp.spmatrix,
                        features: np.ndarray) -> np.ndarray:
        """Constant K-hop propagation ``Â^K X`` (numpy)."""
        h = np.asarray(features, dtype=np.float64)
        for _ in range(self.k_hops):
            h = operator @ h
        return h

    def embed_tensor(self, operator: Tensor, features: Tensor) -> Tensor:
        """Differentiable K-hop propagation for dense operators."""
        h = features
        for _ in range(self.k_hops):
            h = matmul(operator, h)
        return h

    def logits(self, embedding: Tensor) -> Tensor:
        return self.classifier(embedding)

    def classifier_loss(self, embedding: Tensor, labels: np.ndarray,
                        indices: np.ndarray | None = None) -> Tensor:
        logits = self.logits(embedding)
        if indices is not None:
            idx = np.asarray(indices, dtype=np.int64)
            return cross_entropy(gather_rows(logits, idx), labels[idx])
        return cross_entropy(logits, labels)

    def fit_steps(self, embedding: np.ndarray, labels: np.ndarray,
                  steps: int, lr: float = 0.01, weight_decay: float = 5e-4) -> None:
        """Train the classifier on a constant embedding for ``steps`` steps."""
        if steps <= 0:
            return
        optimizer = Adam(self.parameters(), lr=lr, weight_decay=weight_decay)
        const = Tensor(embedding)
        for _ in range(steps):
            optimizer.zero_grad()
            loss = cross_entropy(self.classifier(const), labels)
            loss.backward()
            optimizer.step()


def init_synthetic_features(split: InductiveSplit, counts: np.ndarray,
                            rng: np.random.Generator,
                            feature_matrix: np.ndarray | None = None,
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Initialize ``X'`` by sampling real labeled nodes per class.

    Returns ``(features, labels)`` ordered class by class.  GCond samples
    raw features; passing ``feature_matrix`` (e.g. the relay's propagated
    features ``Â^K X``) warm-starts the synthetic nodes at neighborhood-
    averaged prototypes, which lets the CPU-scale runs converge in tens of
    matching steps instead of the paper's thousands of GPU epochs (see
    DESIGN.md, substitutions).
    """
    graph = split.original
    source = graph.features if feature_matrix is None else np.asarray(feature_matrix)
    if source.shape[0] != graph.num_nodes:
        raise CondensationError(
            f"feature matrix has {source.shape[0]} rows for {graph.num_nodes} nodes")
    labeled = split.labeled_in_original
    features: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for cls, count in enumerate(counts):
        if count == 0:
            continue
        pool = labeled[graph.labels[labeled] == cls]
        if pool.size == 0:
            raise CondensationError(f"class {cls} has no labeled nodes")
        picks = rng.choice(pool, size=int(count), replace=pool.size < count)
        features.append(source[picks].copy())
        labels.append(np.full(int(count), cls, dtype=np.int64))
    return np.vstack(features), np.concatenate(labels)


@dataclass
class GCondConfig:
    """Hyper-parameters of gradient-matching condensation.

    The paper runs thousands of epochs on GPU; these defaults are sized for
    the CPU-scale simulators (see DESIGN.md) while preserving the
    optimization structure: ``outer_loops`` draws of ``theta_0``, and
    ``match_steps`` gradient-matching updates per draw, interleaved with
    ``relay_steps`` relay updates on the synthetic graph.
    """

    outer_loops: int = 4
    match_steps: int = 15
    relay_steps: int = 3
    lr_features: float = 0.03
    lr_adjacency: float = 0.01
    relay_lr: float = 0.05
    k_hops: int = 2
    adjacency_hidden: int = 64
    adjacency_threshold: float = 0.5    # mu in Eq. (14)
    init_propagated: bool = True        # warm-start X' at A^K X prototypes
    adjacency_pretrain_steps: int = 150  # link-prediction warm-start of MLP_Phi
    adjacency_pretrain_lr: float = 0.01
    adjacency_pretrain_batch: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.outer_loops <= 0 or self.match_steps <= 0:
            raise CondensationError("outer_loops and match_steps must be positive")
        if self.k_hops <= 0:
            raise CondensationError(f"k_hops must be positive, got {self.k_hops}")


class GCondReducer(GraphReducer):
    """Label-based gradient matching condensation (Section III-A)."""

    name = "gcond"

    def __init__(self, config: GCondConfig | None = None) -> None:
        self.config = config or GCondConfig()

    # ------------------------------------------------------------------
    def reduce(self, split: InductiveSplit, budget: int) -> CondensedGraph:
        self._check_budget(split, budget)
        config = self.config
        rng = np.random.default_rng(config.seed)
        graph = split.original
        labeled = split.labeled_in_original
        counts = allocate_class_counts(graph.labels[labeled], budget,
                                       split.num_classes)

        relay = SgcRelay(graph.feature_dim, split.num_classes,
                         k_hops=config.k_hops, seed=config.seed)
        operator = symmetric_normalize(graph.adjacency)
        propagated = relay.propagate_const(operator, graph.features)
        init_source = propagated if config.init_propagated else None
        features_init, labels_syn = init_synthetic_features(
            split, counts, rng, feature_matrix=init_source)

        synthetic_features = Parameter(features_init, name="synthetic_features")
        adjacency_model = PairwiseAdjacency(graph.feature_dim,
                                            hidden=config.adjacency_hidden,
                                            seed=config.seed)
        pretrain_adjacency_model(adjacency_model, propagated[labeled],
                                 graph.labels[labeled],
                                 steps=config.adjacency_pretrain_steps,
                                 lr=config.adjacency_pretrain_lr,
                                 batch_size=config.adjacency_pretrain_batch,
                                 rng=rng)
        feature_opt = Adam([synthetic_features], lr=config.lr_features)
        adjacency_opt = Adam(adjacency_model.parameters(), lr=config.lr_adjacency)

        for _ in range(config.outer_loops):
            relay.reinit(int(rng.integers(1 << 31)))
            for _ in range(config.match_steps):
                self._matching_step(relay, propagated, graph, labeled,
                                    synthetic_features, adjacency_model,
                                    labels_syn, feature_opt, adjacency_opt)
                self._relay_step(relay, synthetic_features, adjacency_model,
                                 labels_syn)

        adjacency = self._final_adjacency(adjacency_model, synthetic_features)
        return CondensedGraph(adjacency=adjacency,
                              features=synthetic_features.data.copy(),
                              labels=labels_syn, mapping=None, method=self.name)

    # ------------------------------------------------------------------
    def _original_gradients(self, relay: SgcRelay, propagated: np.ndarray,
                            graph, labeled: np.ndarray) -> list[Tensor]:
        loss = relay.classifier_loss(Tensor(propagated), graph.labels,
                                     indices=labeled)
        grads = grad(loss, relay.parameters())
        return [g.detach() for g in grads]

    def _synthetic_loss_graph(self, relay: SgcRelay,
                              synthetic_features: Parameter,
                              adjacency_model: PairwiseAdjacency,
                              labels_syn: np.ndarray) -> Tensor:
        adjacency = adjacency_model(synthetic_features)
        operator = dense_normalize_tensor(adjacency)
        embedding = relay.embed_tensor(operator, synthetic_features)
        return relay.classifier_loss(embedding, labels_syn)

    def _matching_step(self, relay, propagated, graph, labeled,
                       synthetic_features, adjacency_model, labels_syn,
                       feature_opt, adjacency_opt) -> None:
        original_grads = self._original_gradients(relay, propagated, graph, labeled)
        loss_syn = self._synthetic_loss_graph(relay, synthetic_features,
                                              adjacency_model, labels_syn)
        synthetic_grads = grad(loss_syn, relay.parameters(), create_graph=True)
        matching = gradient_matching_loss(original_grads, synthetic_grads)
        matching = matching + self._extra_synthetic_loss(
            relay, synthetic_features, adjacency_model)
        targets = [synthetic_features] + adjacency_model.parameters()
        grads = grad(matching, targets, allow_unused=True)
        feature_opt.apply_grads(grads[:1])
        adjacency_opt.apply_grads(grads[1:])
        feature_opt.step()
        adjacency_opt.step()

    def _extra_synthetic_loss(self, relay, synthetic_features,
                              adjacency_model) -> Tensor:
        """Hook for subclasses (MCond adds ``lambda * L_str`` here)."""
        return Tensor(0.0)

    def _relay_step(self, relay, synthetic_features, adjacency_model,
                    labels_syn) -> None:
        """Algorithm 1 line 11: advance the relay on the (frozen) synthetic graph."""
        with no_grad():
            adjacency = adjacency_model(Tensor(synthetic_features.data))
            operator = dense_normalize_tensor(adjacency)
            embedding = relay.embed_tensor(operator,
                                           Tensor(synthetic_features.data))
        relay.fit_steps(embedding.data, labels_syn,
                        steps=self.config.relay_steps, lr=self.config.relay_lr)

    def _final_adjacency(self, adjacency_model, synthetic_features) -> np.ndarray:
        with no_grad():
            adjacency = adjacency_model(Tensor(synthetic_features.data))
        sparse = sparsify_matrix(adjacency.data, self.config.adjacency_threshold)
        return sparse.toarray()


@register_reducer("gcond",
                  profile_params=("outer_loops", "match_steps", "relay_steps"),
                  description="gradient-matching condensation "
                              "(no inductive mapping)")
def _gcond_factory(seed: int = 0, **cfg) -> GCondReducer:
    """Registry factory: build a :class:`GCondReducer` from flat kwargs."""
    return GCondReducer(GCondConfig(seed=seed, **cfg))
