"""The four loss terms of MCond (Eq. 5, 8, 10, 12).

Synthetic-graph update:  ``L_S = L_gra + lambda * L_str``   (Eq. 9)
Mapping update:          ``L_M = L_tra + beta  * L_ind``    (Eq. 13)

All losses are plain functions over tensors so they can be unit-tested and
recombined (the Table V ablations switch individual terms off).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CondensationError
from repro.graph.sampling import EdgeBatch
from repro.tensor.functional import (
    binary_cross_entropy_with_logits,
    gradient_cosine_distance,
    l21_norm,
)
from repro.tensor.tensor import Tensor, as_tensor, gather_rows, mul, sub, tensor_sum

__all__ = [
    "gradient_matching_loss",
    "structure_loss",
    "transductive_loss",
    "inductive_loss",
]


def gradient_matching_loss(original_grads, synthetic_grads,
                           eps: float = 1e-8) -> Tensor:
    """Eq. (5): summed per-column cosine distance between gradient sets.

    ``original_grads`` are constants (gradients of the relay GNN loss on
    the original graph); ``synthetic_grads`` carry the graph through which
    the synthetic features are optimized (double backward).
    """
    detached = [as_tensor(g).detach() for g in original_grads]
    return gradient_cosine_distance(detached, list(synthetic_grads), eps=eps)


def structure_loss(reconstructed: Tensor, batch: EdgeBatch) -> Tensor:
    """Eq. (8): link reconstruction from approximate embeddings ``MH'``.

    ``reconstructed`` is the ``(N, d)`` matrix ``M H'``; the loss is binary
    cross-entropy of the inner products ``h_i . h_j`` over a batch of
    positive and negative pairs.
    """
    if len(batch) == 0:
        raise CondensationError("structure loss received an empty edge batch")
    h = as_tensor(reconstructed)
    head = gather_rows(h, batch.rows)
    tail = gather_rows(h, batch.cols)
    logits = tensor_sum(mul(head, tail), axis=1)
    return binary_cross_entropy_with_logits(logits, batch.targets)


def transductive_loss(original_embeddings: Tensor | np.ndarray,
                      synthetic_embeddings: Tensor | np.ndarray,
                      mapping: Tensor) -> Tensor:
    """Eq. (10): ``(1/N) || H - M H' ||_{2,1}``.

    ``H`` and ``H'`` are treated as constants (the relay GNN is frozen
    while ``M`` updates); only ``mapping`` carries gradients.
    """
    h = as_tensor(original_embeddings).detach()
    h_syn = as_tensor(synthetic_embeddings).detach()
    mapping = as_tensor(mapping)
    if mapping.shape != (h.shape[0], h_syn.shape[0]):
        raise CondensationError(
            f"mapping shape {mapping.shape} incompatible with H {h.shape} "
            f"and H' {h_syn.shape}")
    residual = sub(h, mapping @ h_syn)
    return l21_norm(residual) / Tensor(float(h.shape[0]))


def inductive_loss(support_original: Tensor | np.ndarray,
                   support_synthetic: Tensor) -> Tensor:
    """Eq. (12): ``(1/n) || H_sup - H'_sup ||_{2,1}``.

    ``support_original`` — support-node embeddings propagated through the
    original graph (constant); ``support_synthetic`` — the same nodes
    propagated through the synthetic graph via ``aM`` (differentiable in
    ``M``).
    """
    target = as_tensor(support_original).detach()
    predicted = as_tensor(support_synthetic)
    if target.shape != predicted.shape:
        raise CondensationError(
            f"support embedding shapes differ: {target.shape} vs {predicted.shape}")
    residual = sub(target, predicted)
    return l21_norm(residual) / Tensor(float(target.shape[0]))
