"""Graph-matrix operations: normalization, self-loops, structure statistics.

These work on scipy sparse matrices (for original graphs) and on dense numpy
arrays (for small synthetic graphs), mirroring how the paper treats the two:
the original adjacency is constant data, the synthetic adjacency is a dense
learnable matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError

__all__ = [
    "add_self_loops",
    "remove_self_loops",
    "symmetric_normalize",
    "row_normalize",
    "normalize_adjacency",
    "symmetrize",
    "dense_symmetric_normalize",
    "edge_homophily",
    "connected_components_count",
    "adjacency_from_edges",
    "laplacian",
]


def _require_square(matrix) -> None:
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"expected a square adjacency, got {matrix.shape}")


def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` (existing diagonal entries are replaced)."""
    _require_square(adjacency)
    adj = remove_self_loops(adjacency)
    eye = sp.identity(adj.shape[0], format="csr", dtype=np.float64) * weight
    return (adj + eye).tocsr()


def remove_self_loops(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Zero out the diagonal."""
    _require_square(adjacency)
    adj = adjacency.tocsr().astype(np.float64).copy()
    adj.setdiag(0.0)
    adj.eliminate_zeros()
    return adj


def symmetrize(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Make the adjacency symmetric via ``max(A, A^T)``."""
    _require_square(adjacency)
    adj = adjacency.tocsr().astype(np.float64)
    return adj.maximum(adj.T).tocsr()


def symmetric_normalize(adjacency: sp.spmatrix,
                        self_loops: bool = True) -> sp.csr_matrix:
    """GCN normalization ``D^{-1/2} (A [+ I]) D^{-1/2}`` (Eq. 1)."""
    _require_square(adjacency)
    adj = (add_self_loops(adjacency) if self_loops
           else adjacency.tocsr().astype(np.float64))
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv_sqrt = np.zeros_like(degree)
    positive = degree > 0
    inv_sqrt[positive] = degree[positive] ** -0.5
    scale = sp.diags(inv_sqrt)
    return (scale @ adj @ scale).tocsr()


def row_normalize(adjacency: sp.spmatrix, self_loops: bool = False) -> sp.csr_matrix:
    """Random-walk normalization ``D^{-1} A`` used by label propagation."""
    _require_square(adjacency)
    adj = (add_self_loops(adjacency) if self_loops
           else adjacency.tocsr().astype(np.float64))
    degree = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv = np.zeros_like(degree)
    positive = degree > 0
    inv[positive] = 1.0 / degree[positive]
    return (sp.diags(inv) @ adj).tocsr()


def normalize_adjacency(adjacency: sp.spmatrix, method: str = "sym",
                        self_loops: bool = True) -> sp.csr_matrix:
    """Dispatch to symmetric or row normalization by name."""
    if method == "sym":
        return symmetric_normalize(adjacency, self_loops=self_loops)
    if method == "row":
        return row_normalize(adjacency, self_loops=self_loops)
    raise GraphError(f"unknown normalization method {method!r}; use 'sym' or 'row'")


def dense_symmetric_normalize(adjacency: np.ndarray,
                              self_loops: bool = True) -> np.ndarray:
    """Dense counterpart of :func:`symmetric_normalize` for synthetic graphs.

    Operates on plain numpy arrays; the differentiable version used inside
    MCond training lives in :mod:`repro.condense.gcond` (it must be built
    from tensor ops).
    """
    adj = np.asarray(adjacency, dtype=np.float64)
    _require_square(adj)
    if self_loops:
        adj = adj.copy()
        np.fill_diagonal(adj, np.maximum(adj.diagonal(), 0.0) + 1.0)
    degree = adj.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    positive = degree > 0
    inv_sqrt[positive] = degree[positive] ** -0.5
    return adj * inv_sqrt[:, None] * inv_sqrt[None, :]


def edge_homophily(adjacency: sp.spmatrix, labels: np.ndarray) -> float:
    """Fraction of edges whose endpoints share a label (self-loops excluded)."""
    adj = remove_self_loops(adjacency).tocoo()
    if adj.nnz == 0:
        return 0.0
    labels = np.asarray(labels)
    same = labels[adj.row] == labels[adj.col]
    return float(same.mean())


def connected_components_count(adjacency: sp.spmatrix) -> int:
    """Number of connected components (undirected view)."""
    count, _ = sp.csgraph.connected_components(adjacency, directed=False)
    return int(count)


def adjacency_from_edges(edges: np.ndarray, num_nodes: int,
                         symmetric: bool = True) -> sp.csr_matrix:
    """Build a 0/1 CSR adjacency from an ``(m, 2)`` edge array."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return sp.csr_matrix((num_nodes, num_nodes), dtype=np.float64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
    if edges.min() < 0 or edges.max() >= num_nodes:
        raise GraphError("edge endpoints out of range")
    data = np.ones(edges.shape[0], dtype=np.float64)
    adj = sp.coo_matrix((data, (edges[:, 0], edges[:, 1])),
                        shape=(num_nodes, num_nodes)).tocsr()
    if symmetric:
        adj = adj.maximum(adj.T)
    adj.data[:] = 1.0
    return adj.tocsr()


def laplacian(adjacency: sp.spmatrix, normalized: bool = True) -> sp.csr_matrix:
    """Graph Laplacian ``L = I - D^{-1/2} A D^{-1/2}`` (or ``D - A``).

    The normalized form is what ChebNet filters are defined over.
    """
    _require_square(adjacency)
    adj = remove_self_loops(adjacency)
    if normalized:
        norm = symmetric_normalize(adj, self_loops=False)
        eye = sp.identity(adj.shape[0], format="csr", dtype=np.float64)
        return (eye - norm).tocsr()
    degree = sp.diags(np.asarray(adj.sum(axis=1)).reshape(-1))
    return (degree - adj).tocsr()
