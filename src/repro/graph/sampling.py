"""Edge and node sampling utilities.

The structure loss of MCond (Eq. 8) is trained on mini-batches mixing
observed (positive) and unobserved (negative) node pairs; this module
provides that sampler plus generic mini-batch iteration used by the
inference engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError

__all__ = ["EdgeBatch", "sample_edge_batch", "iterate_minibatches"]


@dataclass(frozen=True)
class EdgeBatch:
    """A batch of node pairs with binary link labels.

    ``rows``/``cols`` index node pairs; ``targets`` is 1.0 for observed
    edges and 0.0 for sampled non-edges.
    """

    rows: np.ndarray
    cols: np.ndarray
    targets: np.ndarray

    def __len__(self) -> int:
        return self.rows.size


def sample_edge_batch(
    adjacency: sp.spmatrix,
    batch_size: int,
    rng: np.random.Generator,
    negative_ratio: float = 1.0,
) -> EdgeBatch:
    """Sample positive edges and uniform negative pairs (Eq. 8's batch B).

    Parameters
    ----------
    adjacency:
        Sparse 0/1 adjacency of the original graph.
    batch_size:
        Number of *positive* edges to draw (with replacement if the graph
        has fewer edges than requested).
    negative_ratio:
        Negatives per positive.  Negative pairs are drawn uniformly and
        re-rolled if they collide with an observed edge (the collision
        probability is negligible at realistic densities, so a single
        rejection round suffices).
    """
    adj = adjacency.tocoo()
    if adj.nnz == 0:
        raise GraphError("cannot sample edges from an empty graph")
    if batch_size <= 0:
        raise GraphError(f"batch_size must be positive, got {batch_size}")
    num_nodes = adj.shape[0]
    replace = adj.nnz < batch_size
    picks = rng.choice(adj.nnz, size=batch_size, replace=replace)
    pos_rows = adj.row[picks].astype(np.int64)
    pos_cols = adj.col[picks].astype(np.int64)

    num_neg = int(round(batch_size * negative_ratio))
    neg_rows = rng.integers(0, num_nodes, size=num_neg)
    neg_cols = rng.integers(0, num_nodes, size=num_neg)
    csr = adjacency.tocsr()
    collisions = np.asarray(csr[neg_rows, neg_cols]).reshape(-1) > 0
    collisions |= neg_rows == neg_cols
    if collisions.any():
        neg_rows[collisions] = rng.integers(0, num_nodes, size=int(collisions.sum()))
        neg_cols[collisions] = rng.integers(0, num_nodes, size=int(collisions.sum()))

    rows = np.concatenate([pos_rows, neg_rows])
    cols = np.concatenate([pos_cols, neg_cols])
    targets = np.concatenate([
        np.ones(batch_size, dtype=np.float64),
        np.zeros(num_neg, dtype=np.float64)])
    return EdgeBatch(rows=rows, cols=cols, targets=targets)


def iterate_minibatches(
    total: int,
    batch_size: int,
    rng: np.random.Generator | None = None,
    shuffle: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(total)`` in chunks.

    Matches the paper's inference protocol (batch size 1000 over the test
    set).  With ``shuffle=True`` a permutation is applied first.
    """
    if batch_size <= 0:
        raise GraphError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(total)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng()
        order = rng.permutation(total)
    for start in range(0, total, batch_size):
        yield order[start:start + batch_size]
