"""Graph substrate: containers, generators, datasets, inductive attachment."""

from repro.graph.graph import Graph
from repro.graph.ops import (
    add_self_loops,
    remove_self_loops,
    symmetric_normalize,
    row_normalize,
    normalize_adjacency,
    symmetrize,
    dense_symmetric_normalize,
    edge_homophily,
    connected_components_count,
    adjacency_from_edges,
    laplacian,
)
from repro.graph.incremental import (
    AttachedGraph,
    attach_to_original,
    attach_to_synthetic,
    convert_connections,
)
from repro.graph.generators import SbmConfig, generate_sbm_graph, smooth_features
from repro.graph.datasets import (
    DatasetSpec,
    IncrementalBatch,
    InductiveSplit,
    DATASET_SPECS,
    dataset_names,
    load_dataset,
    make_split,
)
from repro.graph.sampling import EdgeBatch, sample_edge_batch, iterate_minibatches
from repro.graph.stream import (
    DeltaEffect,
    GraphDelta,
    StreamingGraph,
    make_delta_trace,
    splice_csr_rows,
)
from repro.graph.partition import (
    PARTITIONERS,
    bfs_order,
    check_partition,
    degree_balanced_partition,
    make_partitioner,
    register_partitioner,
    stratified_partition,
)

__all__ = [
    "Graph",
    "add_self_loops", "remove_self_loops", "symmetric_normalize",
    "row_normalize", "normalize_adjacency", "symmetrize",
    "dense_symmetric_normalize", "edge_homophily",
    "connected_components_count", "adjacency_from_edges", "laplacian",
    "AttachedGraph", "attach_to_original", "attach_to_synthetic",
    "convert_connections",
    "SbmConfig", "generate_sbm_graph", "smooth_features",
    "DatasetSpec", "IncrementalBatch", "InductiveSplit", "DATASET_SPECS",
    "dataset_names", "load_dataset", "make_split",
    "EdgeBatch", "sample_edge_batch", "iterate_minibatches",
    "DeltaEffect", "GraphDelta", "StreamingGraph", "make_delta_trace",
    "splice_csr_rows",
    "PARTITIONERS", "bfs_order", "check_partition",
    "degree_balanced_partition", "make_partitioner", "register_partitioner",
    "stratified_partition",
]
