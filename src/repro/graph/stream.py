"""Streaming graph evolution: deltas over a deployed base graph.

The paper's inductive regime (Eq. 3 / Eq. 11) condenses once and then
serves unseen nodes forever — but the *deployed base graph* it serves
against is frozen at bundle time.  Real deployments evolve: nodes join
permanently, edges appear and disappear, features drift.  This module is
the delta model for that evolution:

- :class:`GraphDelta` — one atomic change set: append nodes (with their
  edges into the existing graph), add/remove edges, update feature rows;
- :class:`StreamingGraph` — applies deltas to a canonical-CSR adjacency
  with *row splicing*: only the rows an edge change touches are rebuilt,
  every untouched row's index/data bytes are copied verbatim
  (:func:`splice_csr_rows`), so the post-delta matrix is bit-identical
  to a from-scratch canonical construction;
- :func:`make_delta_trace` — a deterministic delta-replay workload
  generator that promotes a dataset's inductive batch into the base
  graph delta by delta, with optional edge churn and feature drift.

:class:`repro.serving.prepared.PreparedDeployment.apply_delta` consumes
the same deltas to refresh its serving caches incrementally; the parity
suite asserts the refreshed state is bit-for-bit what a from-scratch
``prepare()`` on the post-delta graph produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.datasets import IncrementalBatch
from repro.graph.graph import Graph

__all__ = ["GraphDelta", "DeltaEffect", "StreamingGraph", "splice_csr_rows",
           "csr_row_positions", "grow_buffer", "make_delta_trace"]


def csr_row_positions(indptr, rows: np.ndarray) -> np.ndarray:
    """Flat positions of the stored entries of ``rows``, in row order.

    The one copy of the start/cumsum gather arithmetic every row-wise
    splice and refresh in the streaming stack shares.
    """
    starts = indptr[rows].astype(np.int64)
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(counts.sum())
    rep = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    within = (np.arange(total, dtype=np.int64)
              - np.repeat(np.cumsum(counts) - counts, counts))
    return starts[rep] + within


def grow_buffer(buffer: np.ndarray, rows_needed: int,
                rows_valid: int) -> np.ndarray:
    """Row-capacity growth for an append-mostly 2-D buffer.

    Returns ``buffer`` unchanged when it already holds ``rows_needed``
    rows; otherwise allocates geometrically (so repeated appends
    amortize to O(1) per row) and copies the first ``rows_valid`` rows.
    """
    if rows_needed <= buffer.shape[0]:
        return buffer
    capacity = max(rows_needed, buffer.shape[0] + (buffer.shape[0] >> 1) + 8)
    grown = np.empty((capacity, buffer.shape[1]), dtype=buffer.dtype)
    grown[:rows_valid] = buffer[:rows_valid]
    return grown


def _as_edge_array(edges, name: str) -> np.ndarray:
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"{name} must have shape (k, 2), got {arr.shape}")
    return arr


@dataclass(frozen=True)
class GraphDelta:
    """One atomic change to a streaming base graph.

    Attributes
    ----------
    add_features:
        ``(m, d)`` features of nodes appended to the graph (ids
        ``[N, N+m)`` after the append, where ``N`` is the pre-delta size).
    add_labels:
        Optional ``(m,)`` labels for the appended nodes; required when the
        base graph carries labels (pass ``-1`` for unknown).
    add_edges / add_weights:
        ``(k, 2)`` edge endpoints to insert (may reference appended nodes)
        with optional positive weights (default 1.0).  Inserting an edge
        that already exists *adds* to its weight; duplicated pairs inside
        one delta are canonicalized by summation first.
    remove_edges:
        ``(k, 2)`` endpoints of edges to delete.  Removing an edge the
        graph does not hold is an error — replay traces are exact.
    update_index / update_features:
        Feature rows of *existing* nodes to overwrite.
    symmetric:
        Apply edge changes in both directions (the paper's graphs are
        undirected); self-loops are applied once.
    """

    add_features: np.ndarray | None = None
    add_labels: np.ndarray | None = None
    add_edges: np.ndarray | None = None
    add_weights: np.ndarray | None = None
    remove_edges: np.ndarray | None = None
    update_index: np.ndarray | None = None
    update_features: np.ndarray | None = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.add_features is not None:
            feats = np.ascontiguousarray(self.add_features, dtype=np.float64)
            if feats.ndim != 2:
                raise GraphError(
                    f"add_features must be 2-D, got shape {feats.shape}")
            object.__setattr__(self, "add_features", feats)
        if self.add_labels is not None:
            if self.add_features is None:
                raise GraphError("add_labels given without add_features")
            labels = np.asarray(self.add_labels, dtype=np.int64)
            if labels.shape != (self.num_new_nodes,):
                raise GraphError(
                    f"add_labels shape {labels.shape} != "
                    f"({self.num_new_nodes},)")
            object.__setattr__(self, "add_labels", labels)
        edges = (_as_edge_array(self.add_edges, "add_edges")
                 if self.add_edges is not None
                 else np.empty((0, 2), np.int64))
        object.__setattr__(self, "add_edges", edges)
        removed = (_as_edge_array(self.remove_edges, "remove_edges")
                   if self.remove_edges is not None
                   else np.empty((0, 2), np.int64))
        object.__setattr__(self, "remove_edges", removed)
        if self.add_weights is not None:
            weights = np.asarray(self.add_weights, dtype=np.float64)
            if weights.shape != (edges.shape[0],):
                raise GraphError(
                    f"add_weights shape {weights.shape} != ({edges.shape[0]},)")
            if weights.size and weights.min() <= 0:
                raise GraphError("edge weights must be positive")
            object.__setattr__(self, "add_weights", weights)
        else:
            object.__setattr__(self, "add_weights",
                               np.ones(edges.shape[0], dtype=np.float64))
        if (self.update_index is None) != (self.update_features is None):
            raise GraphError(
                "update_index and update_features must be given together")
        if self.update_index is not None:
            idx = np.asarray(self.update_index, dtype=np.int64)
            values = np.ascontiguousarray(self.update_features,
                                          dtype=np.float64)
            if idx.ndim != 1 or values.ndim != 2 or values.shape[0] != idx.size:
                raise GraphError(
                    f"feature update shapes mismatch: index {idx.shape}, "
                    f"values {values.shape}")
            if np.unique(idx).size != idx.size:
                raise GraphError("update_index must be unique")
            object.__setattr__(self, "update_index", idx)
            object.__setattr__(self, "update_features", values)

    # ------------------------------------------------------------------
    @property
    def num_new_nodes(self) -> int:
        return 0 if self.add_features is None else int(self.add_features.shape[0])

    def is_noop(self) -> bool:
        """True when applying this delta changes nothing."""
        return (self.num_new_nodes == 0 and self.add_edges.shape[0] == 0
                and self.remove_edges.shape[0] == 0
                and self.update_index is None)


@dataclass(frozen=True)
class DeltaEffect:
    """What one applied delta changed.

    ``touched_rows`` are post-delta row ids (appended rows included)
    whose adjacency row was rebuilt; ``feature_rows`` are rows whose
    features changed (updates plus appended rows).  ``replaced_block`` /
    ``appended_block`` are the rebuilt adjacency rows themselves (the
    touched existing rows in order, then the appended rows) so downstream
    caches can refresh without re-slicing the full matrix.
    """

    graph: Graph
    touched_rows: np.ndarray
    feature_rows: np.ndarray
    appended: int
    num_nodes: int
    replaced_block: sp.csr_matrix | None = None
    appended_block: sp.csr_matrix | None = None


# ----------------------------------------------------------------------
# Row splicing
# ----------------------------------------------------------------------
def _copy_rows(dst_indices, dst_data, dst_starts, src: sp.csr_matrix,
               src_rows: np.ndarray) -> None:
    """Copy ``src_rows`` of ``src`` into the destination arrays, each row
    landing at its ``dst_starts`` offset."""
    src_pos = csr_row_positions(src.indptr, src_rows)
    if src_pos.size == 0:
        return
    counts = (src.indptr[src_rows + 1] - src.indptr[src_rows]).astype(np.int64)
    rep = np.repeat(np.arange(src_rows.size, dtype=np.int64), counts)
    within = (np.arange(src_pos.size, dtype=np.int64)
              - np.repeat(np.cumsum(counts) - counts, counts))
    dst_pos = dst_starts[rep] + within
    dst_indices[dst_pos] = src.indices[src_pos]
    dst_data[dst_pos] = src.data[src_pos]


def splice_csr_rows(matrix: sp.csr_matrix, rows: np.ndarray,
                    block: sp.csr_matrix, *, num_cols: int | None = None,
                    append: sp.csr_matrix | None = None) -> sp.csr_matrix:
    """Replace ``rows`` of ``matrix`` with the rows of ``block``.

    Untouched rows keep their index/data bytes verbatim (structural
    sharing at row granularity); the column dimension may widen to
    ``num_cols`` and ``append`` rows may be stacked at the bottom.
    ``rows`` must be sorted unique and ``block`` must hold ``len(rows)``
    canonical (column-sorted) rows.
    """
    rows = np.asarray(rows, dtype=np.int64)
    num_rows = matrix.shape[0]
    width = int(num_cols) if num_cols is not None else int(matrix.shape[1])
    if width < matrix.shape[1]:
        raise GraphError("splice cannot narrow the column dimension")
    if rows.size != block.shape[0]:
        raise GraphError(
            f"{rows.size} rows to replace but block has {block.shape[0]}")
    if rows.size and (rows.min() < 0 or rows.max() >= num_rows):
        raise GraphError(f"replacement rows out of range [0, {num_rows})")
    counts = np.diff(matrix.indptr).astype(np.int64)
    counts[rows] = np.diff(block.indptr).astype(np.int64)
    append_counts = (np.diff(append.indptr).astype(np.int64)
                     if append is not None else np.empty(0, np.int64))
    all_counts = np.concatenate([counts, append_counts])
    total_rows = num_rows + append_counts.size
    indptr = np.zeros(total_rows + 1, dtype=np.int64)
    np.cumsum(all_counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.empty(nnz, dtype=np.int64)
    data = np.empty(nnz, dtype=np.float64)

    kept = np.ones(num_rows, dtype=bool)
    kept[rows] = False
    kept_rows = np.flatnonzero(kept)
    _copy_rows(indices, data, indptr[kept_rows], matrix, kept_rows)
    _copy_rows(indices, data, indptr[rows], block,
               np.arange(rows.size, dtype=np.int64))
    if append is not None and append_counts.size:
        _copy_rows(indices, data, indptr[num_rows:num_rows + append.shape[0]],
                   append, np.arange(append.shape[0], dtype=np.int64))
    out = sp.csr_matrix((data, indices, indptr), shape=(total_rows, width))
    out.has_sorted_indices = True
    return out


# ----------------------------------------------------------------------
# The streaming graph
# ----------------------------------------------------------------------
class StreamingGraph:
    """A deployed base graph that evolves by :class:`GraphDelta`.

    The adjacency is held in canonical CSR form (duplicates summed,
    indices sorted); every :meth:`apply` produces a new canonical matrix
    by splicing only the touched rows, so repeated deltas never pay a
    whole-matrix rebuild and the result is bit-identical to constructing
    the post-delta graph from scratch.
    """

    def __init__(self, graph: Graph) -> None:
        adjacency = graph.adjacency.tocsr().astype(np.float64)
        adjacency.sum_duplicates()
        adjacency.sort_indices()
        # The stream owns its feature storage: an amortized-capacity
        # buffer (grown geometrically on appends) whose leading rows the
        # current graph views.  Feature updates mutate rows in place, so
        # `self.graph` is a *live view* of the stream, not a snapshot.
        self._feat_buffer = np.array(graph.features, dtype=np.float64,
                                     order="C", copy=True)
        self.graph = Graph(adjacency, self._feat_buffer, graph.labels,
                           graph.num_classes or None)
        self.version = 0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def _oriented(self, edges: np.ndarray, weights: np.ndarray | None,
                  symmetric: bool) -> tuple[np.ndarray, np.ndarray]:
        """Expand ``(k, 2)`` pairs into directed entries (mirror when
        symmetric, self-loops applied once)."""
        if edges.shape[0] == 0:
            empty = np.empty(0, np.int64)
            return np.empty((0, 2), np.int64), (
                np.empty(0, np.float64) if weights is not None else empty)
        if symmetric:
            off = edges[edges[:, 0] != edges[:, 1]]
            mirrored = np.vstack([edges, off[:, ::-1]])
            if weights is not None:
                weights = np.concatenate(
                    [weights, weights[edges[:, 0] != edges[:, 1]]])
            return mirrored, weights
        return edges, weights

    def apply(self, delta: GraphDelta) -> DeltaEffect:
        """Apply one delta; returns the :class:`DeltaEffect` and advances
        the stream (``self.graph`` is the post-delta graph)."""
        graph = self.graph
        old_n = graph.num_nodes
        m = delta.num_new_nodes
        new_n = old_n + m
        if delta.is_noop():
            return DeltaEffect(graph, np.empty(0, np.int64),
                               np.empty(0, np.int64), 0, old_n)

        if m and delta.add_features.shape[1] != graph.feature_dim:
            raise GraphError(
                f"appended feature dim {delta.add_features.shape[1]} != "
                f"graph feature dim {graph.feature_dim}")
        for name, edges in (("add_edges", delta.add_edges),
                            ("remove_edges", delta.remove_edges)):
            if edges.size and (edges.min() < 0 or edges.max() >= new_n):
                raise GraphError(
                    f"{name} endpoints out of range [0, {new_n})")
        if delta.remove_edges.size and delta.remove_edges.max() >= old_n:
            raise GraphError("remove_edges cannot reference appended nodes")
        if delta.update_index is not None:
            if delta.update_index.size and delta.update_index.max() >= old_n:
                raise GraphError("update_index must reference existing nodes")
            if delta.update_features.shape[1] != graph.feature_dim:
                raise GraphError(
                    f"update feature dim {delta.update_features.shape[1]} != "
                    f"graph feature dim {graph.feature_dim}")

        add, weights = self._oriented(delta.add_edges, delta.add_weights,
                                      delta.symmetric)
        remove, _ = self._oriented(delta.remove_edges, None, delta.symmetric)
        add_keys = add[:, 0] * new_n + add[:, 1] if add.size else add[:, 0]
        remove_keys = (remove[:, 0] * new_n + remove[:, 1]
                       if remove.size else remove[:, 0])
        if add.size and remove.size and np.isin(add_keys, remove_keys).any():
            raise GraphError(
                "a delta may not add and remove the same edge")

        touched = np.unique(np.concatenate(
            [add[:, 0], remove[:, 0], np.arange(old_n, new_n)]))
        touched_existing = touched[touched < old_n]

        replaced = self._rebuilt_rows(graph.adjacency, touched_existing, add,
                                      weights, remove_keys, new_n,
                                      check_removals=True)
        appended_block = None
        if m:
            appended_block = self._rebuilt_rows(
                None, np.arange(old_n, new_n, dtype=np.int64), add, weights,
                remove_keys, new_n, check_removals=False)
        adjacency = splice_csr_rows(graph.adjacency, touched_existing,
                                    replaced, num_cols=new_n,
                                    append=appended_block)
        features = self._next_features(delta, old_n, new_n, m)
        labels = self._next_labels(graph, delta, m)
        self.graph = self._wrap_graph(adjacency, features, labels,
                                      graph.num_classes)
        self.version += 1
        feature_rows = np.arange(old_n, new_n)
        if delta.update_index is not None:
            feature_rows = np.unique(np.concatenate(
                [delta.update_index, feature_rows]))
        return DeltaEffect(self.graph, touched, feature_rows, m, new_n,
                           replaced_block=replaced,
                           appended_block=appended_block)

    def _rebuilt_rows(self, adjacency, rows, add, weights, remove_keys,
                      new_n, check_removals):
        """Canonical post-delta content of ``rows`` as a small CSR block.

        Pure numpy: old entries (minus removals) and added entries are
        merged by a stable sort on ``(row, col)`` and duplicate runs are
        summed with ``np.add.reduceat`` — deterministic, column-sorted,
        no intermediate scipy matrices.
        """
        if adjacency is not None and rows.size:
            start = adjacency.indptr[rows].astype(np.int64)
            cnt = (adjacency.indptr[rows + 1] - adjacency.indptr[rows]
                   ).astype(np.int64)
            total = int(cnt.sum())
            rep = np.repeat(np.arange(rows.size, dtype=np.int64), cnt)
            src = (start[rep] + np.arange(total, dtype=np.int64)
                   - np.repeat(np.cumsum(cnt) - cnt, cnt))
            old_cols = adjacency.indices[src].astype(np.int64)
            old_vals = adjacency.data[src]
            if remove_keys.size:
                hit = np.isin(rows[rep] * new_n + old_cols, remove_keys)
                if check_removals:
                    expected = int(
                        np.isin(remove_keys // new_n, rows).sum())
                    if int(hit.sum()) != expected:
                        raise GraphError(
                            "remove_edges references edges the graph does "
                            "not hold")
                keep = ~hit
                rep, old_cols, old_vals = rep[keep], old_cols[keep], old_vals[keep]
        else:
            rep = np.empty(0, np.int64)
            old_cols = np.empty(0, np.int64)
            old_vals = np.empty(0, np.float64)
        if add.size:
            sel = np.isin(add[:, 0], rows)
            if sel.any():
                rep = np.concatenate(
                    [rep, np.searchsorted(rows, add[sel, 0])])
                old_cols = np.concatenate([old_cols, add[sel, 1]])
                old_vals = np.concatenate([old_vals, weights[sel]])
        key = rep * new_n + old_cols
        order = np.argsort(key, kind="stable")
        key = key[order]
        boundary = np.ones(key.size, dtype=bool)
        boundary[1:] = key[1:] != key[:-1]
        starts = np.flatnonzero(boundary)
        if starts.size:
            data = np.add.reduceat(old_vals[order], starts)
        else:
            data = np.empty(0, np.float64)
        cols = key[starts] % new_n
        counts = np.bincount(key[starts] // new_n, minlength=rows.size)
        indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        block = sp.csr_matrix((data, cols, indptr),
                              shape=(rows.size, new_n))
        block.has_sorted_indices = True
        return block

    @staticmethod
    def _wrap_graph(adjacency, features, labels, num_classes) -> Graph:
        """Wrap pre-validated canonical arrays without :class:`Graph`'s
        defensive copies — every invariant (square float64 CSR, positive
        weights, matching feature rows, int64 labels) holds by
        construction here, and re-validating would copy O(nnz) arrays on
        every delta."""
        graph = Graph.__new__(Graph)
        graph.adjacency = adjacency
        graph.features = features
        graph.labels = labels
        graph.num_classes = int(num_classes)
        return graph

    def _next_features(self, delta, old_n, new_n, m) -> np.ndarray:
        buffer = grow_buffer(self._feat_buffer, new_n, old_n)
        self._feat_buffer = buffer
        if delta.update_index is not None:
            buffer[delta.update_index] = delta.update_features
        if m:
            buffer[old_n:new_n] = delta.add_features
        return buffer[:new_n]

    @staticmethod
    def _next_labels(graph, delta, m) -> np.ndarray | None:
        if graph.labels is None:
            if delta.add_labels is not None:
                raise GraphError("cannot add labels to an unlabeled graph")
            return None
        if m == 0:
            return graph.labels
        appended = (delta.add_labels if delta.add_labels is not None
                    else np.full(m, -1, dtype=np.int64))
        return np.concatenate([graph.labels, appended])


# ----------------------------------------------------------------------
# Delta-replay workload generation
# ----------------------------------------------------------------------
def make_delta_trace(base: Graph, batch: IncrementalBatch, *,
                     num_deltas: int, nodes_per_delta: int = 1,
                     edges_per_delta: int = 0, removals_per_delta: int = 0,
                     updates_per_delta: int = 0, update_scale: float = 0.05,
                     seed: int = 0) -> list[GraphDelta]:
    """A deterministic delta trace promoting inductive nodes into the base.

    Each delta appends ``nodes_per_delta`` nodes of ``batch`` (with their
    recorded incremental edges into the base graph and intra edges among
    the delta's own nodes), then layers structural churn on the existing
    graph: ``edges_per_delta`` random unit-weight edges,
    ``removals_per_delta`` deletions of existing edges, and
    ``updates_per_delta`` feature-row perturbations.  The trace is a pure
    function of its arguments — replaying it against the same base graph
    reproduces the same evolution bit for bit.
    """
    if num_deltas <= 0 or nodes_per_delta <= 0:
        raise GraphError("num_deltas and nodes_per_delta must be positive")
    needed = num_deltas * nodes_per_delta
    if needed > batch.num_nodes:
        raise GraphError(
            f"trace needs {needed} inductive nodes but the batch holds "
            f"{batch.num_nodes}")
    if batch.incremental.shape[1] != base.num_nodes:
        raise GraphError(
            f"batch incremental width {batch.incremental.shape[1]} != "
            f"base nodes {base.num_nodes}")
    rng = np.random.default_rng(seed)
    sim = StreamingGraph(base.copy())
    labeled = base.labels is not None
    deltas: list[GraphDelta] = []
    cursor = 0
    for _ in range(num_deltas):
        old_n = sim.num_nodes
        sel = np.arange(cursor, cursor + nodes_per_delta)
        cursor += nodes_per_delta
        inc = batch.incremental[sel].tocoo()
        intra = sp.triu(batch.intra[sel][:, sel], k=1).tocoo()
        rows = [np.column_stack([inc.row + old_n, inc.col])]
        vals = [inc.data]
        if intra.nnz:
            rows.append(np.column_stack([intra.row + old_n,
                                         intra.col + old_n]))
            vals.append(intra.data)
        adj = sim.graph.adjacency
        remove_edges = None
        if removals_per_delta:
            upper = sp.triu(adj, k=1).tocoo()
            if upper.nnz:
                take = min(removals_per_delta, upper.nnz)
                picks = rng.choice(upper.nnz, size=take, replace=False)
                remove_edges = np.column_stack(
                    [upper.row[picks], upper.col[picks]])
        if edges_per_delta:
            endpoints = rng.integers(0, old_n, size=(edges_per_delta, 2))
            endpoints = endpoints[endpoints[:, 0] != endpoints[:, 1]]
            if remove_edges is not None and endpoints.size:
                lo = np.minimum(endpoints[:, 0], endpoints[:, 1])
                hi = np.maximum(endpoints[:, 0], endpoints[:, 1])
                removed_keys = (remove_edges[:, 0] * old_n
                                + remove_edges[:, 1])
                endpoints = endpoints[~np.isin(lo * old_n + hi, removed_keys)]
            if endpoints.size:
                rows.append(endpoints)
                vals.append(np.ones(endpoints.shape[0], dtype=np.float64))
        update_index = update_features = None
        if updates_per_delta:
            update_index = np.sort(rng.choice(
                old_n, size=min(updates_per_delta, old_n), replace=False))
            drift = rng.standard_normal(
                (update_index.size, base.feature_dim)) * update_scale
            update_features = sim.graph.features[update_index] + drift
        delta = GraphDelta(
            add_features=batch.features[sel],
            add_labels=batch.labels[sel] if labeled else None,
            add_edges=np.vstack(rows),
            add_weights=np.concatenate(vals),
            remove_edges=remove_edges,
            update_index=update_index,
            update_features=update_features)
        sim.apply(delta)
        deltas.append(delta)
    return deltas
