"""Deterministic, seeded graph partitioners for sharded condensation.

The sharded offline pipeline (:mod:`repro.condense.sharded`) splits the
original training graph into disjoint node shards, condenses every shard
independently, and merges the per-shard synthetic graphs.  Partition
quality governs both sides of that trade: balanced shards keep the
per-worker wall-clock even, while label- and locality-aware shards keep
per-shard condensation faithful to the class structure the reducers
preserve.

Two strategies ship behind the :data:`PARTITIONERS` registry:

- ``stratified`` — label-stratified BFS chunking.  Nodes are ordered by a
  seeded breadth-first traversal (so contiguous chunks are locally
  connected), then each class's nodes are dealt to shards in contiguous
  chunks, keeping every shard's label histogram close to the global one.
- ``degree`` — degree-balanced greedy packing (LPT): nodes are assigned
  in decreasing-degree order to the currently lightest shard, balancing
  *edge* work across workers on skewed-degree graphs.

Every partitioner is a callable ``fn(graph, num_shards, seed=0)``
returning a list of ``num_shards`` sorted, disjoint ``int64`` index
arrays that exactly cover ``range(graph.num_nodes)`` —
:func:`check_partition` asserts that contract and is shared by the
pipeline and the test suite.  Given the same inputs and seed, every
strategy returns the same shards on every run and platform.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.registry import FactoryEntry, Registry

__all__ = [
    "PARTITIONERS",
    "register_partitioner",
    "make_partitioner",
    "check_partition",
    "bfs_order",
    "stratified_partition",
    "degree_balanced_partition",
]

#: Signature every registered partitioner implements.
Partitioner = Callable[..., "list[np.ndarray]"]

PARTITIONERS: Registry[FactoryEntry] = Registry("graph partitioner")


def register_partitioner(name: str, *, description: str = "",
                         overwrite: bool = False):
    """Decorator registering a partitioner callable under ``name``."""

    def wrap(fn: Partitioner) -> Partitioner:
        PARTITIONERS.register(
            name, FactoryEntry(name=name.lower(), factory=fn,
                               description=description),
            overwrite=overwrite)
        return fn

    return wrap


def make_partitioner(name: str) -> Partitioner:
    """Resolve a registered partitioner by name."""
    return PARTITIONERS.get(name).factory


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------
def check_partition(shards: list[np.ndarray], num_nodes: int) -> None:
    """Validate the partition contract; raises :class:`GraphError`.

    Every node in ``range(num_nodes)`` must appear in exactly one shard,
    and every shard must be a sorted 1-D integer array.  Empty shards are
    legal (a caller-side concern — the sharded reducer coalesces them).
    """
    seen = np.zeros(num_nodes, dtype=np.int64)
    for index, shard in enumerate(shards):
        arr = np.asarray(shard)
        if arr.ndim != 1:
            raise GraphError(f"shard {index} is not 1-D: shape {arr.shape}")
        if arr.size == 0:
            continue
        if not np.issubdtype(arr.dtype, np.integer):
            raise GraphError(f"shard {index} has non-integer dtype {arr.dtype}")
        if arr.min() < 0 or arr.max() >= num_nodes:
            raise GraphError(
                f"shard {index} holds out-of-range nodes "
                f"(valid range [0, {num_nodes}))")
        if not np.all(np.diff(arr) > 0):
            raise GraphError(f"shard {index} is not sorted and duplicate-free")
        np.add.at(seen, arr, 1)
    uncovered = int((seen == 0).sum())
    duplicated = int((seen > 1).sum())
    if uncovered or duplicated:
        raise GraphError(
            f"partition is not exact: {uncovered} nodes uncovered, "
            f"{duplicated} nodes in multiple shards")


def _validate_args(graph: Graph, num_shards: int) -> None:
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    if graph.num_nodes == 0:
        raise GraphError("cannot partition an empty graph")


# ----------------------------------------------------------------------
# BFS ordering (shared by the stratified strategy)
# ----------------------------------------------------------------------
def bfs_order(graph: Graph, seed: int = 0) -> np.ndarray:
    """A seeded breadth-first ordering covering every component.

    Component roots are drawn from a seeded permutation, so the ordering
    is deterministic for a given ``(graph, seed)`` while still varying
    across seeds.  Consecutive positions in the returned array are
    neighbors whenever the graph allows it, which is what makes
    contiguous chunks of this ordering locality-preserving shards.
    """
    n = graph.num_nodes
    candidates = np.random.default_rng(seed).permutation(n)
    visited = np.zeros(n, dtype=bool)
    order: list[np.ndarray] = []
    for root in candidates:
        if visited[root]:
            continue
        component = sp.csgraph.breadth_first_order(
            graph.adjacency, int(root), directed=False,
            return_predecessors=False)
        component = np.asarray(component, dtype=np.int64)
        fresh = component[~visited[component]]
        visited[fresh] = True
        order.append(fresh)
    return np.concatenate(order)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@register_partitioner(
    "stratified",
    description="label-stratified BFS chunking (balanced labels + locality)")
def stratified_partition(graph: Graph, num_shards: int, *,
                         seed: int = 0) -> list[np.ndarray]:
    """Label-stratified BFS partition.

    Each class's nodes, ordered by the seeded BFS traversal, are split
    into ``num_shards`` contiguous chunks; chunk ``k`` of class ``c``
    lands in shard ``(k + c) % num_shards``.  The rotation spreads the
    slightly-larger leading chunks across shards, so shard sizes stay
    balanced even when class sizes are not multiples of ``num_shards``.
    Unlabeled graphs degrade gracefully to plain BFS chunking.
    """
    _validate_args(graph, num_shards)
    labels = (graph.labels if graph.labels is not None
              else np.zeros(graph.num_nodes, dtype=np.int64))
    order = bfs_order(graph, seed=seed)
    rank = np.empty(graph.num_nodes, dtype=np.int64)
    rank[order] = np.arange(graph.num_nodes)
    shards: list[list[np.ndarray]] = [[] for _ in range(num_shards)]
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        members = members[np.argsort(rank[members], kind="stable")]
        for chunk_index, chunk in enumerate(np.array_split(members, num_shards)):
            shards[(chunk_index + int(cls)) % num_shards].append(chunk)
    return [np.sort(np.concatenate(parts)) if parts else
            np.empty(0, dtype=np.int64) for parts in shards]


@register_partitioner(
    "degree",
    description="degree-balanced greedy packing (even edge work per shard)")
def degree_balanced_partition(graph: Graph, num_shards: int, *,
                              seed: int = 0) -> list[np.ndarray]:
    """Degree-balanced LPT partition.

    Nodes are assigned in decreasing-degree order (ties broken by node
    id, so the result is deterministic and ``seed`` is accepted only for
    interface symmetry) to the shard with the lightest load, where load
    counts ``degree + 1`` per node — the ``+ 1`` keeps zero-degree nodes
    from piling onto a single shard.
    """
    _validate_args(graph, num_shards)
    del seed  # deterministic regardless of seed; accepted for uniformity
    degrees = graph.degrees()
    order = np.argsort(-degrees, kind="stable")
    loads = np.zeros(num_shards, dtype=np.float64)
    assignment = np.empty(graph.num_nodes, dtype=np.int64)
    for node in order:
        shard = int(np.argmin(loads))
        assignment[node] = shard
        loads[shard] += degrees[node] + 1.0
    return [np.flatnonzero(assignment == shard)
            for shard in range(num_shards)]
