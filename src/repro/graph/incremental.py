"""Attaching inductive nodes to a deployed graph (Eq. 3 and Eq. 11).

At inference time a batch of ``n`` unseen nodes arrives with features ``x``
and an *incremental adjacency* ``a`` recording their edges into the original
graph's ``N`` nodes.  Conventional GC must attach them to the original graph
(Eq. 3).  MCond instead converts ``a`` through the mapping matrix ``M`` into
weighted edges ``aM`` onto the ``N'`` synthetic nodes (Eq. 11).

The *graph batch* setting keeps the inductive-intra adjacency ``ea``; the
*node batch* setting zeroes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError

__all__ = ["AttachedGraph", "attach_to_original", "attach_to_synthetic",
           "convert_connections"]


@dataclass(frozen=True)
class AttachedGraph:
    """An augmented graph with inductive nodes appended at the end.

    Attributes
    ----------
    adjacency:
        ``(B+n, B+n)`` CSR matrix where ``B`` is the deployed (base) graph
        size and ``n`` the number of inductive nodes.
    features:
        ``(B+n, d)`` feature matrix.
    base_size:
        ``B`` — nodes ``[0, B)`` belong to the deployed graph.
    num_new:
        ``n`` — nodes ``[B, B+n)`` are the inductive batch.
    """

    adjacency: sp.csr_matrix
    features: np.ndarray
    base_size: int
    num_new: int

    @property
    def num_nodes(self) -> int:
        return self.base_size + self.num_new

    def inductive_indices(self) -> np.ndarray:
        """Row indices of the inductive nodes in the augmented graph."""
        return np.arange(self.base_size, self.base_size + self.num_new)


def _as_csr(matrix, shape: tuple[int, int], name: str) -> sp.csr_matrix:
    if matrix is None:
        return sp.csr_matrix(shape, dtype=np.float64)
    csr = matrix.tocsr().astype(np.float64) if sp.issparse(matrix) else sp.csr_matrix(
        np.asarray(matrix, dtype=np.float64))
    if csr.shape != shape:
        raise GraphError(f"{name} has shape {csr.shape}, expected {shape}")
    return csr


def attach_to_original(
    base_adjacency: sp.spmatrix,
    base_features: np.ndarray,
    incremental: sp.spmatrix,
    new_features: np.ndarray,
    intra: sp.spmatrix | None = None,
) -> AttachedGraph:
    """Eq. (3): append inductive nodes to the *original* graph.

    Parameters
    ----------
    base_adjacency:
        ``(N, N)`` original adjacency ``A``.
    base_features:
        ``(N, d)`` original features ``X``.
    incremental:
        ``(n, N)`` incremental adjacency ``a`` (edges into the base graph).
    new_features:
        ``(n, d)`` features ``x`` of the inductive nodes.
    intra:
        Optional ``(n, n)`` adjacency ``ea`` among inductive nodes (graph
        batch); ``None`` means the node-batch setting (zero matrix).
    """
    base = (base_adjacency.tocsr().astype(np.float64)
            if sp.issparse(base_adjacency)
            else sp.csr_matrix(np.asarray(base_adjacency, dtype=np.float64)))
    num_base = base.shape[0]
    new_feats = np.asarray(new_features, dtype=np.float64)
    num_new = new_feats.shape[0]
    base_feats = np.asarray(base_features, dtype=np.float64)
    if base_feats.shape[0] != num_base:
        raise GraphError(
            f"base features rows ({base_feats.shape[0]}) != base nodes ({num_base})")
    if base_feats.shape[1] != new_feats.shape[1]:
        raise GraphError(
            f"feature dims differ: base {base_feats.shape[1]} "
            f"vs new {new_feats.shape[1]}")
    inc = _as_csr(incremental, (num_new, num_base), "incremental adjacency")
    ea = _as_csr(intra, (num_new, num_new), "intra adjacency")
    augmented = sp.bmat([[base, inc.T], [inc, ea]], format="csr")
    features = np.vstack([base_feats, new_feats])
    return AttachedGraph(augmented, features, num_base, num_new)


def _canonical_incremental(incremental, dedup: str) -> sp.csr_matrix:
    """Canonicalize the raw incremental adjacency under a dedup policy.

    Edge feeds (COO triplet lists, logs of arrivals) can name the same
    ``(row, col)`` pair more than once.  Before this was made explicit,
    duplicated pairs were silently *summed* by the CSR conversion —
    double-counting what the producer meant as one edge.  The policy is
    now a named choice:

    - ``"sum"`` (default) — duplicates accumulate weight, canonicalized
      with ``sum_duplicates()`` so the ``a @ M`` accumulation order is
      deterministic.  This keeps the historical Eq. (11) semantics for
      genuinely weighted multi-edges.
    - ``"distinct"`` — duplicated pairs collapse to a single edge keeping
      the largest weight (for 0/1 adjacencies: exactly one edge), the
      right policy for at-least-once edge feeds.
    """
    if dedup not in ("sum", "distinct"):
        raise GraphError(f"dedup must be 'sum' or 'distinct', got {dedup!r}")
    if not sp.issparse(incremental):
        # a dense array cannot express duplicate entries
        return sp.csr_matrix(np.asarray(incremental, dtype=np.float64))
    if dedup == "sum":
        inc = incremental.tocsr().astype(np.float64)
        inc.sum_duplicates()
        return inc
    coo = incremental.tocoo()
    if coo.nnz == 0:
        return sp.csr_matrix(coo.shape, dtype=np.float64)
    order = np.lexsort((coo.data, coo.col, coo.row))
    row, col = coo.row[order], coo.col[order]
    data = coo.data.astype(np.float64)[order]
    # the last entry of each sorted duplicate run holds the max weight
    last = np.ones(order.size, dtype=bool)
    last[:-1] = (row[:-1] != row[1:]) | (col[:-1] != col[1:])
    return sp.csr_matrix((data[last], (row[last], col[last])), shape=coo.shape)


def convert_connections(incremental: sp.spmatrix,
                        mapping: np.ndarray | sp.spmatrix, *,
                        dedup: str = "sum") -> sp.csr_matrix:
    """Compute the converted connections ``aM`` of Eq. (11).

    ``incremental`` is the ``(n, N)`` incremental adjacency into the original
    graph; ``mapping`` is the ``(N, N')`` mapping matrix.  Returns a sparse
    ``(n, N')`` matrix of weighted edges onto the synthetic nodes.

    ``dedup`` names the policy for duplicated ``(row, col)`` entries in
    the raw input (see :func:`_canonical_incremental`): ``"sum"``
    accumulates them, ``"distinct"`` collapses them to one edge.  Either
    way the input is canonicalized first, so duplicate entries can no
    longer be double-counted silently by the CSR conversion.
    """
    inc = _canonical_incremental(incremental, dedup)
    if not sp.issparse(mapping):
        mapping = np.asarray(mapping, dtype=np.float64)
    if inc.shape[1] != mapping.shape[0]:
        raise GraphError(
            f"incremental columns ({inc.shape[1]}) != "
            f"mapping rows ({mapping.shape[0]})")
    if sp.issparse(mapping):
        converted = (inc @ mapping.tocsr().astype(np.float64)).tocsr()
    else:
        converted = sp.csr_matrix(inc @ mapping)
    converted.eliminate_zeros()
    return converted


def attach_to_synthetic(
    synthetic_adjacency,
    synthetic_features: np.ndarray,
    incremental: sp.spmatrix,
    new_features: np.ndarray,
    mapping: np.ndarray | sp.spmatrix,
    intra: sp.spmatrix | None = None,
    dedup: str = "sum",
) -> AttachedGraph:
    """Eq. (11): append inductive nodes to the *synthetic* graph via ``aM``.

    Parameters mirror :func:`attach_to_original`, except the base graph is
    the synthetic one (``A'``, ``X'``) and ``mapping`` is the learned
    ``(N, N')`` matrix used to convert the incremental adjacency.
    ``dedup`` is the duplicate-entry policy forwarded to
    :func:`convert_connections`.
    """
    converted = convert_connections(incremental, mapping, dedup=dedup)
    return attach_to_original(
        synthetic_adjacency, synthetic_features, converted, new_features, intra)
