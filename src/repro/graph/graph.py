"""The :class:`Graph` container used across the library.

A ``Graph`` couples a sparse adjacency matrix with node features and
(optionally) integer class labels.  Original graphs in the paper are
unweighted and undirected; synthetic graphs produced by condensation are
dense and weighted and live in :class:`repro.condense.base.CondensedGraph`
— but they can be converted to a ``Graph`` for inference.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """An attributed graph: CSR adjacency, feature matrix, optional labels.

    Parameters
    ----------
    adjacency:
        ``(N, N)`` scipy sparse matrix (any format; stored as CSR) or dense
        array.  Must be square and hold non-negative weights.
    features:
        ``(N, d)`` float feature matrix.
    labels:
        Optional ``(N,)`` integer labels in ``[0, num_classes)``.
    num_classes:
        Number of classes; inferred from labels when omitted.
    """

    def __init__(
        self,
        adjacency,
        features: np.ndarray,
        labels: np.ndarray | None = None,
        num_classes: int | None = None,
    ) -> None:
        if sp.issparse(adjacency):
            adj = adjacency.tocsr().astype(np.float64)
        else:
            adj = sp.csr_matrix(np.asarray(adjacency, dtype=np.float64))
        if adj.shape[0] != adj.shape[1]:
            raise GraphError(f"adjacency must be square, got {adj.shape}")
        feats = np.asarray(features, dtype=np.float64)
        if feats.ndim != 2:
            raise GraphError(f"features must be 2-D, got shape {feats.shape}")
        if feats.shape[0] != adj.shape[0]:
            raise GraphError(
                f"feature rows ({feats.shape[0]}) != number of nodes ({adj.shape[0]})")
        if adj.nnz and adj.data.min() < 0:
            raise GraphError("adjacency weights must be non-negative")

        self.adjacency: sp.csr_matrix = adj
        self.features: np.ndarray = feats
        self.labels: np.ndarray | None = None
        if labels is not None:
            lab = np.asarray(labels)
            if lab.shape != (adj.shape[0],):
                raise GraphError(
                    f"labels shape {lab.shape} != ({adj.shape[0]},)")
            self.labels = lab.astype(np.int64)
        if num_classes is None and self.labels is not None and self.labels.size:
            num_classes = int(self.labels.max()) + 1
        self.num_classes: int = int(num_classes) if num_classes is not None else 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges (nnz of the adjacency)."""
        return int(self.adjacency.nnz)

    @property
    def num_undirected_edges(self) -> int:
        """Number of undirected edges, counting self-loops once."""
        diagonal = int((self.adjacency.diagonal() != 0).sum())
        return (self.num_edges - diagonal) // 2 + diagonal

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    def degrees(self) -> np.ndarray:
        """Out-degree (= in-degree for symmetric graphs) of every node."""
        return np.asarray(self.adjacency.sum(axis=1)).reshape(-1)

    def is_symmetric(self, tol: float = 1e-9) -> bool:
        diff = self.adjacency - self.adjacency.T
        if diff.nnz == 0:
            return True
        return bool(np.abs(diff.data).max() <= tol)

    def has_self_loops(self) -> bool:
        return bool((self.adjacency.diagonal() != 0).any())

    def __repr__(self) -> str:
        label_part = f", classes={self.num_classes}" if self.num_classes else ""
        return (
            f"Graph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"features={self.feature_dim}{label_part})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        same_adj = (self.adjacency != other.adjacency).nnz == 0
        same_feat = np.array_equal(self.features, other.features)
        if self.labels is None or other.labels is None:
            same_lab = self.labels is None and other.labels is None
        else:
            same_lab = np.array_equal(self.labels, other.labels)
        return bool(same_adj and same_feat and same_lab)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, indices: np.ndarray) -> "Graph":
        """Induced subgraph on ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise GraphError(f"indices must be 1-D, got shape {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_nodes):
            raise GraphError(
                f"indices out of range [0, {self.num_nodes}): "
                f"min={idx.min()}, max={idx.max()}")
        if idx.size != np.unique(idx).size:
            raise GraphError("subgraph indices must be unique")
        adj = self.adjacency[idx][:, idx]
        labels = self.labels[idx] if self.labels is not None else None
        return Graph(adj, self.features[idx], labels, self.num_classes or None)

    def cross_adjacency(self, rows: np.ndarray, cols: np.ndarray) -> sp.csr_matrix:
        """The ``(len(rows), len(cols))`` block of the adjacency matrix.

        This is the incremental adjacency ``a`` of Eq. (3): rows are
        inductive nodes, columns are nodes of the original graph.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self.adjacency[rows][:, cols].tocsr()

    def copy(self) -> "Graph":
        labels = None if self.labels is None else self.labels.copy()
        return Graph(self.adjacency.copy(), self.features.copy(), labels,
                     self.num_classes or None)

    def class_counts(self) -> np.ndarray:
        """Number of nodes per class, shape ``(num_classes,)``."""
        if self.labels is None:
            raise GraphError("graph has no labels")
        return np.bincount(self.labels, minlength=self.num_classes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialize to a ``.npz`` archive."""
        adj = self.adjacency.tocoo()
        payload = {
            "row": adj.row,
            "col": adj.col,
            "weight": adj.data,
            "shape": np.asarray(adj.shape),
            "features": self.features,
            "num_classes": np.asarray(self.num_classes),
        }
        if self.labels is not None:
            payload["labels"] = self.labels
        np.savez_compressed(Path(path), **payload)

    @classmethod
    def load(cls, path: str | Path) -> "Graph":
        """Load a graph previously stored with :meth:`save`."""
        with np.load(Path(path)) as archive:
            shape = tuple(int(v) for v in archive["shape"])
            adj = sp.coo_matrix(
                (archive["weight"], (archive["row"], archive["col"])),
                shape=shape).tocsr()
            labels = archive["labels"] if "labels" in archive.files else None
            num_classes = int(archive["num_classes"])
            return cls(adj, archive["features"], labels, num_classes or None)
