"""Synthetic attributed-graph generators.

The evaluation datasets of the paper (Pubmed, Flickr, Reddit) cannot be
downloaded in this offline environment, so we simulate them with a
degree-corrected stochastic block model whose knobs — class sizes,
homophily, mean degree, degree skew, feature noise and feature smoothing —
are calibrated per dataset in :mod:`repro.graph.datasets`.  The phenomena
the paper measures (condensation vs. coreset accuracy, inference cost
scaling, propagation gains) depend on exactly these structural properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError
from repro.graph.graph import Graph
from repro.graph.ops import adjacency_from_edges, symmetric_normalize

__all__ = ["SbmConfig", "generate_sbm_graph", "smooth_features"]


@dataclass
class SbmConfig:
    """Configuration of the degree-corrected SBM generator.

    Attributes
    ----------
    class_sizes:
        Number of nodes in each class; the node count is their sum.
    feature_dim:
        Dimensionality ``d`` of node features.
    avg_degree:
        Target mean (undirected) degree.
    homophily:
        Probability that a sampled edge connects two nodes of the same
        class; controls how informative the structure is.
    degree_exponent:
        Pareto shape for per-node degree propensities.  ``0`` disables
        degree correction (Erdos-Renyi-like blocks); smaller positive
        values give heavier tails (hub structure, like Reddit).
    feature_noise:
        Standard deviation of isotropic feature noise around the class
        center.
    center_scale:
        Standard deviation of the class-center coordinates; the ratio
        ``center_scale * sqrt(dim) / feature_noise`` controls how separable
        the *raw* features are.  Real benchmarks have weak raw features, so
        the dataset specs keep this low and let message passing (noise
        averaging over homophilous neighborhoods) recover the signal —
        that is the regime in which graph reduction methods separate.
    label_noise:
        Fraction of nodes whose *reported* label is resampled uniformly
        from the other classes (features still follow the true label);
        models irreducible error.
    smoothing_rounds / smoothing_alpha:
        Rounds of neighbor averaging applied to features after generation;
        couples features to structure so that message passing helps.
    """

    class_sizes: np.ndarray
    feature_dim: int
    avg_degree: float
    homophily: float = 0.7
    degree_exponent: float = 0.0
    feature_noise: float = 1.0
    center_scale: float = 1.0
    label_noise: float = 0.0
    smoothing_rounds: int = 1
    smoothing_alpha: float = 0.5
    _num_nodes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.class_sizes = np.asarray(self.class_sizes, dtype=np.int64)
        if self.class_sizes.ndim != 1 or self.class_sizes.size == 0:
            raise DatasetError("class_sizes must be a non-empty 1-D array")
        if (self.class_sizes <= 0).any():
            raise DatasetError("every class must have at least one node")
        if not 0.0 <= self.homophily <= 1.0:
            raise DatasetError(f"homophily must be in [0, 1], got {self.homophily}")
        if not 0.0 <= self.label_noise < 1.0:
            raise DatasetError(f"label_noise must be in [0, 1), got {self.label_noise}")
        if self.avg_degree <= 0:
            raise DatasetError(f"avg_degree must be positive, got {self.avg_degree}")
        if self.feature_dim <= 0:
            raise DatasetError(f"feature_dim must be positive, got {self.feature_dim}")
        self._num_nodes = int(self.class_sizes.sum())

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_classes(self) -> int:
        return int(self.class_sizes.size)


def _degree_propensities(config: SbmConfig, rng: np.random.Generator) -> np.ndarray:
    if config.degree_exponent <= 0:
        return np.ones(config.num_nodes)
    weights = rng.pareto(config.degree_exponent, size=config.num_nodes) + 1.0
    return weights / weights.mean()


def _sample_endpoints(
    labels: np.ndarray,
    class_nodes: list[np.ndarray],
    propensities: np.ndarray,
    num_edges: int,
    homophily: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_edges`` endpoint pairs (may contain dups/self-loops)."""
    num_classes = len(class_nodes)
    class_mass = np.array([propensities[nodes].sum() for nodes in class_nodes])
    class_prob = class_mass / class_mass.sum()

    intra = rng.random(num_edges) < homophily
    sources = np.empty(num_edges, dtype=np.int64)
    targets = np.empty(num_edges, dtype=np.int64)

    # Intra-class edges: pick a class (by propensity mass), two nodes inside.
    intra_classes = rng.choice(num_classes, size=int(intra.sum()), p=class_prob)
    # Inter-class edges: two independent class draws, re-rolled if equal.
    n_inter = num_edges - int(intra.sum())
    inter_a = rng.choice(num_classes, size=n_inter, p=class_prob)
    inter_b = rng.choice(num_classes, size=n_inter, p=class_prob)
    clash = inter_a == inter_b
    while clash.any():
        inter_b[clash] = rng.choice(num_classes, size=int(clash.sum()), p=class_prob)
        clash = inter_a == inter_b

    def pick(nodes: np.ndarray, count: int) -> np.ndarray:
        weights = propensities[nodes]
        return rng.choice(nodes, size=count, p=weights / weights.sum())

    intra_positions = np.flatnonzero(intra)
    offset = 0
    for cls in range(num_classes):
        mask = intra_classes == cls
        count = int(mask.sum())
        if count == 0:
            continue
        rows = intra_positions[np.flatnonzero(mask)]
        sources[rows] = pick(class_nodes[cls], count)
        targets[rows] = pick(class_nodes[cls], count)
        offset += count

    inter_positions = np.flatnonzero(~intra)
    for cls in range(num_classes):
        mask_a = inter_a == cls
        if mask_a.any():
            rows = inter_positions[np.flatnonzero(mask_a)]
            sources[rows] = pick(class_nodes[cls], int(mask_a.sum()))
        mask_b = inter_b == cls
        if mask_b.any():
            rows = inter_positions[np.flatnonzero(mask_b)]
            targets[rows] = pick(class_nodes[cls], int(mask_b.sum()))
    return np.stack([sources, targets], axis=1)


def generate_sbm_graph(config: SbmConfig, seed: int | np.random.Generator = 0) -> Graph:
    """Generate an attributed graph from a degree-corrected SBM.

    Returns a :class:`Graph` with 0/1 symmetric adjacency (no self-loops),
    Gaussian class-conditional features (optionally neighbor-smoothed) and
    integer labels.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    labels = np.repeat(np.arange(config.num_classes), config.class_sizes)
    rng.shuffle(labels)
    class_nodes = [np.flatnonzero(labels == c) for c in range(config.num_classes)]
    propensities = _degree_propensities(config, rng)

    target_edges = int(round(config.num_nodes * config.avg_degree / 2.0))
    # Oversample: duplicates and self-loops get dropped below.
    raw = _sample_endpoints(labels, class_nodes, propensities,
                            int(target_edges * 1.15) + 8, config.homophily, rng)
    keep = raw[:, 0] != raw[:, 1]
    edges = raw[keep]
    # Canonical order + dedup.
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    unique = np.unique(lo * config.num_nodes + hi)
    if unique.size > target_edges:
        unique = rng.choice(unique, size=target_edges, replace=False)
    edges = np.stack([unique // config.num_nodes, unique % config.num_nodes], axis=1)
    adjacency = adjacency_from_edges(edges, config.num_nodes, symmetric=True)

    centers = rng.standard_normal((config.num_classes, config.feature_dim))
    centers *= config.center_scale
    features = centers[labels] + config.feature_noise * rng.standard_normal(
        (config.num_nodes, config.feature_dim))
    if config.smoothing_rounds > 0:
        features = smooth_features(adjacency, features,
                                   rounds=config.smoothing_rounds,
                                   alpha=config.smoothing_alpha)
    reported = labels
    if config.label_noise > 0 and config.num_classes > 1:
        reported = labels.copy()
        flip = rng.random(config.num_nodes) < config.label_noise
        offsets = rng.integers(1, config.num_classes, size=int(flip.sum()))
        reported[flip] = (reported[flip] + offsets) % config.num_classes
    return Graph(adjacency, features, reported, config.num_classes)


def smooth_features(adjacency: sp.spmatrix, features: np.ndarray,
                    rounds: int = 1, alpha: float = 0.5) -> np.ndarray:
    """Blend features with symmetric-normalized neighborhood averages.

    ``X <- (1 - alpha) X + alpha * A_hat X`` repeated ``rounds`` times;
    couples features to topology, which is what makes message passing (and
    label/error propagation) beneficial on the simulated datasets.
    """
    if rounds < 0:
        raise DatasetError(f"rounds must be non-negative, got {rounds}")
    if not 0.0 <= alpha <= 1.0:
        raise DatasetError(f"alpha must be in [0, 1], got {alpha}")
    normalized = symmetric_normalize(adjacency, self_loops=True)
    out = np.asarray(features, dtype=np.float64)
    for _ in range(rounds):
        out = (1.0 - alpha) * out + alpha * (normalized @ out)
    return out
